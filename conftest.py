"""Pytest bootstrap: make ``src/`` importable without installation.

The package is normally installed with ``pip install -e .``; this fallback
keeps the test and benchmark suites runnable in environments where an
editable install is unavailable (e.g. offline containers without wheel).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
