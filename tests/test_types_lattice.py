"""Tests for the subtyping lattice, type neutrality and the type registry."""

import pytest
from hypothesis import given, strategies as st

from repro.types import TypeLattice, TypeRegistry, lattice_from_class_edges, parse_type


@pytest.fixture()
def lattice() -> TypeLattice:
    lat = TypeLattice()
    lat.add_class_hierarchy([("Dog", "Animal"), ("Cat", "Animal"), ("Puppy", "Dog")])
    return lat


class TestNominalSubtyping:
    def test_numeric_tower(self, lattice):
        assert lattice.is_subtype(parse_type("bool"), parse_type("int"))
        assert lattice.is_subtype(parse_type("int"), parse_type("float"))
        assert lattice.is_subtype(parse_type("bool"), parse_type("float"))
        assert not lattice.is_subtype(parse_type("float"), parse_type("int"))

    def test_user_hierarchy_is_transitive(self, lattice):
        assert lattice.is_subtype(parse_type("Puppy"), parse_type("Animal"))
        assert lattice.is_subtype(parse_type("Dog"), parse_type("Animal"))
        assert not lattice.is_subtype(parse_type("Animal"), parse_type("Dog"))
        assert not lattice.is_subtype(parse_type("Cat"), parse_type("Dog"))

    def test_everything_below_any_and_object(self, lattice):
        for name in ["int", "str", "Dog", "List[int]", "Optional[str]"]:
            assert lattice.is_subtype(parse_type(name), parse_type("Any"))
            assert lattice.is_subtype(parse_type(name), parse_type("object"))

    def test_container_protocols(self, lattice):
        assert lattice.is_subtype(parse_type("List"), parse_type("Sequence"))
        assert lattice.is_subtype(parse_type("Dict"), parse_type("Mapping"))
        assert lattice.is_subtype(parse_type("List"), parse_type("Iterable"))
        assert lattice.is_subtype(parse_type("str"), parse_type("Sequence"))

    def test_reflexivity(self, lattice):
        for name in ["int", "List[str]", "Dog", "Optional[Dict[str, int]]"]:
            assert lattice.is_subtype(parse_type(name), parse_type(name))


class TestStructuralSubtyping:
    def test_parametric_base(self, lattice):
        assert lattice.is_subtype(parse_type("List[int]"), parse_type("List"))
        assert lattice.is_subtype(parse_type("Dict[str, int]"), parse_type("Mapping"))

    def test_universal_covariance(self, lattice):
        assert lattice.is_subtype(parse_type("List[bool]"), parse_type("List[int]"))
        assert lattice.is_subtype(parse_type("List[int]"), parse_type("Sequence[float]"))
        assert not lattice.is_subtype(parse_type("List[str]"), parse_type("List[int]"))

    def test_optional_rules(self, lattice):
        assert lattice.is_subtype(parse_type("int"), parse_type("Optional[int]"))
        assert lattice.is_subtype(parse_type("None"), parse_type("Optional[int]"))
        assert not lattice.is_subtype(parse_type("Optional[int]"), parse_type("int"))
        assert lattice.is_subtype(parse_type("Optional[int]"), parse_type("Optional[float]"))

    def test_union_rules(self, lattice):
        assert lattice.is_subtype(parse_type("int"), parse_type("Union[int, str]"))
        assert lattice.is_subtype(parse_type("Union[int, bool]"), parse_type("int"))
        assert not lattice.is_subtype(parse_type("Union[int, str]"), parse_type("int"))

    def test_arity_mismatch_without_ellipsis_is_not_subtype(self, lattice):
        assert not lattice.is_subtype(parse_type("Dict[str, int]"), parse_type("Dict[str]"))

    def test_tuple_ellipsis_tolerated(self, lattice):
        assert lattice.is_subtype(parse_type("Tuple[int, ...]"), parse_type("Tuple[int, ...]"))


class TestTypeNeutrality:
    def test_exact_match_is_neutral(self, lattice):
        assert lattice.is_type_neutral(parse_type("int"), parse_type("int"))

    def test_supertype_prediction_is_neutral(self, lattice):
        assert lattice.is_type_neutral(parse_type("Sequence[int]"), parse_type("List[int]"))
        assert lattice.is_type_neutral(parse_type("Animal"), parse_type("Dog"))
        assert lattice.is_type_neutral(parse_type("Optional[int]"), parse_type("int"))

    def test_subtype_prediction_is_not_neutral(self, lattice):
        assert not lattice.is_type_neutral(parse_type("Dog"), parse_type("Animal"))
        assert not lattice.is_type_neutral(parse_type("int"), parse_type("float"))

    def test_top_predictions_never_neutral(self, lattice):
        assert not lattice.is_type_neutral(parse_type("Any"), parse_type("int"))
        assert not lattice.is_type_neutral(parse_type("object"), parse_type("int"))

    def test_unrelated_types_not_neutral(self, lattice):
        assert not lattice.is_type_neutral(parse_type("str"), parse_type("int"))
        assert not lattice.is_type_neutral(parse_type("Dict[str, int]"), parse_type("List[int]"))

    def test_string_level_interface_handles_unparsable(self, lattice):
        assert lattice.is_type_neutral_str("weird!!", "weird!!")
        assert not lattice.is_type_neutral_str("weird!!", "int")

    def test_deeply_nested_types_are_preprocessed(self, lattice):
        # Both sides get the depth-2 rewriting of Sec. 6.1 before comparison.
        assert lattice.is_type_neutral(
            parse_type("List[List[List[str]]]"), parse_type("List[List[List[int]]]")
        )

    @given(st.sampled_from(["int", "str", "bool", "List[int]", "Dog", "Optional[str]", "Dict[str, int]"]))
    def test_property_neutrality_is_reflexive(self, name):
        lattice = TypeLattice()
        lattice.add_class_hierarchy([("Dog", "Animal")])
        assert lattice.is_type_neutral(parse_type(name), parse_type(name))

    def test_lattice_from_class_edges(self):
        lat = lattice_from_class_edges([("Sub", "Base")])
        assert lat.is_subtype(parse_type("Sub"), parse_type("Base"))


class TestTypeRegistry:
    def test_counts_and_rarity(self):
        registry = TypeRegistry(rarity_threshold=3)
        for _ in range(5):
            registry.add("int")
        registry.add("MyRareType")
        assert registry.is_common("int") and registry.is_rare("MyRareType")
        assert registry.count_of("int") == 5
        assert len(registry) == 2
        assert set(registry.common_types()) == {"int"}
        assert set(registry.rare_types()) == {"MyRareType"}

    def test_canonicalisation_merges_aliases(self):
        registry = TypeRegistry()
        registry.add("typing.List[int]")
        registry.add("list[int]")
        assert registry.count_of("List[int]") == 2
        assert len(registry) == 1

    def test_unparsable_annotations_are_ignored(self):
        registry = TypeRegistry()
        assert registry.add("!!!") is None
        assert len(registry) == 0

    def test_ids_are_stable_and_invertible(self):
        registry = TypeRegistry()
        registry.add_many(["int", "str", "int", "List[int]"])
        for name in ["int", "str", "List[int]"]:
            assert registry.type_of(registry.id_of(name)) == name

    def test_classification_vocabulary_has_unk_and_frequency_order(self):
        registry = TypeRegistry()
        registry.add("int", count=10)
        registry.add("str", count=5)
        registry.add("Rare", count=1)
        vocabulary = registry.classification_vocabulary(max_types=2)
        assert vocabulary["%UNK%"] == 0
        assert vocabulary["int"] == 1 and vocabulary["str"] == 2
        assert "Rare" not in vocabulary

    def test_statistics(self):
        registry = TypeRegistry(rarity_threshold=3)
        registry.add("int", count=50)
        registry.add("str", count=30)
        for index in range(10):
            registry.add(f"Rare{index}", count=1)
        stats = registry.statistics()
        assert stats.total_annotations == 90
        assert stats.distinct_types == 12
        assert stats.rare_types == 10
        assert 0.0 < stats.rare_annotation_fraction < 0.2
        assert stats.top10_fraction > 0.9
        assert stats.zipf_exponent > 0

    def test_most_common(self):
        registry = TypeRegistry()
        registry.add("int", count=3)
        registry.add("str", count=1)
        assert registry.most_common(1) == [("int", 3)]
