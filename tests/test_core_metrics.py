"""Tests for the evaluation metrics (exact / parametric / neutral, PR curves, buckets)."""

import pytest

from repro.core import (
    EvaluatedPrediction,
    bucketed_by_frequency,
    evaluate_prediction,
    precision_at_recall,
    precision_recall_curve,
    summarise,
    summarise_by_kind,
    summarise_by_rarity,
)
from repro.graph.nodes import SymbolKind
from repro.types import TypeLattice, TypeRegistry


@pytest.fixture()
def lattice():
    lat = TypeLattice()
    lat.add_nominal_edge("Dog", "Animal")
    return lat


class TestEvaluatePrediction:
    def test_exact_match(self, lattice):
        result = evaluate_prediction("int", "int", 0.9, lattice)
        assert result.exact and result.up_to_parametric and result.neutral

    def test_alias_spelling_counts_as_exact(self, lattice):
        result = evaluate_prediction("list[int]", "List[int]", 0.9, lattice)
        assert result.exact

    def test_match_up_to_parametric_only(self, lattice):
        result = evaluate_prediction("List[str]", "List[int]", 0.5, lattice)
        assert not result.exact and result.up_to_parametric

    def test_neutral_supertype(self, lattice):
        result = evaluate_prediction("Animal", "Dog", 0.5, lattice)
        assert not result.exact and not result.up_to_parametric and result.neutral

    def test_wrong_prediction(self, lattice):
        result = evaluate_prediction("str", "int", 0.5, lattice)
        assert not (result.exact or result.up_to_parametric or result.neutral)

    def test_missing_prediction(self, lattice):
        result = evaluate_prediction(None, "int", 0.0, lattice)
        assert result.predicted is None and not result.exact

    def test_kind_recorded(self, lattice):
        result = evaluate_prediction("int", "int", 1.0, lattice, kind=SymbolKind.PARAMETER)
        assert result.kind == SymbolKind.PARAMETER


class TestSummaries:
    def _predictions(self, lattice):
        return [
            evaluate_prediction("int", "int", 0.9, lattice, kind=SymbolKind.PARAMETER),
            evaluate_prediction("str", "int", 0.8, lattice, kind=SymbolKind.PARAMETER),
            evaluate_prediction("List[str]", "List[int]", 0.6, lattice, kind=SymbolKind.VARIABLE),
            evaluate_prediction("MyRareType", "MyRareType", 0.7, lattice, kind=SymbolKind.FUNCTION_RETURN),
        ]

    def test_summarise_percentages(self, lattice):
        summary = summarise(self._predictions(lattice))
        assert summary.count == 4
        assert summary.exact_match == pytest.approx(0.5)
        assert summary.match_up_to_parametric == pytest.approx(0.75)
        row = summary.as_row()
        assert row["exact"] == 50.0

    def test_summarise_empty(self):
        assert summarise([]).count == 0

    def test_summarise_by_rarity(self, lattice):
        registry = TypeRegistry(rarity_threshold=3)
        registry.add("int", count=10)
        registry.add("List[int]", count=10)
        registry.add("MyRareType", count=1)
        breakdown = summarise_by_rarity(self._predictions(lattice), registry)
        assert breakdown["all"].count == 4
        assert breakdown["rare"].count == 1
        assert breakdown["rare"].exact_match == 1.0
        assert breakdown["common"].count == 3

    def test_summarise_by_kind(self, lattice):
        by_kind = summarise_by_kind(self._predictions(lattice))
        assert by_kind["parameter"].count == 2
        assert by_kind["variable"].count == 1
        assert by_kind["function_return"].count == 1


class TestPrecisionRecall:
    def _curve(self, lattice):
        predictions = [
            evaluate_prediction("int", "int", 0.95, lattice),
            evaluate_prediction("int", "int", 0.9, lattice),
            evaluate_prediction("str", "int", 0.2, lattice),
            evaluate_prediction("float", "int", 0.1, lattice),
        ]
        return precision_recall_curve(predictions, num_thresholds=11)

    def test_recall_decreases_with_threshold(self, lattice):
        points = self._curve(lattice)
        recalls = [point.recall for point in points]
        assert recalls == sorted(recalls, reverse=True)
        assert recalls[0] == 1.0

    def test_precision_increases_when_wrong_predictions_are_low_confidence(self, lattice):
        points = self._curve(lattice)
        assert points[0].precision_exact == pytest.approx(0.5)
        assert points[-2].precision_exact == 1.0

    def test_precision_at_recall_interpolation(self, lattice):
        points = self._curve(lattice)
        assert precision_at_recall(points, 0.5, criterion="exact") == 1.0
        assert precision_at_recall(points, 1.0, criterion="exact") == pytest.approx(0.5)

    def test_empty_curve(self):
        assert precision_recall_curve([]) == []


class TestFrequencyBuckets:
    def test_bucket_assignment(self, lattice):
        registry = TypeRegistry()
        registry.add("int", count=500)
        registry.add("MyRareType", count=2)
        predictions = [
            evaluate_prediction("int", "int", 0.9, lattice),
            evaluate_prediction("str", "MyRareType", 0.9, lattice),
        ]
        buckets = bucketed_by_frequency(predictions, registry)
        by_bound = {bucket.upper_bound: bucket for bucket in buckets}
        assert by_bound[2].count == 1 and by_bound[2].exact_match == 0.0
        assert by_bound[500].count == 1 and by_bound[500].exact_match == 1.0

    def test_total_count_preserved(self, lattice):
        registry = TypeRegistry()
        registry.add("int", count=5)
        predictions = [evaluate_prediction("int", "int", 0.9, lattice) for _ in range(7)]
        buckets = bucketed_by_frequency(predictions, registry)
        assert sum(bucket.count for bucket in buckets) == 7
