"""Tests for the compile-once training plan, dtype config and epoch timing."""

import numpy as np
import pytest

from repro.core import BatchPlan, EncoderConfig, LossKind, Trainer, TrainingConfig, build_encoder
from repro.corpus import DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.models.batching import build_graph_batch


@pytest.fixture(scope="module")
def plan_dataset() -> TypeAnnotationDataset:
    return TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=14, seed=21, num_user_classes=8),
        DatasetConfig(rarity_threshold=8, seed=5),
    )


def _losses(dataset, family, dtype, compile_batches, epochs=3):
    encoder = build_encoder(dataset, EncoderConfig(family=family, hidden_dim=16, gnn_steps=2, seed=9))
    trainer = Trainer(
        encoder,
        dataset,
        loss_kind=LossKind.TYPILUS,
        config=TrainingConfig(
            epochs=epochs, graphs_per_batch=4, seed=9, dtype=dtype, compile_batches=compile_batches
        ),
    )
    return trainer.train(), trainer


class TestCompiledPlanExactness:
    @pytest.mark.parametrize("family", ["graph", "sequence", "names", "path"])
    def test_float64_compiled_replays_eager_losses_exactly(self, plan_dataset, family):
        eager, _ = _losses(plan_dataset, family, "float64", False)
        compiled, _ = _losses(plan_dataset, family, "float64", True)
        assert [s.mean_loss for s in compiled.history] == [s.mean_loss for s in eager.history]

    def test_float32_trains_and_reduces_loss(self, plan_dataset):
        result, trainer = _losses(plan_dataset, "graph", "float32", True, epochs=4)
        assert trainer.dtype == np.float32
        assert all(p.data.dtype == np.float32 for p in trainer.encoder.parameters())
        assert result.history[-1].mean_loss < result.history[0].mean_loss

    def test_float32_losses_close_to_float64(self, plan_dataset):
        result32, _ = _losses(plan_dataset, "graph", "float32", True, epochs=2)
        result64, _ = _losses(plan_dataset, "graph", "float64", True, epochs=2)
        for stat32, stat64 in zip(result32.history, result64.history):
            assert stat32.mean_loss == pytest.approx(stat64.mean_loss, rel=1e-3)


class TestBatchPlanAssembly:
    def test_assembled_graph_batch_matches_eager_union(self, plan_dataset):
        encoder = build_encoder(plan_dataset, EncoderConfig(family="graph", hidden_dim=16, gnn_steps=2, seed=9))
        split = plan_dataset.train
        plan = BatchPlan(encoder, split)
        assert plan.supports_assembly

        samples_by_graph = split.samples_by_graph()
        chosen = sorted(samples_by_graph)[:3]
        groups = [samples_by_graph[index] for index in chosen]
        assembled = plan.assemble(chosen, groups)

        graphs = [split.graphs[index] for index in chosen]
        targets = [[sample.node_index for sample in group] for group in groups]
        eager = build_graph_batch(graphs, targets)

        assert assembled.node_texts == eager.node_texts
        assert (assembled.target_nodes == eager.target_nodes).all()
        assert (assembled.graph_of_node == eager.graph_of_node).all()
        assert set(assembled.edges) == set(eager.edges)
        for kind in eager.edges:
            assert (assembled.edges[kind] == eager.edges[kind]).all()
        # Assembled features reproduce the eager featurization bit-for-bit.
        features = assembled.features
        eager_features = encoder.initializer.featurize(eager.node_texts)
        assert (features.ids == eager_features.ids).all()
        assert (features.segments == eager_features.segments).all()

    def test_batches_are_cached_across_epochs(self, plan_dataset):
        encoder = build_encoder(plan_dataset, EncoderConfig(family="graph", hidden_dim=16, gnn_steps=2, seed=9))
        split = plan_dataset.train
        plan = BatchPlan(encoder, split)
        samples_by_graph = split.samples_by_graph()
        chosen = sorted(samples_by_graph)[:2]
        groups = [samples_by_graph[index] for index in chosen]
        first = plan.batch(0, chosen, groups)
        second = plan.batch(0, chosen, groups)
        assert first is second

    def test_path_family_plan_enables_memo_instead(self, plan_dataset):
        encoder = build_encoder(plan_dataset, EncoderConfig(family="path", hidden_dim=16, seed=9))
        plan = BatchPlan(encoder, plan_dataset.train)
        assert not plan.supports_assembly
        assert encoder.initializer.extractor._memo is not None

    def test_plan_reuses_persisted_features(self, plan_dataset, tmp_path):
        plan_dataset.save(tmp_path / "ds")
        reloaded = TypeAnnotationDataset.load(tmp_path / "ds")
        assert reloaded.train.node_features is not None
        encoder = build_encoder(reloaded, EncoderConfig(family="graph", hidden_dim=16, gnn_steps=2, seed=9))
        plan = BatchPlan(encoder, reloaded.train)
        samples_by_graph = reloaded.train.samples_by_graph()
        some_graph = next(iter(samples_by_graph))
        entry = plan._graph_entries[some_graph]
        # The compiled entry holds the restored array objects, not recomputed ones.
        assert entry.features is reloaded.train.node_features[some_graph]


class TestEpochTiming:
    def test_epoch_seconds_are_per_epoch_not_cumulative(self, plan_dataset):
        result, _ = _losses(plan_dataset, "names", "float64", False, epochs=3)
        seconds = [stats.seconds for stats in result.history]
        assert all(value >= 0.0 for value in seconds)
        total = result.stopwatch.total("train_epoch")
        # The regression: each epoch used to report the cumulative total, so
        # summing the history overshot the stopwatch by ~2x for 3 epochs.
        assert sum(seconds) == pytest.approx(total, rel=1e-6)
