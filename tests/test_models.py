"""Tests for batching and the three symbol-encoder families."""

import numpy as np
import pytest

from repro.graph import EdgeKind, NodeKind, build_graph
from repro.models import (
    GGNNEncoder,
    NameOnlyEncoder,
    PathEncoder,
    SequenceEncoder,
    SubtokenNodeInitializer,
    TokenNodeInitializer,
    TokenVocabulary,
    build_graph_batch,
    build_initializer,
    build_path_batch,
    build_sequence_batch,
)
from repro.graph.subtokens import SubtokenVocabulary
from repro.models.encoder_init import CharCNNNodeInitializer
from repro.utils.rng import SeededRNG


@pytest.fixture(scope="module")
def graphs(tiny_dataset):
    return tiny_dataset.train.graphs[:3]


@pytest.fixture(scope="module")
def targets(tiny_dataset, graphs):
    per_graph = []
    for graph_index in range(len(graphs)):
        nodes = [s.node_index for s in tiny_dataset.train.samples if s.graph_index == graph_index][:5]
        per_graph.append(nodes)
    return per_graph


@pytest.fixture(scope="module")
def subtoken_init(tiny_dataset):
    return SubtokenNodeInitializer(tiny_dataset.subtokens, 16, SeededRNG(1))


class TestNodeInitialisers:
    def test_subtoken_initializer_shape(self, subtoken_init):
        out = subtoken_init.encode_texts(["numNodes", "get_count", "+", ""])
        assert out.shape == (4, 16)

    def test_subtoken_sharing_makes_related_names_similar(self, tiny_dataset):
        init = SubtokenNodeInitializer(tiny_dataset.subtokens, 16, SeededRNG(2))
        out = init.encode_texts(["num_count", "total_count", "zzzunrelated"]).data
        related = np.abs(out[0] - out[1]).sum()
        unrelated = np.abs(out[0] - out[2]).sum()
        assert related < unrelated

    def test_token_initializer(self):
        vocabulary = TokenVocabulary.from_texts(["count", "name", "count"])
        init = TokenNodeInitializer(vocabulary, 8, SeededRNG(3))
        out = init.encode_texts(["count", "never_seen"])
        assert out.shape == (2, 8)
        # Unknown tokens share the %UNK% embedding.
        other = init.encode_texts(["also_unseen"]).data
        assert np.allclose(out.data[1], other[0])

    def test_char_initializer(self):
        init = CharCNNNodeInitializer(12, SeededRNG(4))
        out = init.encode_texts(["count", "x", ""])
        assert out.shape == (3, 12)

    def test_factory_validates_requirements(self):
        with pytest.raises(ValueError):
            build_initializer("subtoken", 8, SeededRNG(0))
        with pytest.raises(ValueError):
            build_initializer("token", 8, SeededRNG(0))
        with pytest.raises(ValueError):
            build_initializer("nonsense", 8, SeededRNG(0), subtoken_vocabulary=SubtokenVocabulary().finalise())


class TestGraphBatching:
    def test_disjoint_union_offsets(self, graphs, targets):
        batch = build_graph_batch(graphs, targets)
        assert batch.num_nodes == sum(g.num_nodes for g in graphs)
        assert batch.num_targets == sum(len(t) for t in targets)
        # Every edge stays within its own graph.
        for pairs in batch.edges.values():
            for source, target in pairs.T:
                assert batch.graph_of_node[source] == batch.graph_of_node[target]
        assert (batch.target_nodes < batch.num_nodes).all()

    def test_mismatched_lengths_raise(self, graphs):
        with pytest.raises(ValueError):
            build_graph_batch(graphs, [[0]])

    def test_target_nodes_are_symbols(self, graphs, targets):
        build_graph_batch(graphs, targets)
        offsets = np.cumsum([0] + [g.num_nodes for g in graphs])
        for local_targets, offset, graph in zip(targets, offsets, graphs):
            for node in local_targets:
                assert graph.nodes[node].kind == NodeKind.SYMBOL


class TestSequenceBatching:
    def test_padded_lengths_and_occurrences(self, graphs, targets):
        batch = build_sequence_batch(graphs, targets, max_tokens=64)
        assert batch.num_sequences == len(graphs)
        assert all(len(sequence) == batch.sequence_length for sequence in batch.token_texts)
        assert batch.num_targets == sum(len(t) for t in targets)
        for sequence_index, positions in batch.target_occurrences:
            assert 0 <= sequence_index < len(graphs)
            assert all(0 <= p < batch.sequence_length for p in positions)

    def test_truncation_respected(self, graphs, targets):
        batch = build_sequence_batch(graphs, targets, max_tokens=16)
        assert batch.sequence_length <= 16


class TestPathBatching:
    def test_paths_per_target(self, graphs, targets):
        batch = build_path_batch(graphs, targets, rng=SeededRNG(5), max_paths_per_target=4)
        assert batch.num_targets == sum(len(t) for t in targets)
        for paths in batch.paths_per_target:
            assert 1 <= len(paths) <= 4
            for path in paths:
                assert path.start_text and path.end_text
                assert isinstance(path.inner_labels, list)

    def test_path_length_bound(self, graphs, targets):
        batch = build_path_batch(graphs, targets, rng=SeededRNG(5), max_path_length=6)
        for paths in batch.paths_per_target:
            for path in paths:
                assert len(path.inner_labels) <= 6 or path.inner_labels == ["Symbol"]


class TestEncoders:
    @pytest.mark.parametrize("family", ["ggnn", "names", "sequence", "path"])
    def test_output_shape_and_gradients(self, family, graphs, targets, tiny_dataset):
        rng = SeededRNG(7)
        init = SubtokenNodeInitializer(tiny_dataset.subtokens, 16, rng.fork(1))
        encoder = {
            "ggnn": lambda: GGNNEncoder(init, 16, rng.fork(2), num_steps=2),
            "names": lambda: NameOnlyEncoder(init, 16, rng.fork(2)),
            "sequence": lambda: SequenceEncoder(init, 16, rng.fork(2), max_tokens=64),
            "path": lambda: PathEncoder(init, 16, rng.fork(2), max_paths_per_target=4),
        }[family]()
        embeddings = encoder.encode(graphs, targets)
        assert embeddings.shape == (sum(len(t) for t in targets), 16)
        (embeddings * embeddings).mean().backward()
        grads = [p.grad for p in encoder.parameters() if p.grad is not None]
        assert grads, f"{family} produced no gradients"

    def test_ggnn_zero_steps_equals_name_information_only(self, graphs, targets, tiny_dataset):
        rng = SeededRNG(8)
        init = SubtokenNodeInitializer(tiny_dataset.subtokens, 16, rng.fork(1))
        encoder = GGNNEncoder(init, 16, rng.fork(2), num_steps=0)
        embeddings = encoder.encode(graphs, targets)
        assert embeddings.shape[1] == 16

    def test_ggnn_edge_ablation_changes_output(self, graphs, targets, tiny_dataset):
        rng = SeededRNG(9)
        init = SubtokenNodeInitializer(tiny_dataset.subtokens, 16, rng.fork(1))
        full = GGNNEncoder(init, 16, rng.fork(2), num_steps=2)
        ablated = GGNNEncoder(init, 16, rng.fork(2), num_steps=2, edge_kinds=[EdgeKind.CHILD])
        full_embeddings = full.encode(graphs, targets).data
        ablated_embeddings = ablated.encode(graphs, targets).data
        assert not np.allclose(full_embeddings, ablated_embeddings)

    def test_ggnn_deterministic_in_eval_mode(self, graphs, targets, tiny_dataset):
        rng = SeededRNG(10)
        init = SubtokenNodeInitializer(tiny_dataset.subtokens, 16, rng.fork(1))
        encoder = GGNNEncoder(init, 16, rng.fork(2), num_steps=2)
        encoder.eval()
        first = encoder.encode(graphs, targets).data
        second = encoder.encode(graphs, targets).data
        assert np.allclose(first, second)

    def test_single_symbol_graph(self, tiny_dataset):
        source = "def lonely(count):\n    return count\n"
        graph = build_graph(source)
        symbol = graph.find_symbol("count")
        rng = SeededRNG(11)
        init = SubtokenNodeInitializer(tiny_dataset.subtokens, 16, rng.fork(1))
        for encoder in (
            GGNNEncoder(init, 16, rng.fork(2), num_steps=2),
            SequenceEncoder(init, 16, rng.fork(3)),
            PathEncoder(init, 16, rng.fork(4)),
        ):
            out = encoder.encode([graph], [[symbol.node_index]])
            assert out.shape == (1, 16)
