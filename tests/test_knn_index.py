"""Batched index queries, probe-radius handling and stale-index adaptation."""

import numpy as np
import pytest

from repro.core import (
    ExactL1Index,
    KNNTypePredictor,
    RandomProjectionIndex,
    TypeSpace,
    adapt_space_with_new_type,
)


class TestBatchQueries:
    def _points(self, n=60, dim=6, seed=3):
        return np.random.default_rng(seed).normal(size=(n, dim))

    def test_exact_batch_arrays_match_per_query(self):
        points = self._points()
        index = ExactL1Index(points)
        queries = np.random.default_rng(4).normal(size=(17, points.shape[1]))
        batch = index.query_batch_arrays(queries, k=5)
        assert batch.indices.shape == (17, 5)
        assert batch.distances.shape == (17, 5)
        assert list(batch.counts) == [5] * 17
        for row, query in enumerate(queries):
            single = index.query(query, k=5)
            assert list(single.indices) == list(batch.indices[row])
            assert np.allclose(single.distances, batch.distances[row])

    def test_exact_batch_distances_sorted(self):
        index = ExactL1Index(self._points())
        batch = index.query_batch_arrays(np.random.default_rng(9).normal(size=(8, 6)), k=7)
        assert np.all(np.diff(batch.distances, axis=1) >= 0)

    def test_exact_query_batch_list_view_agrees_with_arrays(self):
        index = ExactL1Index(self._points())
        queries = np.random.default_rng(5).normal(size=(6, 6))
        as_list = index.query_batch(queries, k=4)
        as_arrays = index.query_batch_arrays(queries, k=4)
        for row, result in enumerate(as_list):
            assert list(result.indices) == list(as_arrays.indices[row])

    def test_empty_exact_index_returns_empty_rows(self):
        index = ExactL1Index(np.zeros((0, 4)))
        batch = index.query_batch_arrays(np.ones((3, 4)), k=5)
        assert batch.indices.shape == (3, 0)
        assert list(batch.counts) == [0, 0, 0]

    def test_approximate_batch_matches_per_query(self):
        points = self._points(n=120)
        index = RandomProjectionIndex(points, num_bits=5, probe_radius=1, seed=2)
        queries = np.random.default_rng(6).normal(size=(25, points.shape[1]))
        batch = index.query_batch_arrays(queries, k=6)
        for row, query in enumerate(queries):
            single = index.query(query, k=6)
            assert list(single.indices) == list(batch.indices[row])
            assert np.allclose(single.distances, batch.distances[row])


class TestProbeRadius:
    def test_probe_signature_counts_follow_binomials(self):
        # radius r probes sum_{i<=r} C(num_bits, i) buckets — any radius, not
        # just the old hard-coded <= 2.
        from math import comb

        for num_bits, radius in [(6, 3), (8, 4), (5, 5)]:
            index = RandomProjectionIndex(np.zeros((1, 3)), num_bits=num_bits, probe_radius=radius)
            signatures = index._probe_signatures(0)
            expected = sum(comb(num_bits, r) for r in range(radius + 1))
            assert len(signatures) == expected
            assert len(set(signatures)) == expected  # all distinct

    def test_large_probe_radius_recovers_exact_results(self):
        points = np.random.default_rng(11).normal(size=(40, 4))
        exact = ExactL1Index(points)
        # probing every bucket (radius == num_bits) must reproduce exact search
        approximate = RandomProjectionIndex(points, num_bits=4, probe_radius=4, seed=7)
        for query in np.random.default_rng(12).normal(size=(10, 4)):
            assert list(approximate.query(query, 5).indices) == list(exact.query(query, 5).indices)

    def test_invalid_parameters_rejected(self):
        points = np.zeros((4, 3))
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=0)
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=70)
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=4, probe_radius=-1)
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=4, probe_radius=5)
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=4, probe_radius=1.5)


class TestExactApproximateAgreement:
    def test_recall_floor_on_random_data(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(300, 8))
        queries = rng.normal(size=(50, 8))
        k = 10
        exact = ExactL1Index(points).query_batch_arrays(queries, k)
        approximate = RandomProjectionIndex(points, num_bits=8, probe_radius=2, seed=1).query_batch_arrays(
            queries, k
        )
        hits = 0
        for row in range(len(queries)):
            hits += len(set(exact.indices[row].tolist()) & set(approximate.indices[row].tolist()))
        recall = hits / (len(queries) * k)
        assert recall >= 0.5

    def test_approximate_never_beats_exact_top_distance(self):
        rng = np.random.default_rng(21)
        points = rng.normal(size=(80, 5))
        queries = rng.normal(size=(12, 5))
        exact = ExactL1Index(points).query_batch_arrays(queries, 3)
        approximate = RandomProjectionIndex(points, num_bits=5, probe_radius=1, seed=3).query_batch_arrays(
            queries, 3
        )
        assert np.all(approximate.distances[:, 0] >= exact.distances[:, 0] - 1e-9)


class TestAdaptationWithStaleIndex:
    def _space(self):
        space = TypeSpace(dim=3)
        space.add_markers(["int"] * 4, np.zeros((4, 3)), source="train")
        space.add_markers(["str"] * 4, np.full((4, 3), 4.0), source="train")
        return space

    def test_adaptation_invalidates_built_index(self):
        space = self._space()
        stale = space.index()  # force the index to exist before adapting
        assert space.nearest(np.full(3, 10.0), k=1)[0][0] == "str"
        adapt_space_with_new_type(space, "torch.Tensor", [np.full(3, 10.0)])
        assert space.index() is not stale  # rebuilt, not reused
        assert space.nearest(np.full(3, 10.0), k=1)[0][0] == "torch.Tensor"

    def test_adaptation_refreshes_batch_vocabulary_and_codes(self):
        space = self._space()
        before = space.nearest_batch(np.zeros((1, 3)), k=2)
        assert "torch.Tensor" not in before.type_vocabulary
        adapt_space_with_new_type(space, "torch.Tensor", [np.full(3, 10.0), np.full(3, 10.5)])
        after = space.nearest_batch(np.full((1, 3), 10.0), k=2)
        assert "torch.Tensor" in after.type_vocabulary
        top_type, _ = after.row(0)[0]
        assert top_type == "torch.Tensor"

    def test_predictor_sees_adapted_space_with_approximate_index(self):
        space = TypeSpace(dim=3, approximate_index=True)
        space.add_markers(["int"] * 6, np.zeros((6, 3)), source="train")
        predictor = KNNTypePredictor(space, k=3, p=2.0)
        space.index()  # build the (approximate) index, then let it go stale
        adapt_space_with_new_type(space, "bytes", [np.full(3, 9.0)])
        assert predictor.predict(np.full(3, 9.0)).top_type == "bytes"
