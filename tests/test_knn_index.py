"""Batched index queries, probe-radius handling and stale-index adaptation."""

import numpy as np
import pytest

import repro.core.knn as knn_module
from repro.core import (
    ExactL1Index,
    IVFIndex,
    KNNTypePredictor,
    RandomProjectionIndex,
    TypeSpace,
    adapt_space_with_new_type,
    build_index,
    validate_index_params,
)
from repro.core.knn import l1_distance_matrix


class TestBatchQueries:
    def _points(self, n=60, dim=6, seed=3):
        return np.random.default_rng(seed).normal(size=(n, dim))

    def test_exact_batch_arrays_match_per_query(self):
        points = self._points()
        index = ExactL1Index(points)
        queries = np.random.default_rng(4).normal(size=(17, points.shape[1]))
        batch = index.query_batch_arrays(queries, k=5)
        assert batch.indices.shape == (17, 5)
        assert batch.distances.shape == (17, 5)
        assert list(batch.counts) == [5] * 17
        for row, query in enumerate(queries):
            single = index.query(query, k=5)
            assert list(single.indices) == list(batch.indices[row])
            assert np.allclose(single.distances, batch.distances[row])

    def test_exact_batch_distances_sorted(self):
        index = ExactL1Index(self._points())
        batch = index.query_batch_arrays(np.random.default_rng(9).normal(size=(8, 6)), k=7)
        assert np.all(np.diff(batch.distances, axis=1) >= 0)

    def test_exact_query_batch_list_view_agrees_with_arrays(self):
        index = ExactL1Index(self._points())
        queries = np.random.default_rng(5).normal(size=(6, 6))
        as_list = index.query_batch(queries, k=4)
        as_arrays = index.query_batch_arrays(queries, k=4)
        for row, result in enumerate(as_list):
            assert list(result.indices) == list(as_arrays.indices[row])

    def test_empty_exact_index_returns_empty_rows(self):
        index = ExactL1Index(np.zeros((0, 4)))
        batch = index.query_batch_arrays(np.ones((3, 4)), k=5)
        assert batch.indices.shape == (3, 0)
        assert list(batch.counts) == [0, 0, 0]

    def test_approximate_batch_matches_per_query(self):
        points = self._points(n=120)
        index = RandomProjectionIndex(points, num_bits=5, probe_radius=1, seed=2)
        queries = np.random.default_rng(6).normal(size=(25, points.shape[1]))
        batch = index.query_batch_arrays(queries, k=6)
        for row, query in enumerate(queries):
            single = index.query(query, k=6)
            assert list(single.indices) == list(batch.indices[row])
            assert np.allclose(single.distances, batch.distances[row])


class TestProbeRadius:
    def test_probe_signature_counts_follow_binomials(self):
        # radius r probes sum_{i<=r} C(num_bits, i) buckets — any radius, not
        # just the old hard-coded <= 2.
        from math import comb

        for num_bits, radius in [(6, 3), (8, 4), (5, 5)]:
            index = RandomProjectionIndex(np.zeros((1, 3)), num_bits=num_bits, probe_radius=radius)
            signatures = index._probe_signatures(0)
            expected = sum(comb(num_bits, r) for r in range(radius + 1))
            assert len(signatures) == expected
            assert len(set(signatures)) == expected  # all distinct

    def test_large_probe_radius_recovers_exact_results(self):
        points = np.random.default_rng(11).normal(size=(40, 4))
        exact = ExactL1Index(points)
        # probing every bucket (radius == num_bits) must reproduce exact search
        approximate = RandomProjectionIndex(points, num_bits=4, probe_radius=4, seed=7)
        for query in np.random.default_rng(12).normal(size=(10, 4)):
            assert list(approximate.query(query, 5).indices) == list(exact.query(query, 5).indices)

    def test_invalid_parameters_rejected(self):
        points = np.zeros((4, 3))
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=0)
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=70)
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=4, probe_radius=-1)
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=4, probe_radius=5)
        with pytest.raises(ValueError):
            RandomProjectionIndex(points, num_bits=4, probe_radius=1.5)


class TestExactApproximateAgreement:
    def test_recall_floor_on_random_data(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(300, 8))
        queries = rng.normal(size=(50, 8))
        k = 10
        exact = ExactL1Index(points).query_batch_arrays(queries, k)
        approximate = RandomProjectionIndex(points, num_bits=8, probe_radius=2, seed=1).query_batch_arrays(
            queries, k
        )
        hits = 0
        for row in range(len(queries)):
            hits += len(set(exact.indices[row].tolist()) & set(approximate.indices[row].tolist()))
        recall = hits / (len(queries) * k)
        assert recall >= 0.5

    def test_approximate_never_beats_exact_top_distance(self):
        rng = np.random.default_rng(21)
        points = rng.normal(size=(80, 5))
        queries = rng.normal(size=(12, 5))
        exact = ExactL1Index(points).query_batch_arrays(queries, 3)
        approximate = RandomProjectionIndex(points, num_bits=5, probe_radius=1, seed=3).query_batch_arrays(
            queries, 3
        )
        assert np.all(approximate.distances[:, 0] >= exact.distances[:, 0] - 1e-9)


class TestAdaptationWithBuiltIndex:
    def _space(self):
        space = TypeSpace(dim=3)
        space.add_markers(["int"] * 4, np.zeros((4, 3)), source="train")
        space.add_markers(["str"] * 4, np.full((4, 3), 4.0), source="train")
        return space

    def test_adaptation_extends_built_index_in_place(self):
        space = self._space()
        built = space.index()  # force the index to exist before adapting
        assert space.nearest(np.full(3, 10.0), k=1)[0][0] == "str"
        adapt_space_with_new_type(space, "torch.Tensor", [np.full(3, 10.0)])
        assert space.index() is built  # extended, not rebuilt
        assert len(space.index()) == 9
        assert space.nearest(np.full(3, 10.0), k=1)[0][0] == "torch.Tensor"

    def test_adaptation_refreshes_batch_vocabulary_and_codes(self):
        space = self._space()
        before = space.nearest_batch(np.zeros((1, 3)), k=2)
        assert "torch.Tensor" not in before.type_vocabulary
        adapt_space_with_new_type(space, "torch.Tensor", [np.full(3, 10.0), np.full(3, 10.5)])
        after = space.nearest_batch(np.full((1, 3), 10.0), k=2)
        assert "torch.Tensor" in after.type_vocabulary
        top_type, _ = after.row(0)[0]
        assert top_type == "torch.Tensor"

    def test_predictor_sees_adapted_space_with_approximate_index(self):
        space = TypeSpace(dim=3, approximate_index=True)
        space.add_markers(["int"] * 6, np.zeros((6, 3)), source="train")
        predictor = KNNTypePredictor(space, k=3, p=2.0)
        space.index()  # build the (approximate) index, then extend it
        adapt_space_with_new_type(space, "bytes", [np.full(3, 9.0)])
        assert predictor.predict(np.full(3, 9.0)).top_type == "bytes"


class TestIncrementalExtension:
    """extend() must answer queries identically to a from-scratch build."""

    def _points(self, n=90, dim=5, seed=17):
        return np.random.default_rng(seed).normal(size=(n, dim))

    def test_exact_extend_matches_from_scratch(self):
        points = self._points()
        extended = ExactL1Index(points[:40])
        for start in range(40, len(points), 7):  # uneven increments
            extended.extend(points[start : start + 7])
        rebuilt = ExactL1Index(points)
        queries = np.random.default_rng(18).normal(size=(20, points.shape[1]))
        one = extended.query_batch_arrays(queries, k=8)
        other = rebuilt.query_batch_arrays(queries, k=8)
        assert one.indices.tobytes() == other.indices.tobytes()
        assert one.distances.tobytes() == other.distances.tobytes()

    def test_approximate_extend_matches_from_scratch(self):
        points = self._points(n=150)
        extended = RandomProjectionIndex(points[:60], num_bits=6, probe_radius=1, seed=4)
        extended.extend(points[60:110])
        extended.extend(points[110:])
        rebuilt = RandomProjectionIndex(points, num_bits=6, probe_radius=1, seed=4)
        queries = np.random.default_rng(19).normal(size=(25, points.shape[1]))
        one = extended.query_batch_arrays(queries, k=6)
        other = rebuilt.query_batch_arrays(queries, k=6)
        assert one.indices.tobytes() == other.indices.tobytes()
        assert one.distances.tobytes() == other.distances.tobytes()

    def test_extend_from_empty_matches_direct_construction(self):
        points = self._points(n=50, dim=4)
        grown = RandomProjectionIndex(np.zeros((0, 4)), num_bits=5, probe_radius=1, seed=9)
        grown.extend(points)
        direct = RandomProjectionIndex(points, num_bits=5, probe_radius=1, seed=9)
        queries = np.random.default_rng(20).normal(size=(10, 4))
        assert (
            grown.query_batch_arrays(queries, 5).indices.tobytes()
            == direct.query_batch_arrays(queries, 5).indices.tobytes()
        )

    def test_extend_validates_dimension(self):
        index = ExactL1Index(self._points(n=10, dim=5))
        with pytest.raises(ValueError):
            index.extend(np.zeros((2, 4)))
        index.extend(np.zeros((0, 5)))  # empty extension is a no-op
        assert len(index) == 10

    def test_extend_after_queries_serves_new_points(self):
        points = self._points(n=40, dim=4)
        index = RandomProjectionIndex(points, num_bits=4, probe_radius=4, seed=3)
        far = np.full((1, 4), 50.0)
        assert index.query(far[0], 1).distances[0] > 100  # nothing near yet
        index.extend(far)
        result = index.query(far[0], 1)
        assert result.indices[0] == 40
        assert result.distances[0] == 0.0


class TestDtypeAwareStorage:
    """float32 point sets stay float32; queries run in the stored dtype."""

    def _points(self, dtype, n=80, dim=6):
        return np.random.default_rng(33).normal(size=(n, dim)).astype(dtype)

    def test_exact_index_preserves_float32(self):
        index = ExactL1Index(self._points(np.float32))
        assert index.points.dtype == np.float32
        batch = index.query_batch_arrays(self._points(np.float32, n=5), k=3)
        assert batch.distances.dtype == np.float32

    def test_float64_queries_cast_down_to_index_dtype(self):
        index = ExactL1Index(self._points(np.float32))
        batch = index.query_batch_arrays(self._points(np.float64, n=5), k=3)
        assert batch.distances.dtype == np.float32

    def test_integer_points_default_to_float64(self):
        index = ExactL1Index(np.arange(12).reshape(4, 3))
        assert index.points.dtype == np.float64

    def test_explicit_dtype_overrides_input(self):
        index = ExactL1Index(np.zeros((3, 2)), dtype=np.float32)
        assert index.points.dtype == np.float32
        with pytest.raises(ValueError):
            ExactL1Index(np.zeros((3, 2)), dtype=np.int32)

    def test_float32_results_equivalent_to_float64_path(self):
        """The float32 path must find the same neighbours as float64 (satellite)."""
        points64 = self._points(np.float64, n=200, dim=8)
        points32 = points64.astype(np.float32)
        queries64 = np.random.default_rng(34).normal(size=(30, 8))
        exact64 = ExactL1Index(points64).query_batch_arrays(queries64, k=5)
        exact32 = ExactL1Index(points32).query_batch_arrays(queries64.astype(np.float32), k=5)
        assert exact32.indices.tobytes() == exact64.indices.tobytes()
        assert np.allclose(exact32.distances, exact64.distances, rtol=1e-5, atol=1e-5)

    def test_float32_typespace_nearest_batch_matches_float64(self):
        rng = np.random.default_rng(35)
        embeddings = rng.normal(size=(120, 7))
        names = [f"type_{i % 9}" for i in range(120)]
        space64 = TypeSpace(dim=7)
        space64.add_markers(names, embeddings, source="t")
        space32 = TypeSpace(dim=7, dtype=np.float32)
        space32.add_markers(names, embeddings, source="t")
        queries = rng.normal(size=(15, 7))
        batch64 = space64.nearest_batch(queries, k=4)
        batch32 = space32.nearest_batch(queries, k=4)
        assert batch32.distances.dtype == np.float32
        assert batch32.type_codes.tobytes() == batch64.type_codes.tobytes()
        assert np.allclose(batch32.distances, batch64.distances, rtol=1e-5, atol=1e-5)

    def test_typespace_rejects_non_float_dtype(self):
        with pytest.raises(ValueError):
            TypeSpace(dim=3, dtype=np.int64)


class TestRandomProjectionEdgeCases:
    def test_empty_index_returns_empty_rows(self):
        index = RandomProjectionIndex(np.zeros((0, 4)), num_bits=5)
        assert len(index) == 0
        batch = index.query_batch_arrays(np.ones((3, 4)), k=5)
        assert batch.indices.shape == (3, 0)
        assert list(batch.counts) == [0, 0, 0]

    def test_k_larger_than_index_clamps_to_size(self):
        points = np.random.default_rng(40).normal(size=(7, 3))
        index = RandomProjectionIndex(points, num_bits=4, probe_radius=1, seed=1)
        batch = index.query_batch_arrays(np.zeros((2, 3)), k=50)
        assert batch.indices.shape == (2, 7)
        assert list(batch.counts) == [7, 7]
        for row in range(2):
            assert sorted(batch.indices[row].tolist()) == list(range(7))

    def test_duplicate_points_all_reachable(self):
        points = np.tile(np.array([[1.0, 2.0, 3.0]]), (6, 1))
        index = RandomProjectionIndex(points, num_bits=4, probe_radius=0, seed=2)
        result = index.query(np.array([1.0, 2.0, 3.0]), k=6)
        assert sorted(result.indices.tolist()) == list(range(6))
        assert np.allclose(result.distances, 0.0)

    def test_seeded_recall_floor_vs_exact(self):
        """Property test: across seeds, probed recall stays above a floor."""
        rng = np.random.default_rng(41)
        points = rng.normal(size=(400, 8))
        queries = rng.normal(size=(40, 8))
        k = 10
        exact = ExactL1Index(points).query_batch_arrays(queries, k)
        for seed in range(5):
            approximate = RandomProjectionIndex(
                points, num_bits=7, probe_radius=2, seed=seed
            ).query_batch_arrays(queries, k)
            hits = sum(
                len(set(exact.indices[row].tolist()) & set(approximate.indices[row].tolist()))
                for row in range(len(queries))
            )
            assert hits / (len(queries) * k) >= 0.5, f"recall collapsed for seed {seed}"


class TestBulkBuildRegression:
    """Bulk loads must (re)build or extend the index once — never per marker."""

    def _counting_build_index(self, monkeypatch):
        import repro.core.typespace as typespace_module
        from repro.core.knn import build_index as real_build_index

        calls = {"builds": 0}

        def counting(*args, **kwargs):
            calls["builds"] += 1
            return real_build_index(*args, **kwargs)

        monkeypatch.setattr(typespace_module, "build_index", counting)
        return calls

    def test_bulk_add_then_query_builds_once(self, monkeypatch):
        calls = self._counting_build_index(monkeypatch)
        space = TypeSpace(dim=4)
        space.add_markers([f"t{i % 5}" for i in range(60)], np.random.default_rng(1).normal(size=(60, 4)))
        space.nearest_batch(np.zeros((3, 4)), k=3)
        assert calls["builds"] == 1

    def test_bulk_add_on_built_index_extends_instead_of_rebuilding(self, monkeypatch):
        calls = self._counting_build_index(monkeypatch)
        space = TypeSpace(dim=4)
        space.add_markers(["int"] * 10, np.zeros((10, 4)))
        space.index()
        assert calls["builds"] == 1
        extensions = {"count": 0}
        real_extend = type(space.index()).extend

        def counting_extend(self, points):
            extensions["count"] += 1
            return real_extend(self, points)

        monkeypatch.setattr(type(space.index()), "extend", counting_extend)
        space.add_markers(["str"] * 25, np.ones((25, 4)))
        space.nearest_batch(np.zeros((2, 4)), k=3)
        assert calls["builds"] == 1  # never rebuilt
        assert extensions["count"] == 1  # one extension for the whole bulk call

    def test_load_builds_index_once(self, monkeypatch, tmp_path):
        space = TypeSpace(dim=3)
        space.add_markers(["int", "str", "int"], np.arange(9.0).reshape(3, 3), source="train")
        path = str(tmp_path / "space.npz")
        space.save(path)
        calls = self._counting_build_index(monkeypatch)
        restored = TypeSpace.load(path)
        restored.nearest_batch(np.zeros((2, 3)), k=2)
        assert calls["builds"] == 1
        assert restored.marker_type_names() == ["int", "str", "int"]
        assert restored.marker_sources() == ["train", "train", "train"]

    def test_per_marker_adds_extend_existing_index(self, monkeypatch):
        calls = self._counting_build_index(monkeypatch)
        space = TypeSpace(dim=2)
        for position in range(12):
            space.add_marker(f"t{position % 3}", np.full(2, float(position)))
            space.nearest(np.zeros(2), k=1)  # query between every add
        assert calls["builds"] == 1  # built once, then extended 11 times


class TestDistanceMatrixChunking:
    """The query-chunked l1_distance_matrix must equal the unchunked path."""

    def test_chunked_distances_equal_unchunked(self):
        rng = np.random.default_rng(11)
        queries = rng.normal(size=(37, 9))
        points = rng.normal(size=(23, 9))
        full = l1_distance_matrix(queries, points, max_elements=10**9)
        for cap in (1, 7, 50, 300, 36 * 23):
            chunked = l1_distance_matrix(queries, points, max_elements=cap)
            np.testing.assert_array_equal(chunked, full)

    def test_chunked_distances_equal_unchunked_float32(self):
        rng = np.random.default_rng(12)
        queries = rng.normal(size=(21, 5)).astype(np.float32)
        points = rng.normal(size=(40, 5)).astype(np.float32)
        full = l1_distance_matrix(queries, points, max_elements=10**9)
        chunked = l1_distance_matrix(queries, points, max_elements=64)
        assert chunked.dtype == np.float32
        np.testing.assert_array_equal(chunked, full)

    def test_single_query_never_chunks_below_one_row(self):
        rng = np.random.default_rng(13)
        queries = rng.normal(size=(1, 4))
        points = rng.normal(size=(1000, 4))
        np.testing.assert_array_equal(
            l1_distance_matrix(queries, points, max_elements=10),
            l1_distance_matrix(queries, points, max_elements=10**9),
        )

    def test_exact_index_results_independent_of_cap(self, monkeypatch):
        rng = np.random.default_rng(14)
        points = rng.normal(size=(150, 6))
        queries = rng.normal(size=(30, 6))
        baseline = ExactL1Index(points).query_batch_arrays(queries, k=8)
        monkeypatch.setattr(knn_module, "L1_CHUNK_ELEMENTS", 256)
        capped = ExactL1Index(points).query_batch_arrays(queries, k=8)
        np.testing.assert_array_equal(baseline.indices, capped.indices)
        np.testing.assert_array_equal(baseline.distances, capped.distances)


class TestCandidateBuffer:
    """The preallocated-buffer candidate dedupe must be byte-identical."""

    def _reference_candidates(self, index, signature):
        buckets = [
            index._buckets[probe]
            for probe in index._probe_signatures(signature)
            if probe in index._buckets
        ]
        if not buckets:
            return np.zeros(0, dtype=np.int64)
        return np.unique(np.concatenate(buckets))

    def test_candidates_match_concatenate_unique(self):
        rng = np.random.default_rng(21)
        points = rng.normal(size=(300, 7))
        index = RandomProjectionIndex(points, num_bits=6, probe_radius=2, seed=3)
        signatures = {int(s) for s in index._signatures_for(points)}
        assert signatures
        for signature in signatures:
            produced = index._candidates_for(signature)
            expected = self._reference_candidates(index, signature)
            assert produced.dtype == expected.dtype
            np.testing.assert_array_equal(produced, expected)
            assert produced.tobytes() == expected.tobytes()

    def test_queries_byte_identical_to_reference_dedupe(self, monkeypatch):
        rng = np.random.default_rng(22)
        points = rng.normal(size=(250, 6))
        queries = rng.normal(size=(60, 6))
        index = RandomProjectionIndex(points, num_bits=5, probe_radius=1, seed=9)
        fast = index.query_batch_arrays(queries, k=5)
        reference = self._reference_candidates
        monkeypatch.setattr(
            RandomProjectionIndex,
            "_candidates_for",
            lambda self, signature: reference(self, signature),
        )
        slow_index = RandomProjectionIndex(points, num_bits=5, probe_radius=1, seed=9)
        slow = slow_index.query_batch_arrays(queries, k=5)
        assert fast.indices.tobytes() == slow.indices.tobytes()
        assert fast.distances.tobytes() == slow.distances.tobytes()


class TestBuildIndexKinds:
    def test_unknown_kind_rejected_with_valid_kinds_listed(self):
        points = np.zeros((4, 3))
        with pytest.raises(ValueError, match=r"unknown index kind 'annoy'.*exact, lsh, ivf"):
            build_index(points, kind="annoy")

    def test_exact_kind_rejects_stray_parameters(self):
        with pytest.raises(TypeError, match="exact index takes no parameters"):
            build_index(np.zeros((4, 3)), kind="exact", nlist=8)

    def test_kind_dispatch(self):
        points = np.random.default_rng(1).normal(size=(30, 4))
        assert isinstance(build_index(points, kind="exact"), ExactL1Index)
        assert isinstance(build_index(points, kind="lsh", num_bits=4), RandomProjectionIndex)
        assert isinstance(build_index(points, kind="ivf", nlist=4, nprobe=2), IVFIndex)
        # the legacy boolean still maps onto the kinds
        assert isinstance(build_index(points, approximate=True), RandomProjectionIndex)
        assert isinstance(build_index(points), ExactL1Index)

    def test_validate_index_params_catches_bad_params_without_points(self):
        with pytest.raises(ValueError, match="nprobe .* cannot exceed nlist"):
            validate_index_params("ivf", dim=8, nlist=4, nprobe=9)
        with pytest.raises(ValueError, match="unknown index kind"):
            validate_index_params("faiss", dim=8)
