"""Parallel ingestion and the content-addressed graph cache."""


import pytest

from repro.corpus import (
    EXTRACTOR_VERSION,
    GraphCache,
    IngestConfig,
    TypeAnnotationDataset,
    extract_file,
    ingest_sources,
    parallel_map,
)
from repro.corpus.serialize import graph_to_payload
from repro.corpus.synthesis import CorpusSynthesizer, SynthesisConfig
from repro.graph.builder import GraphBuildError


@pytest.fixture(scope="module")
def corpus() -> dict[str, str]:
    synthesizer = CorpusSynthesizer(SynthesisConfig(num_files=8, seed=19, duplicate_fraction=0.0))
    return {entry.filename: entry.source for entry in synthesizer.generate()}


def _payloads(extracted_files):
    return [graph_to_payload(extracted.graph) for extracted in extracted_files]


class TestExtractionWorker:
    def test_extracts_graph_and_annotated_symbols(self):
        source = "def double(x: int) -> int:\n    y: str = 'a'\n    return x * 2\n"
        extracted = extract_file("mod.py", source)
        assert extracted.filename == "mod.py"
        assert extracted.graph.num_nodes > 0
        annotations = {symbol.annotation for _, symbol in extracted.annotated_symbols}
        assert {"int", "str"} <= annotations
        # Positions index into graph.symbols.
        for position, symbol in extracted.annotated_symbols:
            assert extracted.graph.symbols[position] is symbol

    def test_uninformative_annotations_filtered(self):
        source = "def f(x: Any) -> None:\n    return None\n"
        extracted = extract_file("mod.py", source)
        assert extracted.annotated_symbols == []

    def test_unparsable_source_raises(self):
        with pytest.raises(GraphBuildError):
            extract_file("broken.py", "def broken(:\n")


class TestParallelEqualsSerial:
    def test_graphs_identical_across_jobs(self, corpus):
        serial, serial_report = ingest_sources(corpus, IngestConfig(jobs=1))
        parallel, parallel_report = ingest_sources(corpus, IngestConfig(jobs=3))
        assert [e.filename for e in serial] == [e.filename for e in parallel] == sorted(corpus)
        assert _payloads(serial) == _payloads(parallel)
        assert serial_report.extracted == parallel_report.extracted == len(corpus)

    def test_datasets_identical_across_jobs(self, corpus):
        serial = TypeAnnotationDataset.from_sources(dict(corpus), ingest=IngestConfig(jobs=1))
        parallel = TypeAnnotationDataset.from_sources(dict(corpus), ingest=IngestConfig(jobs=3))
        assert serial.summary() == parallel.summary()
        for name in ("train", "valid", "test"):
            assert serial.splits[name].samples == parallel.splits[name].samples
            assert _payloads_of(serial.splits[name]) == _payloads_of(parallel.splits[name])
        assert list(serial.registry) == list(parallel.registry)
        assert serial.subtokens.tokens == parallel.subtokens.tokens

    def test_default_from_sources_matches_explicit_serial(self, corpus):
        default = TypeAnnotationDataset.from_sources(dict(corpus))
        explicit = TypeAnnotationDataset.from_sources(dict(corpus), ingest=IngestConfig(jobs=1))
        assert default.summary() == explicit.summary()
        assert default.train.samples == explicit.train.samples

    def test_unparsable_files_skipped_in_both_modes(self, corpus):
        files = dict(corpus)
        files["zz_broken.py"] = "def broken(:\n"
        serial, serial_report = ingest_sources(files, IngestConfig(jobs=1))
        parallel, parallel_report = ingest_sources(files, IngestConfig(jobs=3))
        assert serial_report.failed_files == parallel_report.failed_files == ["zz_broken.py"]
        assert [e.filename for e in serial] == [e.filename for e in parallel] == sorted(corpus)

    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(str, items, jobs=3) == [str(item) for item in items]
        assert parallel_map(str, items, jobs=1) == [str(item) for item in items]


class TestGraphCache:
    def test_second_ingestion_hits_for_every_file(self, corpus, tmp_path):
        config = IngestConfig(jobs=1, cache_dir=tmp_path)
        cold, cold_report = ingest_sources(corpus, config)
        warm, warm_report = ingest_sources(corpus, config)
        assert cold_report.cache_hits == 0 and cold_report.extracted == len(corpus)
        assert warm_report.cache_hits == len(corpus) and warm_report.extracted == 0
        assert _payloads(cold) == _payloads(warm)

    def test_source_change_invalidates_only_that_file(self, corpus, tmp_path):
        config = IngestConfig(jobs=1, cache_dir=tmp_path)
        ingest_sources(corpus, config)
        edited = dict(corpus)
        name = sorted(edited)[0]
        edited[name] = edited[name] + "\nEXTRA: int = 5\n"
        _, report = ingest_sources(edited, config)
        assert report.extracted == 1
        assert report.cache_hits == len(corpus) - 1

    def test_extractor_version_change_invalidates_everything(self, corpus, tmp_path):
        ingest_sources(corpus, IngestConfig(jobs=1, cache_dir=tmp_path))
        _, report = ingest_sources(
            corpus, IngestConfig(jobs=1, cache_dir=tmp_path, extractor_version="next-version")
        )
        assert report.cache_hits == 0
        assert report.extracted == len(corpus)

    def test_rename_is_still_a_hit_with_renamed_graph(self, tmp_path):
        source = "def f(x: int) -> int:\n    return x\n"
        cache = GraphCache(tmp_path)
        cache.store(source, extract_file("old.py", source))
        reloaded = cache.load(source, "new.py")
        assert reloaded is not None
        assert reloaded.graph.filename == "new.py"

    def test_corrupted_entry_recovers_by_reextraction(self, corpus, tmp_path):
        config = IngestConfig(jobs=1, cache_dir=tmp_path)
        clean, _ = ingest_sources(corpus, config)
        victim = sorted(tmp_path.glob("*.npz"))[0]
        victim.write_bytes(b"this is not a zip archive")
        recovered, report = ingest_sources(corpus, config)
        assert report.extracted == 1  # only the corrupted entry was rebuilt
        assert report.cache_hits == len(corpus) - 1
        assert _payloads(recovered) == _payloads(clean)
        # The entry was rewritten and is valid again.
        import numpy as np

        from repro.corpus.serialize import flat_graphs_from_arrays

        with np.load(victim, allow_pickle=False) as archive:
            (flat,) = flat_graphs_from_arrays(archive)
        assert flat.num_nodes > 0

    def test_fingerprint_mismatch_is_a_miss(self, corpus, tmp_path):
        import numpy as np

        config = IngestConfig(jobs=1, cache_dir=tmp_path)
        clean, _ = ingest_sources(corpus, config)
        victim = sorted(tmp_path.glob("*.npz"))[0]
        # Tamper with one content array while keeping the archive well-formed:
        # the stored fingerprint no longer matches, so the entry must miss.
        with np.load(victim, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["nodes"] = arrays["nodes"] + 1
        with open(victim, "wb") as handle:
            np.savez(handle, **arrays)
        recovered, report = ingest_sources(corpus, config)
        assert report.extracted == 1
        assert _payloads(recovered) == _payloads(clean)

    def test_truncated_entry_recovers_too(self, corpus, tmp_path):
        config = IngestConfig(jobs=1, cache_dir=tmp_path)
        clean, _ = ingest_sources(corpus, config)
        victim = sorted(tmp_path.glob("*.npz"))[-1]
        victim.write_bytes(victim.read_bytes()[:50])
        recovered, report = ingest_sources(corpus, config)
        assert report.extracted == 1
        assert _payloads(recovered) == _payloads(clean)

    def test_key_depends_on_source_and_version(self, tmp_path):
        cache = GraphCache(tmp_path)
        other = GraphCache(tmp_path, extractor_version=EXTRACTOR_VERSION + "-other")
        assert cache.key("a") != cache.key("b")
        assert cache.key("a") != other.key("a")


class TestIngestReport:
    def test_summary_fields(self, corpus, tmp_path):
        _, report = ingest_sources(corpus, IngestConfig(jobs=1, cache_dir=tmp_path))
        summary = report.summary()
        assert summary["files"] == len(corpus)
        assert summary["extracted"] == len(corpus)
        assert summary["cache_hits"] == 0
        assert summary["elapsed_seconds"] > 0
        assert report.files_per_second > 0

    def test_dataset_carries_ingest_report(self, corpus):
        dataset = TypeAnnotationDataset.from_sources(dict(corpus))
        assert dataset.ingest_report is not None
        assert dataset.ingest_report.total_files == len(dataset.sources)


class TestSplitGrouping:
    def test_samples_by_graph_matches_naive_grouping(self, corpus):
        dataset = TypeAnnotationDataset.from_sources(dict(corpus))
        split = dataset.train
        naive: dict[int, list] = {}
        for sample in split.samples:
            naive.setdefault(sample.graph_index, []).append(sample)
        assert split.samples_by_graph() == naive

    def test_samples_of_kind_matches_naive_filter(self, corpus):
        dataset = TypeAnnotationDataset.from_sources(dict(corpus))
        split = dataset.train
        kinds = {sample.kind for sample in split.samples}
        for kind in kinds:
            assert split.samples_of_kind(kind) == [s for s in split.samples if s.kind == kind]

    def test_grouping_cache_invalidates_on_append(self, corpus):
        dataset = TypeAnnotationDataset.from_sources(dict(corpus))
        split = dataset.train
        before = dict(split.samples_by_graph())
        extra = split.samples[0]
        split.samples.append(extra)
        after = split.samples_by_graph()
        assert after != before
        assert after[extra.graph_index][-1] is extra


def _payloads_of(split):
    return [graph_to_payload(graph) for graph in split.graphs]
