"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_corpus_defaults(self):
        args = build_parser().parse_args(["corpus"])
        assert args.command == "corpus" and args.num_files == 40

    def test_train_arguments(self):
        args = build_parser().parse_args(["train", "--family", "names", "--loss", "space", "--epochs", "2"])
        assert args.family == "names" and args.loss == "space" and args.epochs == 2

    def test_suggest_requires_files(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suggest"])

    def test_check_mode_choices(self):
        args = build_parser().parse_args(["check", "x.py", "--mode", "lenient"])
        assert args.mode == "lenient"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "x.py", "--mode", "bogus"])


class TestCorpusCommand:
    def test_writes_files_and_prints_statistics(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        exit_code = main(["corpus", "--num-files", "6", "--out", str(out_dir)])
        assert exit_code == 0
        written = list(out_dir.glob("*.py"))
        assert len(written) >= 6
        output = capsys.readouterr().out
        assert "distinct_types" in output

    def test_statistics_only_without_out(self, capsys):
        assert main(["corpus", "--num-files", "4"]) == 0
        assert "train_samples" in capsys.readouterr().out


class TestCheckCommand:
    def test_clean_file_returns_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("def f(x: int) -> int:\n    return x + 1\n")
        assert main(["check", str(path)]) == 0
        assert "no type errors" in capsys.readouterr().out

    def test_file_with_errors_returns_nonzero_and_prints_diagnostics(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f() -> int:\n    return 'text'\n")
        assert main(["check", str(path)]) == 1
        assert "return-value" in capsys.readouterr().out

    def test_lenient_mode_can_accept_what_strict_rejects(self, tmp_path):
        path = tmp_path / "narrowing.py"
        path.write_text("def f(x: float) -> int:\n    return x\n")
        strict_code = main(["check", str(path), "--mode", "strict"])
        lenient_code = main(["check", str(path), "--mode", "lenient"])
        assert strict_code == 1 and lenient_code == 0


class TestTrainAndSuggestCommands:
    def test_train_reports_metrics_and_saves_typespace(self, tmp_path, capsys):
        space_path = tmp_path / "space.npz"
        exit_code = main([
            "train", "--num-files", "10", "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names", "--loss", "typilus",
            "--save-typespace", str(space_path),
        ])
        assert exit_code == 0
        assert space_path.exists()
        output = capsys.readouterr().out
        assert "exact" in output

    def test_suggest_prints_table_for_user_file(self, tmp_path, capsys):
        target = tmp_path / "snippet.py"
        target.write_text("def scale_price(price, factor):\n    return price * factor\n")
        exit_code = main([
            "suggest", str(target), "--num-files", "10", "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names", "--no-type-checker",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "scale_price" in output and "suggested" in output

    def test_train_on_directory_corpus(self, tmp_path, capsys):
        corpus_dir = tmp_path / "proj"
        corpus_dir.mkdir()
        for index in range(6):
            (corpus_dir / f"m{index}.py").write_text(
                "def count_items(items: list) -> int:\n    return len(items)\n"
                f"def label_{index}(name: str) -> str:\n    return name\n"
            )
        exit_code = main([
            "train", "--corpus-dir", str(corpus_dir), "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names",
        ])
        assert exit_code == 0

    def test_train_on_empty_directory_fails_cleanly(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["train", "--corpus-dir", str(empty), "--epochs", "1"])
