"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_corpus_defaults(self):
        args = build_parser().parse_args(["corpus"])
        assert args.command == "corpus" and args.num_files == 40

    def test_train_arguments(self):
        args = build_parser().parse_args(["train", "--family", "names", "--loss", "space", "--epochs", "2"])
        assert args.family == "names" and args.loss == "space" and args.epochs == 2

    def test_suggest_requires_files(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["suggest"])

    def test_check_mode_choices(self):
        args = build_parser().parse_args(["check", "x.py", "--mode", "lenient"])
        assert args.mode == "lenient"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["check", "x.py", "--mode", "bogus"])


class TestCorpusCommand:
    def test_writes_files_and_prints_statistics(self, tmp_path, capsys):
        out_dir = tmp_path / "corpus"
        exit_code = main(["corpus", "--num-files", "6", "--out", str(out_dir)])
        assert exit_code == 0
        written = list(out_dir.glob("*.py"))
        assert len(written) >= 6
        output = capsys.readouterr().out
        assert "distinct_types" in output

    def test_statistics_only_without_out(self, capsys):
        assert main(["corpus", "--num-files", "4"]) == 0
        assert "train_samples" in capsys.readouterr().out


class TestCheckCommand:
    def test_clean_file_returns_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("def f(x: int) -> int:\n    return x + 1\n")
        assert main(["check", str(path)]) == 0
        assert "no type errors" in capsys.readouterr().out

    def test_file_with_errors_returns_nonzero_and_prints_diagnostics(self, tmp_path, capsys):
        path = tmp_path / "bad.py"
        path.write_text("def f() -> int:\n    return 'text'\n")
        assert main(["check", str(path)]) == 1
        assert "return-value" in capsys.readouterr().out

    def test_lenient_mode_can_accept_what_strict_rejects(self, tmp_path):
        path = tmp_path / "narrowing.py"
        path.write_text("def f(x: float) -> int:\n    return x\n")
        strict_code = main(["check", str(path), "--mode", "strict"])
        lenient_code = main(["check", str(path), "--mode", "lenient"])
        assert strict_code == 1 and lenient_code == 0


class TestTrainAndSuggestCommands:
    def test_train_reports_metrics_and_saves_typespace(self, tmp_path, capsys):
        space_path = tmp_path / "space.npz"
        exit_code = main([
            "train", "--num-files", "10", "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names", "--loss", "typilus",
            "--save-typespace", str(space_path),
        ])
        assert exit_code == 0
        assert space_path.exists()
        output = capsys.readouterr().out
        assert "exact" in output

    def test_suggest_prints_table_for_user_file(self, tmp_path, capsys):
        target = tmp_path / "snippet.py"
        target.write_text("def scale_price(price, factor):\n    return price * factor\n")
        exit_code = main([
            "suggest", str(target), "--num-files", "10", "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names", "--no-type-checker",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "scale_price" in output and "suggested" in output

    def test_train_on_directory_corpus(self, tmp_path, capsys):
        corpus_dir = tmp_path / "proj"
        corpus_dir.mkdir()
        for index in range(6):
            (corpus_dir / f"m{index}.py").write_text(
                "def count_items(items: list) -> int:\n    return len(items)\n"
                f"def label_{index}(name: str) -> str:\n    return name\n"
            )
        exit_code = main([
            "train", "--corpus-dir", str(corpus_dir), "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names",
        ])
        assert exit_code == 0

    def test_train_on_empty_directory_fails_cleanly(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["train", "--corpus-dir", str(empty), "--epochs", "1"])


class TestIngestCommand:
    def _write_corpus(self, directory, files=6):
        # Each file is structurally distinct so deduplication keeps them all.
        directory.mkdir()
        for index in range(files):
            (directory / f"m{index}.py").write_text(
                f"def compute_{index}(value_{index}: int) -> int:\n"
                f"    total_{index} = value_{index} * {index + 2}\n"
                f"    return total_{index} + {index * 7}\n"
                f"def greet_{index}(name_{index}: str) -> str:\n"
                f"    return 'prefix_{index}' + name_{index} * {index + 1}\n"
            )

    def test_parser_accepts_ingest_options(self):
        args = build_parser().parse_args(
            ["ingest", "--out", "ds", "--jobs", "4", "--cache-dir", "cache", "--shard-size", "8"]
        )
        assert args.command == "ingest" and args.jobs == 4
        assert str(args.cache_dir) == "cache" and args.shard_size == 8

    def test_ingest_writes_dataset_then_train_loads_it(self, tmp_path, capsys):
        corpus_dir = tmp_path / "proj"
        self._write_corpus(corpus_dir)
        dataset_dir = tmp_path / "dataset"
        cache_dir = tmp_path / "cache"
        exit_code = main([
            "ingest", "--corpus-dir", str(corpus_dir), "--out", str(dataset_dir),
            "--jobs", "2", "--cache-dir", str(cache_dir),
        ])
        assert exit_code == 0
        assert (dataset_dir / "dataset.json").exists()
        output = capsys.readouterr().out
        assert "dataset saved" in output and "cache_hits" in output
        # The cache was populated: re-ingesting hits for every file.
        assert main([
            "ingest", "--corpus-dir", str(corpus_dir), "--out", str(dataset_dir),
            "--cache-dir", str(cache_dir),
        ]) == 0
        warm_output = capsys.readouterr().out
        assert any(
            line.split()[:2] == ["cache_hits", "6"] for line in warm_output.splitlines() if line.strip()
        ), warm_output

        exit_code = main([
            "train", "--dataset", str(dataset_dir), "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names",
        ])
        assert exit_code == 0
        assert "loaded dataset" in capsys.readouterr().out

    def test_train_save_dataset_round_trips(self, tmp_path, capsys):
        dataset_dir = tmp_path / "dataset"
        exit_code = main([
            "train", "--num-files", "8", "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names", "--save-dataset", str(dataset_dir),
        ])
        assert exit_code == 0
        assert (dataset_dir / "dataset.json").exists()
        capsys.readouterr()
        assert main([
            "train", "--dataset", str(dataset_dir), "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names",
        ]) == 0
        assert "exact" in capsys.readouterr().out

    def test_annotate_with_jobs_and_cache_dir(self, tmp_path, capsys):
        project = tmp_path / "proj"
        self._write_corpus(project, files=3)
        model_dir = tmp_path / "model"
        cache_dir = tmp_path / "anncache"
        assert main([
            "train", "--num-files", "8", "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names", "--save-model", str(model_dir),
        ]) == 0
        capsys.readouterr()
        assert main([
            "annotate", str(project), "--load-model", str(model_dir),
            "--jobs", "2", "--cache-dir", str(cache_dir), "--no-type-checker",
        ]) == 0
        first = capsys.readouterr().out
        assert any(
            line.split()[:2] == ["reused_files", "0"] for line in first.splitlines() if line.strip()
        ), first
        assert main([
            "annotate", str(project), "--load-model", str(model_dir),
            "--jobs", "2", "--cache-dir", str(cache_dir), "--no-type-checker",
        ]) == 0
        second = capsys.readouterr().out
        assert any(
            line.split()[:2] == ["reused_files", "3"] for line in second.splitlines() if line.strip()
        ), second
