"""Tests for the autograd engine: gradients checked against finite differences."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.tensor import Tensor


def numeric_gradient(fn, x0, eps=1e-6):
    grad = np.zeros_like(x0)
    for index in np.ndindex(x0.shape):
        plus, minus = x0.copy(), x0.copy()
        plus[index] += eps
        minus[index] -= eps
        grad[index] = (float(fn(Tensor(plus)).data) - float(fn(Tensor(minus)).data)) / (2 * eps)
    return grad


def assert_gradient_matches(fn, x0, tolerance=1e-4):
    x = Tensor(x0.copy(), requires_grad=True)
    fn(x).backward()
    assert x.grad is not None
    numeric = numeric_gradient(fn, x0)
    assert np.max(np.abs(numeric - x.grad)) < tolerance


class TestBasicProperties:
    def test_shape_size_ndim(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.shape == (3, 4) and t.ndim == 2 and t.size == 12 and len(t) == 3

    def test_data_is_float64(self):
        assert Tensor([1, 2, 3]).data.dtype == np.float64

    def test_repr_mentions_requires_grad(self):
        assert "requires_grad" in repr(Tensor([1.0], requires_grad=True))
        assert "requires_grad" not in repr(Tensor([1.0]))

    def test_detach_shares_data_but_no_grad(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = t.detach()
        assert not d.requires_grad
        assert d.data is t.data

    def test_item(self):
        assert Tensor([[3.5]]).item() == 3.5

    def test_backward_requires_grad(self):
        with pytest.raises(ValueError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar_without_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_zero_grad(self):
        t = Tensor([1.0], requires_grad=True)
        (t * 3).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_gradients_accumulate_across_backward_calls(self):
        t = Tensor([2.0], requires_grad=True)
        (t * 1).sum().backward()
        (t * 1).sum().backward()
        assert np.allclose(t.grad, [2.0])


class TestArithmeticGradients:
    def setup_method(self):
        np.random.seed(0)
        self.x = np.random.randn(3, 4)

    def test_add(self):
        assert_gradient_matches(lambda x: (x + 2.5).sum(), self.x)

    def test_radd_and_rsub(self):
        assert_gradient_matches(lambda x: (1.0 + x).sum(), self.x)
        assert_gradient_matches(lambda x: (1.0 - x).sum(), self.x)

    def test_mul(self):
        other = np.random.randn(3, 4)
        assert_gradient_matches(lambda x: (x * Tensor(other)).sum(), self.x)

    def test_div(self):
        denominator = np.abs(np.random.randn(3, 4)) + 1.0
        assert_gradient_matches(lambda x: (x / Tensor(denominator)).sum(), self.x)
        assert_gradient_matches(lambda x: (2.0 / (x * x + 1.0)).sum(), self.x)

    def test_pow(self):
        assert_gradient_matches(lambda x: (x**3).sum(), self.x)

    def test_neg_sub(self):
        assert_gradient_matches(lambda x: (-x - x * 2).sum(), self.x)

    def test_matmul(self):
        weight = Tensor(np.random.randn(4, 5))
        assert_gradient_matches(lambda x: (x @ weight).sum(), self.x)

    def test_matmul_gradient_flows_to_both_operands(self):
        a = Tensor(np.random.randn(2, 3), requires_grad=True)
        b = Tensor(np.random.randn(3, 4), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == (2, 3) and b.grad.shape == (3, 4)

    def test_broadcasting_add_bias(self):
        bias = np.random.randn(4)
        x = Tensor(self.x, requires_grad=True)
        b = Tensor(bias, requires_grad=True)
        (x + b).sum().backward()
        assert np.allclose(b.grad, np.full(4, 3.0))

    def test_broadcasting_multiplication(self):
        scale = Tensor(np.random.randn(1, 4), requires_grad=True)
        x = Tensor(self.x)
        (x * scale).sum().backward()
        assert scale.grad.shape == (1, 4)
        assert np.allclose(scale.grad, self.x.sum(axis=0, keepdims=True))


class TestNonLinearityGradients:
    def setup_method(self):
        np.random.seed(1)
        self.x = np.random.randn(4, 3)

    def test_exp_log(self):
        assert_gradient_matches(lambda x: (x.exp() + 1.0).log().sum(), self.x)

    def test_tanh_sigmoid(self):
        assert_gradient_matches(lambda x: (x.tanh() * x.sigmoid()).sum(), self.x)

    def test_relu(self):
        assert_gradient_matches(lambda x: x.relu().sum(), self.x + 0.1)

    def test_relu_zeroes_negative_gradient(self):
        t = Tensor(np.array([-1.0, 2.0]), requires_grad=True)
        t.relu().sum().backward()
        assert np.allclose(t.grad, [0.0, 1.0])

    def test_abs(self):
        assert_gradient_matches(lambda x: x.abs().sum(), self.x)

    def test_sqrt(self):
        assert_gradient_matches(lambda x: (x * x + 1.0).sqrt().sum(), self.x)

    def test_clip(self):
        assert_gradient_matches(lambda x: x.clip(-0.5, 0.5).sum(), self.x)


class TestReductionsAndShapes:
    def setup_method(self):
        np.random.seed(2)
        self.x = np.random.randn(3, 4)

    def test_sum_axis(self):
        assert_gradient_matches(lambda x: (x.sum(axis=0) ** 2).sum(), self.x)
        assert_gradient_matches(lambda x: (x.sum(axis=1, keepdims=True) * 2).sum(), self.x)

    def test_mean(self):
        assert_gradient_matches(lambda x: x.mean(), self.x)
        assert_gradient_matches(lambda x: (x.mean(axis=1) ** 2).sum(), self.x)

    def test_max(self):
        distinct = self.x + np.arange(12).reshape(3, 4) * 0.01
        assert_gradient_matches(lambda x: x.max(axis=1).sum(), distinct)

    def test_max_ties_split_gradient(self):
        t = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        assert np.allclose(t.grad, [[0.5, 0.5]])

    def test_reshape_transpose(self):
        assert_gradient_matches(lambda x: (x.reshape(4, 3).transpose() * 2).sum(), self.x)

    def test_getitem_slice(self):
        assert_gradient_matches(lambda x: x[:, 1:3].sum(), self.x)

    def test_getitem_fancy_index(self):
        rows = np.array([0, 0, 2])
        x = Tensor(self.x, requires_grad=True)
        x[rows].sum().backward()
        assert np.allclose(x.grad[0], np.full(4, 2.0))
        assert np.allclose(x.grad[1], np.zeros(4))
        assert np.allclose(x.grad[2], np.ones(4))

    def test_gather_rows_accumulates_repeats(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        x.gather_rows(np.array([1, 1, 1])).sum().backward()
        assert np.allclose(x.grad, [[0, 0], [3, 3], [0, 0]])

    def test_sum_all(self):
        assert_gradient_matches(lambda x: (x * x).sum(), self.x)


class TestGraphReuse:
    def test_diamond_dependency(self):
        """A value used twice must receive the sum of both gradient paths."""
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * 2
        z = (y + y * y).sum()  # dz/dx = 2 + 2*y*2 = 2 + 24 = 26 at x=3 (y=6)
        z.backward()
        assert np.allclose(x.grad, [26.0])

    def test_intermediate_gradients_are_cleared(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = x * 3
        y.sum().backward()
        assert y.grad is None and x.grad is not None


@settings(max_examples=25, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=4),
    cols=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_property_composite_gradient_matches_finite_difference(rows, cols, seed):
    """Random small tensors: analytic gradient of a composite expression is correct."""
    rng = np.random.default_rng(seed)
    x0 = rng.normal(size=(rows, cols))

    def fn(x):
        return ((x.tanh() * 2 + x.sigmoid()) ** 2).mean()

    assert_gradient_matches(fn, x0, tolerance=1e-4)
