"""Tests for repro.utils: RNG, text helpers, timing."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.rng import SeededRNG, temp_seed
from repro.utils.text import camel_and_snake_split, normalise_whitespace, truncate
from repro.utils.timing import Stopwatch, timed


class TestSeededRNG:
    def test_same_seed_same_sequence(self):
        a, b = SeededRNG(42), SeededRNG(42)
        assert [a.randint(0, 100) for _ in range(10)] == [b.randint(0, 100) for _ in range(10)]
        assert np.allclose(a.normal((3, 3)), b.normal((3, 3)))

    def test_different_seeds_differ(self):
        a, b = SeededRNG(1), SeededRNG(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != [b.randint(0, 10**9) for _ in range(5)]

    def test_fork_is_deterministic_and_independent(self):
        parent = SeededRNG(7)
        fork_a = parent.fork(1)
        fork_b = SeededRNG(7).fork(1)
        assert fork_a.randint(0, 10**9) == fork_b.randint(0, 10**9)
        assert parent.fork(1).seed != parent.fork(2).seed

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SeededRNG(0).choice([])

    def test_shuffle_returns_copy(self):
        original = [1, 2, 3, 4, 5]
        shuffled = SeededRNG(3).shuffle(original)
        assert original == [1, 2, 3, 4, 5]
        assert sorted(shuffled) == original

    def test_sample_and_choices(self):
        rng = SeededRNG(9)
        sample = rng.sample(list(range(20)), 5)
        assert len(sample) == 5 and len(set(sample)) == 5
        weighted = rng.choices(["a", "b"], weights=[1.0, 0.0], k=10)
        assert weighted == ["a"] * 10

    def test_permutation_covers_range(self):
        perm = SeededRNG(4).permutation(10)
        assert sorted(perm.tolist()) == list(range(10))

    def test_temp_seed_restores_state(self):
        np.random.seed(100)
        before = np.random.random()
        np.random.seed(100)
        with temp_seed(5):
            inside = np.random.random()
        after = np.random.random()
        assert before == after
        with temp_seed(5):
            assert np.random.random() == inside


class TestTextHelpers:
    @pytest.mark.parametrize(
        "identifier,expected",
        [
            ("numNodes", ["num", "nodes"]),
            ("get_node_count", ["get", "node", "count"]),
            ("HTTPServer", ["http", "server"]),
            ("snake_case_name", ["snake", "case", "name"]),
            ("X", ["x"]),
            ("", []),
            ("__init__", ["init"]),
            ("conv2d", ["conv2d"]),
            ("self.total_count", ["self", "total", "count"]),
        ],
    )
    def test_camel_and_snake_split(self, identifier, expected):
        assert camel_and_snake_split(identifier) == expected

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), whitelist_characters="_"), max_size=30))
    def test_split_is_lowercase_and_nonempty_parts(self, identifier):
        parts = camel_and_snake_split(identifier)
        assert all(part and part == part.lower() for part in parts)

    def test_normalise_whitespace(self):
        assert normalise_whitespace("  a \n\t b   c ") == "a b c"

    def test_truncate(self):
        assert truncate("short", 10) == "short"
        assert truncate("a" * 30, 10).endswith("…")
        assert len(truncate("a" * 30, 10)) == 10


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.measure("work"):
            sum(range(1000))
        with watch.measure("work"):
            sum(range(1000))
        assert watch.counts["work"] == 2
        assert watch.total("work") > 0
        assert watch.mean("work") <= watch.total("work")
        assert "work" in watch.summary()

    def test_mean_of_missing_section_is_zero(self):
        assert Stopwatch().mean("nothing") == 0.0

    def test_timed_returns_result_and_elapsed(self):
        result, elapsed = timed(lambda: 21 * 2)
        assert result == 42
        assert elapsed >= 0.0
