"""Tests for repro.nn.functional: softmax, losses, segment ops, distances."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.tensor import Tensor


class TestSoftmaxAndCrossEntropy:
    def test_softmax_rows_sum_to_one(self):
        logits = Tensor(np.random.randn(5, 7))
        probs = F.softmax(logits).data
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert (probs >= 0).all()

    def test_softmax_is_shift_invariant(self):
        logits = np.random.randn(3, 4)
        a = F.softmax(Tensor(logits)).data
        b = F.softmax(Tensor(logits + 100.0)).data
        assert np.allclose(a, b)

    def test_log_softmax_matches_log_of_softmax(self):
        logits = Tensor(np.random.randn(4, 6))
        assert np.allclose(F.log_softmax(logits).data, np.log(F.softmax(logits).data), atol=1e-10)

    def test_cross_entropy_perfect_prediction_is_near_zero(self):
        logits = Tensor(np.array([[100.0, 0.0], [0.0, 100.0]]))
        loss = F.cross_entropy(logits, np.array([0, 1]))
        assert float(loss.data) < 1e-6

    def test_cross_entropy_uniform_is_log_classes(self):
        logits = Tensor(np.zeros((3, 4)))
        loss = F.cross_entropy(logits, np.array([0, 1, 2]))
        assert np.isclose(float(loss.data), np.log(4))

    def test_cross_entropy_requires_2d(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros(3)), np.array([0]))

    def test_cross_entropy_gradient_improves_loss(self):
        logits = Tensor(np.zeros((2, 3)), requires_grad=True)
        targets = np.array([0, 2])
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        updated = Tensor(logits.data - 1.0 * logits.grad)
        assert float(F.cross_entropy(updated, targets).data) < float(loss.data)

    def test_nll_of_probabilities(self):
        probabilities = Tensor(np.array([[0.9, 0.1], [0.2, 0.8]]))
        loss = F.nll_of_probabilities(probabilities, np.array([0, 1]))
        expected = -(np.log(0.9) + np.log(0.8)) / 2
        assert np.isclose(float(loss.data), expected, atol=1e-6)


class TestConcatenateAndStack:
    def test_concatenate_values_and_gradients(self):
        a = Tensor(np.ones((2, 3)), requires_grad=True)
        b = Tensor(np.full((2, 2), 2.0), requires_grad=True)
        out = F.concatenate([a, b], axis=1)
        assert out.shape == (2, 5)
        (out * 2).sum().backward()
        assert np.allclose(a.grad, 2.0) and np.allclose(b.grad, 2.0)

    def test_concatenate_empty_raises(self):
        with pytest.raises(ValueError):
            F.concatenate([])

    def test_stack_axis0(self):
        a = Tensor(np.ones(3), requires_grad=True)
        b = Tensor(np.zeros(3), requires_grad=True)
        out = F.stack([a, b], axis=0)
        assert out.shape == (2, 3)
        out.sum().backward()
        assert np.allclose(a.grad, 1.0) and np.allclose(b.grad, 1.0)

    def test_stack_empty_raises(self):
        with pytest.raises(ValueError):
            F.stack([])


class TestSegmentOps:
    def test_segment_sum_matches_manual(self):
        values = Tensor(np.arange(8, dtype=float).reshape(4, 2))
        ids = np.array([0, 1, 0, 2])
        out = F.segment_sum(values, ids, 3).data
        assert np.allclose(out[0], values.data[0] + values.data[2])
        assert np.allclose(out[1], values.data[1])
        assert np.allclose(out[2], values.data[3])

    def test_segment_mean_empty_segment_is_zero(self):
        values = Tensor(np.ones((2, 3)))
        out = F.segment_mean(values, np.array([0, 2]), 4).data
        assert np.allclose(out[1], 0.0) and np.allclose(out[3], 0.0)
        assert np.allclose(out[0], 1.0)

    def test_segment_max_picks_maximum_and_routes_gradient(self):
        values = Tensor(np.array([[1.0], [5.0], [3.0]]), requires_grad=True)
        out = F.segment_max(values, np.array([0, 0, 1]), 2)
        assert np.allclose(out.data, [[5.0], [3.0]])
        out.sum().backward()
        assert np.allclose(values.grad, [[0.0], [1.0], [1.0]])

    def test_segment_max_empty_segment_uses_empty_value(self):
        values = Tensor(np.ones((1, 2)))
        out = F.segment_max(values, np.array([0]), 3, empty_value=-7.0).data
        assert np.allclose(out[1], -7.0) and np.allclose(out[2], -7.0)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        segments=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_segment_sum_equals_numpy_groupby(self, n, segments, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(n, 3))
        ids = rng.integers(0, segments, size=n)
        ours = F.segment_sum(Tensor(values), ids, segments).data
        expected = np.zeros((segments, 3))
        for row, segment in zip(values, ids):
            expected[segment] += row
        assert np.allclose(ours, expected)

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=12),
        segments=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_segment_max_equals_numpy_groupby(self, n, segments, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=(n, 2))
        ids = rng.integers(0, segments, size=n)
        ours = F.segment_max(Tensor(values), ids, segments, empty_value=0.0).data
        for segment in range(segments):
            mask = ids == segment
            expected = values[mask].max(axis=0) if mask.any() else np.zeros(2)
            assert np.allclose(ours[segment], expected)


class TestDistancesAndDropout:
    def test_pairwise_l1_matches_scipy_style_reference(self):
        a = np.random.randn(4, 3)
        b = np.random.randn(5, 3)
        ours = F.pairwise_l1_distances(Tensor(a), Tensor(b)).data
        expected = np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
        assert np.allclose(ours, expected)

    def test_pairwise_l1_self_distance_zero_diagonal(self):
        a = np.random.randn(6, 4)
        distances = F.pairwise_l1_distances(Tensor(a), Tensor(a)).data
        assert np.allclose(np.diag(distances), 0.0)

    def test_dropout_disabled_in_eval_or_zero_rate(self):
        rng = np.random.default_rng(0)
        values = Tensor(np.ones((10, 10)))
        assert np.allclose(F.dropout(values, 0.5, rng, training=False).data, 1.0)
        assert np.allclose(F.dropout(values, 0.0, rng, training=True).data, 1.0)

    def test_dropout_scales_kept_units(self):
        rng = np.random.default_rng(0)
        values = Tensor(np.ones((2000,)))
        dropped = F.dropout(values, 0.5, rng, training=True).data
        kept = dropped[dropped > 0]
        assert np.allclose(kept, 2.0)  # inverted dropout scaling
        assert 0.3 < (dropped > 0).mean() < 0.7


class TestSegmentMaxGradients:
    """Regression coverage for the optimized segment_max backward."""

    def test_gradient_with_ties_splits_equally(self):
        # Rows 0 and 1 are identical in segment 0 → each winner gets half.
        values = Tensor(np.array([[3.0, 1.0], [3.0, 5.0], [2.0, 4.0]]), requires_grad=True)
        ids = np.array([0, 0, 1])
        out = F.segment_max(values, ids, 2)
        out.sum().backward()
        expected = np.array([[0.5, 0.0], [0.5, 1.0], [1.0, 1.0]])
        assert np.allclose(values.grad, expected)

    def test_gradient_with_empty_segments_and_no_ties(self):
        values = Tensor(np.array([[1.0, 9.0], [4.0, 2.0]]), requires_grad=True)
        ids = np.array([0, 2])  # segment 1 (and 3) receive no rows
        out = F.segment_max(values, ids, 4, empty_value=-7.0)
        assert np.allclose(out.data[1], -7.0) and np.allclose(out.data[3], -7.0)
        out.sum().backward()
        # Single-winner segments take the full upstream gradient.
        assert np.allclose(values.grad, np.ones((2, 2)))

    def test_gradient_with_three_way_tie(self):
        values = Tensor(np.full((3, 1), 2.0), requires_grad=True)
        out = F.segment_max(values, np.array([0, 0, 0]), 1)
        out.sum().backward()
        assert np.allclose(values.grad, np.full((3, 1), 1.0 / 3.0))

    def test_accepts_precomputed_segment_index(self):
        from repro.nn.segments import SegmentIndex

        values = Tensor(np.random.default_rng(0).normal(size=(6, 3)), requires_grad=True)
        ids = np.array([2, 0, 2, 1, 0, 2])
        index = SegmentIndex.build(ids, 4)
        from_ids = F.segment_max(Tensor(values.data), ids, 4)
        from_index = F.segment_max(values, index, 4)
        assert (from_ids.data == from_index.data).all()
        from_index.sum().backward()
        assert values.grad is not None

    def test_segment_index_num_segments_mismatch_raises(self):
        from repro.nn.segments import SegmentIndex

        index = SegmentIndex.build(np.array([0, 1]), 2)
        with pytest.raises(ValueError):
            F.segment_sum(Tensor(np.ones((2, 2))), index, 3)


class TestChunkedPairwiseDistances:
    def test_chunked_matches_unchunked_forward_and_backward(self):
        rng = np.random.default_rng(3)
        a_data = rng.normal(size=(7, 5))
        b_data = rng.normal(size=(4, 5))

        a1, b1 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        full = F.pairwise_l1_distances(a1, b1)  # default: no chunking at this size
        full.sum().backward()

        a2, b2 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        chunked = F.pairwise_l1_distances(a2, b2, max_elements=40)  # forces several chunks
        chunked.sum().backward()

        assert (full.data == chunked.data).all()
        assert (a1.grad == a2.grad).all()
        assert (b1.grad == b2.grad).all()

    def test_weighted_gradient_equivalence(self):
        rng = np.random.default_rng(4)
        a_data, b_data = rng.normal(size=(6, 3)), rng.normal(size=(5, 3))
        weights = rng.normal(size=(6, 5))

        grads = []
        for max_elements in (10**9, 20):
            a = Tensor(a_data, requires_grad=True)
            b = Tensor(b_data, requires_grad=True)
            distances = F.pairwise_l1_distances(a, b, max_elements=max_elements)
            (distances * Tensor(weights)).sum().backward()
            grads.append((a.grad.copy(), b.grad.copy()))
        assert (grads[0][0] == grads[1][0]).all()
        assert (grads[0][1] == grads[1][1]).all()


class TestBlockLinear:
    def test_matches_per_block_matmul(self):
        rng = np.random.default_rng(5)
        inputs = Tensor(rng.normal(size=(7, 3)), requires_grad=True)
        w1 = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        w2 = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        blocks = [slice(0, 4), slice(4, 7)]
        fused = F.block_linear(inputs, [w1, w2], blocks)
        reference = np.concatenate([inputs.data[0:4] @ w1.data, inputs.data[4:7] @ w2.data])
        assert np.allclose(fused.data, reference)

        fused.sum().backward()
        ones = np.ones((7, 4))
        assert np.allclose(inputs.grad, np.concatenate([ones[0:4] @ w1.data.T, ones[4:7] @ w2.data.T]))
        assert np.allclose(w1.grad, inputs.data[0:4].T @ ones[0:4])
        assert np.allclose(w2.grad, inputs.data[4:7].T @ ones[4:7])

    def test_validates_arguments(self):
        inputs = Tensor(np.ones((2, 2)))
        with pytest.raises(ValueError):
            F.block_linear(inputs, [Tensor(np.ones((2, 2)))], [])
        with pytest.raises(ValueError):
            F.block_linear(inputs, [], [])
