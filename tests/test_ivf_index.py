"""IVF serving index: recall floor vs the exact oracle, extension, quantization."""

import numpy as np
import pytest

from repro.core import ExactL1Index, IVFIndex, TypeSpace
from repro.core.ivf import QUANTIZE_KINDS, QuantizedShortlist, kmeans_cells


def clustered_points(n, dim, num_clusters, seed, dtype=np.float64):
    """A mixture of tight clusters — the shape similarity-learned embeddings take."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(num_clusters, dim))
    assignment = rng.integers(num_clusters, size=n)
    points = centers[assignment] + rng.normal(scale=0.3, size=(n, dim))
    return points.astype(dtype)


def recall_against_exact(index, exact, queries, k):
    approx = index.query_batch_arrays(queries, k)
    oracle = exact.query_batch_arrays(queries, k)
    hits = sum(
        len(set(approx.indices[row]) & set(oracle.indices[row]))
        for row in range(len(queries))
    )
    return hits / (len(queries) * k)


class TestKMeansCells:
    def test_deterministic_for_fixed_seed(self):
        points = clustered_points(400, 8, 10, seed=0)
        first = kmeans_cells(points, nlist=10, seed=7)
        second = kmeans_cells(points, nlist=10, seed=7)
        np.testing.assert_array_equal(first, second)

    def test_different_seeds_differ(self):
        points = clustered_points(400, 8, 10, seed=0)
        assert not np.array_equal(kmeans_cells(points, nlist=10, seed=1), kmeans_cells(points, nlist=10, seed=2))

    def test_nlist_clamped_to_point_count(self):
        points = clustered_points(5, 4, 2, seed=3)
        assert len(kmeans_cells(points, nlist=64, seed=0)) == 5

    def test_zero_points_rejected(self):
        with pytest.raises(ValueError, match="zero points"):
            kmeans_cells(np.zeros((0, 4)), nlist=4)


class TestIVFRecallFloor:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_recall_floor_across_seeds_and_dtypes(self, seed, dtype):
        points = clustered_points(3000, 12, 24, seed=seed, dtype=dtype)
        queries = clustered_points(100, 12, 24, seed=seed + 100, dtype=dtype)
        index = IVFIndex(points, nlist=32, nprobe=8, seed=seed)
        exact = ExactL1Index(points)
        assert recall_against_exact(index, exact, queries, k=10) >= 0.95

    @pytest.mark.parametrize("quantize", QUANTIZE_KINDS)
    def test_recall_floor_with_quantized_shortlist(self, quantize):
        points = clustered_points(3000, 12, 24, seed=5)
        queries = clustered_points(100, 12, 24, seed=105)
        index = IVFIndex(points, nlist=32, nprobe=8, seed=5, quantize=quantize)
        exact = ExactL1Index(points)
        assert recall_against_exact(index, exact, queries, k=10) >= 0.95

    def test_reported_distances_are_exact(self):
        """Quantization selects candidates; it never orders or scores results."""
        points = clustered_points(1500, 10, 12, seed=8)
        queries = clustered_points(40, 10, 12, seed=108)
        exact = ExactL1Index(points)
        for quantize in (None,) + QUANTIZE_KINDS:
            index = IVFIndex(points, nlist=16, nprobe=4, seed=8, quantize=quantize)
            result = index.query_batch_arrays(queries, 5)
            for row in range(len(queries)):
                expected = np.abs(points[result.indices[row]] - queries[row]).sum(axis=1)
                np.testing.assert_allclose(result.distances[row], expected, rtol=1e-12)

    def test_full_probe_equals_exact(self):
        """nprobe == nlist probes every cell: the shortlist is the whole set."""
        points = np.random.default_rng(9).normal(size=(300, 6))
        queries = np.random.default_rng(10).normal(size=(25, 6))
        index = IVFIndex(points, nlist=8, nprobe=8, seed=0)
        exact = ExactL1Index(points)
        ivf_result = index.query_batch_arrays(queries, 7)
        exact_result = exact.query_batch_arrays(queries, 7)
        np.testing.assert_array_equal(ivf_result.indices, exact_result.indices)
        np.testing.assert_array_equal(ivf_result.distances, exact_result.distances)

    def test_small_cells_fall_back_to_exact(self):
        """When the probed cells hold fewer than k points the query never comes short."""
        points = np.random.default_rng(11).normal(size=(40, 5))
        index = IVFIndex(points, nlist=20, nprobe=1, seed=0)
        result = index.query_batch_arrays(np.random.default_rng(12).normal(size=(6, 5)), 30)
        assert result.indices.shape == (6, 30)
        assert list(result.counts) == [30] * 6


class TestIVFExtension:
    def test_extend_keeps_recall_floor(self):
        points = clustered_points(3000, 12, 24, seed=13)
        queries = clustered_points(100, 12, 24, seed=113)
        grown = IVFIndex(points[:1000], nlist=32, nprobe=8, seed=13)
        grown.extend(points[1000:2000])
        grown.extend(points[2000:])
        exact = ExactL1Index(points)
        assert len(grown) == len(points)
        assert recall_against_exact(grown, exact, queries, k=10) >= 0.95

    def test_extend_from_empty_matches_lazy_training(self):
        points = clustered_points(600, 8, 6, seed=14)
        index = IVFIndex(np.zeros((0, 8)), nlist=8, nprobe=8, seed=14)
        assert index.num_cells == 0
        index.extend(points)
        exact = ExactL1Index(points)
        queries = clustered_points(30, 8, 6, seed=114)
        result = index.query_batch_arrays(queries, 5)
        oracle = exact.query_batch_arrays(queries, 5)
        np.testing.assert_array_equal(result.indices, oracle.indices)

    def test_empty_index_answers_empty(self):
        index = IVFIndex(np.zeros((0, 4)), nlist=4, nprobe=2)
        batch = index.query_batch_arrays(np.ones((3, 4)), 5)
        assert batch.indices.shape == (3, 0)
        assert list(batch.counts) == [0, 0, 0]

    @pytest.mark.parametrize("quantize", QUANTIZE_KINDS)
    def test_extend_keeps_quantized_codes_aligned(self, quantize):
        points = clustered_points(800, 8, 8, seed=15)
        index = IVFIndex(points[:500], nlist=8, nprobe=8, seed=15, quantize=quantize)
        index.extend(points[500:])
        queries = clustered_points(20, 8, 8, seed=115)
        oracle = ExactL1Index(points).query_batch_arrays(queries, 5)
        result = index.query_batch_arrays(queries, 5)
        np.testing.assert_array_equal(result.indices, oracle.indices)


class TestIVFValidation:
    def test_invalid_parameters_rejected(self):
        points = np.zeros((10, 4))
        with pytest.raises(ValueError, match="nlist must be a positive integer"):
            IVFIndex(points, nlist=0)
        with pytest.raises(ValueError, match="nprobe must be a positive integer"):
            IVFIndex(points, nprobe=0)
        with pytest.raises(ValueError, match="nprobe 9 cannot exceed nlist 4"):
            IVFIndex(points, nlist=4, nprobe=9)
        with pytest.raises(ValueError, match="quantize must be one of"):
            IVFIndex(points, quantize="int4")
        with pytest.raises(ValueError, match="train_points must be positive"):
            IVFIndex(points, train_points=0)
        with pytest.raises(ValueError, match="rerank_factor and rerank_floor"):
            IVFIndex(points, rerank_floor=0)

    def test_quantized_shortlist_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="quantize must be one of"):
            QuantizedShortlist("bfloat16", dim=4)

    def test_dtype_follows_points(self):
        points = np.random.default_rng(0).normal(size=(50, 4)).astype(np.float32)
        assert IVFIndex(points, nlist=4, nprobe=2).dtype == np.float32


class TestIVFTypeSpace:
    def test_typespace_ivf_round_trip(self, tmp_path):
        points = clustered_points(1200, 10, 10, seed=16)
        names = [f"T{code % 15}" for code in range(len(points))]
        space = TypeSpace(10, index_kind="ivf", index_params={"nlist": 16, "nprobe": 16})
        space.add_markers(names, points, source="train")
        queries = clustered_points(25, 10, 10, seed=116)
        answered = space.nearest_batch(queries, 5)
        oracle_space = TypeSpace(10)
        oracle_space.add_markers(names, points, source="train")
        oracle = oracle_space.nearest_batch(queries, 5)
        np.testing.assert_array_equal(answered.type_codes, oracle.type_codes)
        path = str(tmp_path / "space.npz")
        space.save(path)
        restored = TypeSpace.load(path, index_kind="ivf", index_params={"nlist": 16, "nprobe": 16})
        reanswered = restored.nearest_batch(queries, 5)
        np.testing.assert_array_equal(answered.type_codes, reanswered.type_codes)
        np.testing.assert_array_equal(answered.distances, reanswered.distances)

    def test_typespace_validates_ivf_params_at_construction(self):
        with pytest.raises(ValueError, match="nprobe 8 cannot exceed nlist 2"):
            TypeSpace(6, index_kind="ivf", index_params={"nlist": 2, "nprobe": 8})
        with pytest.raises(ValueError, match="unknown index kind"):
            TypeSpace(6, index_kind="hnsw")

    def test_reindex_switches_kind_and_validates(self):
        space = TypeSpace(6)
        space.add_markers(["int"] * 40, np.random.default_rng(1).normal(size=(40, 6)))
        space.nearest_batch(np.zeros((1, 6)), 3)
        space.reindex("ivf", nlist=4, nprobe=4)
        assert space.index_kind == "ivf"
        assert space.approximate_index
        assert isinstance(space.index(), IVFIndex)
        with pytest.raises(ValueError, match="unknown index kind"):
            space.reindex("annoy")
        # a failed reindex must not have clobbered the working configuration
        assert space.index_kind == "ivf"
