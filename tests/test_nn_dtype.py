"""Tests for the dtype-configurable substrate and sparse optimiser updates."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.dtype import default_dtype, get_default_dtype, resolve_dtype, set_default_dtype
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.optim import SGD, Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


class TestDefaultDtype:
    def test_library_default_is_float64(self):
        assert get_default_dtype() == np.float64

    def test_context_manager_scopes_the_change(self):
        with default_dtype("float32"):
            assert get_default_dtype() == np.float32
            assert Tensor([1.0, 2.0]).data.dtype == np.float32
        assert get_default_dtype() == np.float64
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_set_returns_previous(self):
        previous = set_default_dtype("float32")
        try:
            assert previous == np.float64
        finally:
            set_default_dtype(previous)

    def test_resolve_rejects_unsupported(self):
        with pytest.raises(ValueError):
            resolve_dtype("int32")
        with pytest.raises(ValueError):
            resolve_dtype(np.float16)

    def test_existing_float_arrays_keep_their_dtype(self):
        assert Tensor(np.zeros(3, dtype=np.float32)).data.dtype == np.float32
        assert Tensor(np.zeros(3, dtype=np.float64)).data.dtype == np.float64
        # Non-float inputs are materialised at the default dtype.
        assert Tensor(np.arange(3)).data.dtype == np.float64


class TestDtypeStability:
    """float32 graphs must stay float32 — no silent promotion to float64."""

    def test_scalar_arithmetic_does_not_promote(self):
        x = Tensor(np.ones(4, dtype=np.float32), requires_grad=True)
        out = (1.0 - x) * 2.0 + 0.5
        assert out.data.dtype == np.float32
        out = 1.0 / (x + 1.0)
        assert out.data.dtype == np.float32

    def test_nonlinearities_and_reductions_preserve_dtype(self):
        x = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        for out in (x.tanh(), x.sigmoid(), x.exp(), x.relu(), x.abs(), x.sum(), x.mean(axis=0)):
            assert out.data.dtype == np.float32

    def test_segment_ops_preserve_dtype(self):
        values = Tensor(np.ones((4, 2), dtype=np.float32), requires_grad=True)
        ids = np.array([0, 0, 1, 1])
        assert F.segment_sum(values, ids, 2).data.dtype == np.float32
        assert F.segment_mean(values, ids, 2).data.dtype == np.float32
        assert F.segment_max(values, ids, 2).data.dtype == np.float32

    def test_gradients_arrive_in_parameter_dtype(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        ((x * 3.0).tanh().sum()).backward()
        assert x.grad.dtype == np.float32


class TestModuleToDtype:
    def test_casts_all_parameters(self):
        linear = Linear(4, 3, SeededRNG(0))
        linear.to_dtype("float32")
        assert all(p.data.dtype == np.float32 for p in linear.parameters())
        out = linear(Tensor(np.ones((2, 4), dtype=np.float32)))
        assert out.data.dtype == np.float32

    def test_same_dtype_cast_keeps_arrays(self):
        linear = Linear(2, 2, SeededRNG(0))
        before = linear.weight.data
        linear.to_dtype("float64")
        assert linear.weight.data is before

    def test_float32_forward_backward_close_to_float64(self):
        rng = SeededRNG(7)
        module64 = Linear(6, 4, rng)
        module32 = Linear(6, 4, SeededRNG(7)).to_dtype("float32")
        inputs = np.random.default_rng(0).normal(size=(5, 6))

        out64 = module64(Tensor(inputs))
        out32 = module32(Tensor(inputs.astype(np.float32)))
        assert np.allclose(out64.data, out32.data, atol=1e-5)

        out64.sum().backward()
        out32.sum().backward()
        assert np.allclose(module64.weight.grad, module32.weight.grad, atol=1e-5)


class TestSparseEmbeddingGradients:
    """Row-wise updates must equal the dense updates bit-for-bit."""

    @staticmethod
    def _dense_clone(table: np.ndarray) -> Tensor:
        return Tensor(table.copy(), requires_grad=True)

    def test_gather_rows_on_leaf_records_sparse_rows(self):
        table = Tensor(np.ones((5, 2)), requires_grad=True)
        table.gather_rows(np.array([1, 1, 3])).sum().backward()
        assert table._grad is None and table.grad_rows
        # The public accessor folds them into the dense view.
        assert np.allclose(table.grad, [[0, 0], [2, 2], [0, 0], [1, 1], [0, 0]])

    def test_adam_sparse_matches_dense_exactly(self):
        rng = np.random.default_rng(11)
        initial = rng.normal(size=(12, 3))
        sparse_param = Tensor(initial.copy(), requires_grad=True)
        dense_param = Tensor(initial.copy(), requires_grad=True)
        sparse_adam = Adam([sparse_param], lr=0.05)
        dense_adam = Adam([dense_param], lr=0.05)

        index_sets = [np.array([0, 3, 3, 7]), np.array([1, 3]), np.array([0, 1, 7, 9])]
        for step, indices in enumerate(index_sets):
            weights = Tensor(rng.normal(size=(indices.size, 3)))

            sparse_adam.zero_grad()
            (sparse_param.gather_rows(indices) * weights).sum().backward()
            assert sparse_param.grad_rows, "leaf gather should record sparse rows"
            sparse_adam.step()

            dense_adam.zero_grad()
            dense_grad = np.zeros_like(initial)
            np.add.at(dense_grad, indices, weights.data)
            dense_param.grad = dense_grad
            dense_adam.step()

            assert (sparse_param.data == dense_param.data).all(), f"diverged at step {step}"

    def test_adam_sparse_with_clipping_matches_dense(self):
        initial = np.linspace(-1, 1, 8).reshape(4, 2)
        sparse_param = Tensor(initial.copy(), requires_grad=True)
        dense_param = Tensor(initial.copy(), requires_grad=True)
        sparse_adam = Adam([sparse_param], lr=0.1)
        dense_adam = Adam([dense_param], lr=0.1)
        indices = np.array([0, 2, 2])

        (sparse_param.gather_rows(indices) * 10.0).sum().backward()
        sparse_adam.clip_gradients(0.5)
        sparse_adam.step()

        dense_grad = np.zeros_like(initial)
        np.add.at(dense_grad, indices, np.full((3, 2), 10.0))
        dense_param.grad = dense_grad
        dense_adam.clip_gradients(0.5)
        dense_adam.step()

        assert np.allclose(sparse_param.data, dense_param.data)

    def test_sgd_sparse_matches_dense(self):
        initial = np.ones((6, 2))
        sparse_param = Tensor(initial.copy(), requires_grad=True)
        dense_param = Tensor(initial.copy(), requires_grad=True)
        indices = np.array([5, 0, 5])

        sparse_param.gather_rows(indices).sum().backward()
        SGD([sparse_param], lr=0.5).step()

        dense_grad = np.zeros_like(initial)
        np.add.at(dense_grad, indices, np.ones((3, 2)))
        dense_param.grad = dense_grad
        SGD([dense_param], lr=0.5).step()

        assert (sparse_param.data == dense_param.data).all()

    def test_mixed_dense_and_sparse_gradients_merge(self):
        table = Tensor(np.ones((4, 3)), requires_grad=True)
        # Dense use (matmul) and sparse use (gather) of the same table.
        loss = (Tensor(np.ones((2, 4))) @ table).sum() + table.gather_rows(np.array([1, 1])).sum()
        loss.backward()
        optimizer = Adam([table], lr=0.1)
        optimizer.clip_gradients(1e9)
        expected = np.full((4, 3), 2.0)
        expected[1] += 2.0
        assert np.allclose(table.grad, expected)
        optimizer.step()

    def test_embedding_layer_round_trips_through_sparse_path(self):
        embedding = Embedding(10, 4, SeededRNG(3))
        optimizer = Adam(list(embedding.parameters()), lr=0.01)
        before = embedding.weight.data.copy()
        ids = np.array([2, 2, 5])
        embedding(ids).sum().backward()
        optimizer.step()
        changed = np.any(embedding.weight.data != before, axis=1)
        assert changed[2] and changed[5]
        assert not changed[[0, 1, 3, 4, 6, 7, 8, 9]].any()


class TestModuleWalk:
    def test_linear_parameters_discovered(self):
        module = Linear(2, 2, SeededRNG(0))
        assert sum(1 for _ in module.parameters()) == 2
