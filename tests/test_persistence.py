"""Pipeline persistence: save → load → predict round trips, CLI serving."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.core import TypilusPipeline
from repro.nn import serialization
from repro.nn.layers import MLP
from repro.utils.rng import SeededRNG


class TestPipelineRoundTrip:
    @pytest.fixture(scope="class")
    def saved_dir(self, trained_pipeline, tmp_path_factory):
        path = tmp_path_factory.mktemp("model") / "pipeline"
        trained_pipeline.save(path)
        return path

    def test_save_writes_manifest_weights_and_typespace(self, saved_dir):
        assert (saved_dir / "pipeline.json").exists()
        assert (saved_dir / "encoder.npz").exists()
        assert (saved_dir / "typespace.npz").exists()
        manifest = json.loads((saved_dir / "pipeline.json").read_text(encoding="utf-8"))
        assert manifest["format_version"] == 1
        assert manifest["encoder"]["family"] == "graph"
        assert manifest["encoder"]["node_init"] == "subtoken"
        assert manifest["encoder"]["subtoken_vocabulary"]  # vocabulary travels with the model

    def test_loaded_pipeline_reproduces_predictions_exactly(self, trained_pipeline, tiny_dataset, saved_dir):
        loaded = TypilusPipeline.load(saved_dir)
        original = trained_pipeline.predict_split(tiny_dataset.test)
        restored = loaded.predict_split(tiny_dataset.test)
        assert len(original) == len(restored) > 0
        for (_, expected), (_, actual) in zip(original, restored):
            assert expected.candidates == actual.candidates  # byte-identical, not just top-1

    def test_loaded_pipeline_suggests_without_dataset(self, trained_pipeline, saved_dir):
        loaded = TypilusPipeline.load(saved_dir)
        assert loaded.dataset is None
        source = "def scale_amount(amount, factor):\n    return amount * factor\n"
        expected = trained_pipeline.suggest_for_source(source, use_type_checker=False)
        actual = loaded.suggest_for_source(source, use_type_checker=False)
        assert [(s.name, s.suggested_type, s.confidence) for s in expected] == [
            (s.name, s.suggested_type, s.confidence) for s in actual
        ]

    def test_loaded_pipeline_evaluates_without_dataset(self, tiny_dataset, saved_dir):
        loaded = TypilusPipeline.load(saved_dir)
        summary, evaluated = loaded.evaluate_split(tiny_dataset.test)
        assert summary.count == tiny_dataset.test.num_samples
        assert len(evaluated) == summary.count

    def test_knn_settings_round_trip(self, trained_pipeline, saved_dir):
        loaded = TypilusPipeline.load(saved_dir)
        assert loaded.predictor.k == trained_pipeline.predictor.k
        assert loaded.predictor.p == trained_pipeline.predictor.p
        assert len(loaded.type_space) == len(trained_pipeline.type_space)

    def test_unknown_format_version_rejected(self, saved_dir, tmp_path):
        bad = tmp_path / "bad"
        bad.mkdir()
        for name in ("encoder.npz", "typespace.npz"):
            (bad / name).write_bytes((saved_dir / name).read_bytes())
        manifest = json.loads((saved_dir / "pipeline.json").read_text(encoding="utf-8"))
        manifest["format_version"] = 999
        (bad / "pipeline.json").write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError):
            TypilusPipeline.load(bad)


class TestModuleArchives:
    def test_save_modules_namespaces_parameters(self, tmp_path):
        rng = SeededRNG(3)
        first = MLP(4, 8, 2, rng.fork(1))
        second = MLP(4, 8, 2, rng.fork(2))
        path = serialization.save_modules(tmp_path / "pair.npz", first=first, second=second)
        with np.load(path) as archive:
            assert any(key.startswith("first//") for key in archive.files)
            assert any(key.startswith("second//") for key in archive.files)

    def test_load_modules_round_trips_values(self, tmp_path):
        rng = SeededRNG(3)
        source = MLP(4, 8, 2, rng.fork(1))
        target = MLP(4, 8, 2, rng.fork(9))  # different init, same shapes
        path = serialization.save_modules(tmp_path / "mlp.npz", mlp=source)
        serialization.load_modules(path, mlp=target)
        for (_, expected), (_, actual) in zip(source.named_parameters(), target.named_parameters()):
            assert np.array_equal(expected.data, actual.data)

    def test_load_modules_rejects_unknown_namespace(self, tmp_path):
        rng = SeededRNG(3)
        module = MLP(4, 8, 2, rng.fork(1))
        path = serialization.save_modules(tmp_path / "mlp.npz", mlp=module)
        with pytest.raises(KeyError):
            serialization.load_modules(path, other=MLP(4, 8, 2, rng.fork(2)))


class TestCLIServing:
    def test_train_save_then_annotate_load(self, tmp_path, capsys):
        model_dir = tmp_path / "model"
        exit_code = main([
            "train", "--num-files", "10", "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names", "--save-model", str(model_dir),
        ])
        assert exit_code == 0
        assert (model_dir / "pipeline.json").exists()

        project = tmp_path / "project"
        project.mkdir()
        (project / "mod.py").write_text(
            "def scale_price(price, factor):\n    return price * factor\n", encoding="utf-8"
        )
        capsys.readouterr()
        exit_code = main([
            "annotate", str(project), "--load-model", str(model_dir), "--no-type-checker",
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "loaded pipeline from" in output
        assert "scale_price" in output
        assert "symbols_per_second" in output

    def test_annotate_requires_directory(self, tmp_path):
        target = tmp_path / "single.py"
        target.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(SystemExit):
            main(["annotate", str(target), "--no-type-checker"])

    def test_suggest_with_loaded_model(self, tmp_path, capsys):
        model_dir = tmp_path / "model"
        assert main([
            "train", "--num-files", "8", "--epochs", "1", "--hidden-dim", "16",
            "--gnn-steps", "1", "--family", "names", "--save-model", str(model_dir),
        ]) == 0
        target = tmp_path / "snippet.py"
        target.write_text("def count_words(words):\n    return len(words)\n", encoding="utf-8")
        capsys.readouterr()
        assert main([
            "suggest", str(target), "--load-model", str(model_dir), "--no-type-checker",
        ]) == 0
        output = capsys.readouterr().out
        assert "count_words" in output and "suggested" in output
