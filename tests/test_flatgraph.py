"""The columnar FlatGraph core: arena building, the CodeGraph view, shards."""

import numpy as np
import pytest

from repro.corpus.serialize import (
    PayloadError,
    flat_graphs_from_arrays,
    flat_graphs_to_arrays,
    graph_to_payload,
    read_graph_shard,
    write_graph_shard,
)
from repro.graph import CodeGraph, EdgeKind, FlatGraph, NodeKind, SymbolKind, build_graph
from repro.graph.flatgraph import (
    NO_ANNOTATION,
    NODE_KIND_CODES,
    FlatGraphBuilder,
    StringTable,
    is_identifier_text,
)
from repro.models.featurize import SUBTOKEN, FeatureExtractor
from repro.models.batching import build_graph_batch, build_sequence_batch


@pytest.fixture()
def graph(sample_source) -> CodeGraph:
    return build_graph(sample_source, "sample.py")


def materialised_copy(graph: CodeGraph) -> CodeGraph:
    """The same graph as plain objects, with no flat backing."""
    return CodeGraph(
        filename=graph.filename,
        source=graph.source,
        nodes=list(graph.nodes),
        edges={kind: list(pairs) for kind, pairs in graph.edges.items()},
        symbols=list(graph.symbols),
    )


class TestStringTable:
    def test_interning_is_idempotent(self):
        table = StringTable()
        first = table.intern("total")
        second = table.intern("total")
        other = table.intern("count")
        assert first == second == 0 and other == 1
        assert table[0] == "total" and len(table) == 2

    def test_preseeded_table(self):
        table = StringTable(["a", "b"])
        assert table.intern("a") == 0 and table.intern("c") == 2


class TestArena:
    def test_builder_produces_flat_backed_graphs(self, graph):
        assert graph.flat is not None
        flat = graph.flat
        assert flat.num_nodes == graph.num_nodes
        assert flat.num_edges == graph.num_edges
        assert flat.node_kind.dtype == np.int32
        for pairs in flat.edges.values():
            assert pairs.dtype == np.int32 and pairs.shape[0] == 2

    def test_string_table_interns_repeated_lexemes(self, graph):
        flat = graph.flat
        texts = flat.node_texts()
        assert len(set(texts)) == len(flat.strings) or len(set(texts)) <= len(flat.strings)
        # repeated lexemes share one table entry, so the table is strictly
        # smaller than the node count for any real file
        assert len(flat.strings) < flat.num_nodes
        assert texts == [node.text for node in graph.nodes]

    def test_materialised_view_matches_arrays(self, graph):
        flat = graph.flat
        for node in graph.nodes:
            assert NODE_KIND_CODES[node.kind] == int(flat.node_kind[node.index])
            assert node.text == flat.text_of(node.index)
            assert node.lineno == int(flat.node_line[node.index])
            assert node.col == int(flat.node_col[node.index])
        for kind, pairs in graph.edges.items():
            assert pairs == [tuple(pair) for pair in flat.edges[kind].T.tolist()]
        for position, symbol in enumerate(graph.symbols):
            assert symbol.node_index == int(flat.symbol_node[position])
            assert symbol.annotation == flat.annotation_of(position)
            assert symbol.occurrence_indices == flat.occurrences_of(position).tolist()

    def test_unannotated_symbols_use_sentinel(self, graph):
        flat = graph.flat
        unannotated = [
            position for position, symbol in enumerate(graph.symbols) if symbol.annotation is None
        ]
        assert unannotated, "sample source should contain unannotated symbols"
        for position in unannotated:
            assert int(flat.symbol_annotation[position]) == NO_ANNOTATION

    def test_arena_edge_validation_matches_codegraph(self):
        arena = FlatGraphBuilder("x.py", "")
        first = arena.add_node(NodeKind.TOKEN, "a")
        second = arena.add_node(NodeKind.TOKEN, "b")
        arena.add_edge(EdgeKind.NEXT_TOKEN, first, second)
        arena.add_edge(EdgeKind.NEXT_TOKEN, first, first)  # self loop dropped
        with pytest.raises(IndexError):
            arena.add_edge(EdgeKind.NEXT_TOKEN, first, 99)
        flat = arena.finish()
        assert flat.num_edges == 1

    def test_flat_round_trip_through_objects(self, graph):
        rebuilt = CodeGraph.from_flat(materialised_copy(graph).to_flat())
        assert graph_to_payload(rebuilt) == graph_to_payload(graph)
        assert rebuilt == graph

    def test_is_identifier_text(self):
        assert is_identifier_text("snake_case") and is_identifier_text("_private")
        assert not is_identifier_text("42") and not is_identifier_text("") and not is_identifier_text("+")


class TestCodeGraphView:
    def test_mutation_drops_flat_backing(self, graph):
        assert graph.flat is not None
        index = graph.add_node(NodeKind.TOKEN, "extra")
        assert graph.flat is None
        assert graph.nodes[index].text == "extra"
        graph.validate()

    def test_in_place_edge_mutation_is_never_silently_lost(self, graph):
        """Appending to the materialised edges dict must be reflected by
        num_edges and survive to_flat/persistence (the flat backing is
        dropped as soon as the mutable containers are exposed)."""
        before = graph.num_edges
        graph.edges[EdgeKind.CHILD].append((0, 1))
        assert graph.flat is None
        assert graph.num_edges == before + 1
        assert (0, 1) in CodeGraph.from_flat(graph.to_flat()).edges[EdgeKind.CHILD]

    def test_in_place_node_list_mutation_is_never_silently_lost(self, graph):
        from repro.graph.nodes import GraphNode

        before = graph.num_nodes
        graph.nodes.append(GraphNode(index=before, kind=NodeKind.TOKEN, text="extra"))
        assert graph.flat is None
        assert graph.num_nodes == before + 1
        assert CodeGraph.from_flat(graph.to_flat()).num_nodes == before + 1

    def test_symbol_mutation_survives_flat_round_trip(self, graph):
        """Symbols stay object-backed on flat graphs; editing one (e.g. the
        pipeline attaching an annotation) must be persisted by to_flat."""
        assert graph.flat is not None
        symbol = next(s for s in graph.symbols if s.annotation is None)
        symbol.annotation = "SomeBrandNewType"
        rebuilt = CodeGraph.from_flat(graph.to_flat())
        assert graph.flat is not None  # reading symbols never drops the arrays
        match = rebuilt.find_symbol(symbol.name, scope=symbol.scope, kind=symbol.kind)
        assert match is not None and match.annotation == "SomeBrandNewType"

    def test_unchanged_symbols_reuse_the_backing_arrays(self, graph):
        flat = graph.flat
        assert graph.to_flat() is flat  # fast path: nothing to rebuild

    def test_edges_of_missing_kind_returns_empty_tuple_without_insertion(self):
        graph = CodeGraph(filename="tiny.py")
        graph.add_node(NodeKind.TOKEN, "x")
        before = graph_to_payload(graph)
        assert graph.edges_of(EdgeKind.NEXT_MAY_USE) == ()
        _ = graph.num_edges
        assert EdgeKind.NEXT_MAY_USE not in graph.edges
        assert graph_to_payload(graph) == before

    def test_edges_of_read_does_not_pollute_equality(self, graph, sample_source):
        pristine = build_graph(sample_source, graph.filename)
        missing = [kind for kind in EdgeKind if kind not in graph.edges]
        probed = graph.without_edges([EdgeKind.SUBTOKEN_OF])
        reference = graph.without_edges([EdgeKind.SUBTOKEN_OF])
        for kind in EdgeKind:
            probed.edges_of(kind)
        _ = probed.num_edges
        assert probed == reference
        assert missing == []  # sample source exercises every kind
        assert pristine == graph

    def test_flat_backed_edges_of_matches_materialised(self, graph):
        flat_backed = build_graph(graph.source, graph.filename)
        materialised = materialised_copy(graph)
        for kind in EdgeKind:
            flat_pairs = flat_backed.edges_of(kind)
            assert list(flat_pairs) == list(materialised.edges_of(kind))

    def test_without_edges_stays_flat(self, graph):
        ablated = graph.without_edges([EdgeKind.SUBTOKEN_OF, EdgeKind.NEXT_TOKEN])
        assert ablated.flat is not None
        assert EdgeKind.SUBTOKEN_OF not in ablated.flat.edges
        assert ablated.num_nodes == graph.num_nodes
        assert ablated.edges_of(EdgeKind.SUBTOKEN_OF) == ()
        assert ablated.edges_of(EdgeKind.CHILD) == graph.edges_of(EdgeKind.CHILD)

    def test_summary_identical_with_and_without_materialisation(self, graph, sample_source):
        fresh = build_graph(sample_source, graph.filename)
        assert fresh.summary() == materialised_copy(graph).summary()

    def test_node_subtokens_identical(self, graph, sample_source):
        flat_backed = build_graph(sample_source, graph.filename)
        assert list(flat_backed.node_subtokens()) == list(materialised_copy(graph).node_subtokens())

    def test_graphs_pickle_across_process_boundaries(self, graph):
        import pickle

        clone = pickle.loads(pickle.dumps(graph))
        assert clone.flat is not None
        assert graph_to_payload(clone) == graph_to_payload(graph)


class TestBinaryShards:
    def test_arrays_round_trip(self, graph, sample_source):
        other = build_graph("def helper(value):\n    return value\n", "helper.py")
        arrays = flat_graphs_to_arrays([graph.flat, other.flat])
        restored = flat_graphs_from_arrays(arrays)
        assert len(restored) == 2
        for original, loaded in zip([graph, other], restored):
            view = CodeGraph.from_flat(loaded)
            assert graph_to_payload(view) == graph_to_payload(original)
            assert view.source == original.source and view.filename == original.filename

    def test_shard_file_round_trip(self, graph, tmp_path):
        shard = tmp_path / "graphs-00000.npz"
        write_graph_shard(shard, [graph])
        (loaded,) = read_graph_shard(shard)
        assert loaded.flat is not None
        assert graph_to_payload(loaded) == graph_to_payload(graph)

    def test_object_built_graphs_flatten_for_shards(self, graph, tmp_path):
        shard = tmp_path / "graphs-00000.npz"
        write_graph_shard(shard, [materialised_copy(graph)])
        (loaded,) = read_graph_shard(shard)
        assert graph_to_payload(loaded) == graph_to_payload(graph)

    def test_fingerprint_mismatch_raises(self, graph, tmp_path):
        shard = tmp_path / "graphs-00000.npz"
        write_graph_shard(shard, [graph])
        with np.load(shard, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["nodes"] = arrays["nodes"] + 1
        with open(shard, "wb") as handle:
            np.savez(handle, **arrays)
        with pytest.raises(PayloadError, match="fingerprint"):
            read_graph_shard(shard)

    def test_unknown_version_raises(self, graph):
        arrays = flat_graphs_to_arrays([graph.flat])
        arrays["format"] = np.asarray([999], dtype=np.int64)
        with pytest.raises(PayloadError, match="version"):
            flat_graphs_from_arrays(arrays)

    def test_empty_graph_round_trips(self):
        empty = build_graph("", "empty.py")
        arrays = flat_graphs_to_arrays([empty.to_flat()])
        (restored,) = flat_graphs_from_arrays(arrays)
        assert restored.num_nodes == empty.num_nodes
        assert graph_to_payload(CodeGraph.from_flat(restored)) == graph_to_payload(empty)


class TestFlatConsumers:
    def test_features_for_graph_byte_identical(self, graph):
        from repro.graph import SubtokenVocabulary

        vocabulary = SubtokenVocabulary()
        for _, subtokens in graph.node_subtokens():
            vocabulary.observe(subtokens)
        vocabulary.finalise()
        extractor = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=vocabulary)
        via_table = extractor.features_for_graph(graph)
        direct = extractor.features_for_texts([node.text for node in graph.nodes])
        assert np.array_equal(via_table.ids, direct.ids)
        assert np.array_equal(via_table.row_splits, direct.row_splits)
        # object-built graphs take the fallback path, with equal output
        fallback = extractor.features_for_graph(materialised_copy(graph))
        assert np.array_equal(fallback.ids, direct.ids)

    def test_graph_batches_identical_flat_vs_objects(self, graph):
        other = build_graph("def helper(value):\n    return value + 1\n", "helper.py")
        targets = [[symbol.node_index for symbol in g.symbols] for g in (graph, other)]
        flat_batch = build_graph_batch([graph, other], targets)
        object_batch = build_graph_batch(
            [materialised_copy(graph), materialised_copy(other)], targets
        )
        assert flat_batch.node_texts == object_batch.node_texts
        assert set(flat_batch.edges) == set(object_batch.edges)
        for kind in flat_batch.edges:
            assert np.array_equal(flat_batch.edges[kind], object_batch.edges[kind])
            assert flat_batch.edges[kind].dtype == np.int64
        assert np.array_equal(flat_batch.target_nodes, object_batch.target_nodes)
        assert np.array_equal(flat_batch.graph_of_node, object_batch.graph_of_node)

    def test_sequence_batches_identical_flat_vs_objects(self, graph):
        targets = [[symbol.node_index for symbol in graph.symbols]]
        flat_batch = build_sequence_batch([graph], targets, max_tokens=64)
        object_batch = build_sequence_batch([materialised_copy(graph)], targets, max_tokens=64)
        assert flat_batch.token_texts == object_batch.token_texts
        assert flat_batch.sequence_length == object_batch.sequence_length
        assert flat_batch.target_occurrences == object_batch.target_occurrences

    def test_symbol_lookup_on_flat_view(self, graph):
        symbol = graph.find_symbol("widget", kind=SymbolKind.PARAMETER)
        assert symbol is not None and symbol.occurrence_indices
        assert graph.symbol_by_node(symbol.node_index) is symbol
