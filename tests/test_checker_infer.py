"""Unit tests for expression-level type inference (repro.checker.infer)."""

import ast

import pytest

from repro.checker.checker import OptionalTypeChecker
from repro.checker.env import Scope
from repro.checker.infer import ExpressionTyper, join_types
from repro.types import TypeLattice, parse_type


def _typer_and_scope(prelude: str = ""):
    """Build a typer whose module context comes from ``prelude`` source."""
    checker = OptionalTypeChecker()
    context = checker._build_module_context(ast.parse(prelude))
    errors = []
    typer = ExpressionTyper(context, TypeLattice(), errors.append, strict=True)
    return typer, Scope(), errors


def _infer(expression: str, bindings: dict[str, str] | None = None, prelude: str = "") -> str:
    typer, scope, _ = _typer_and_scope(prelude)
    for name, annotation in (bindings or {}).items():
        scope.bind(name, parse_type(annotation))
    return str(typer.infer(ast.parse(expression, mode="eval").body, scope))


class TestLiteralInference:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("1", "int"),
            ("1.5", "float"),
            ("True", "bool"),
            ("'text'", "str"),
            ("b'raw'", "bytes"),
            ("None", "None"),
            ("[1, 2, 3]", "List[int]"),
            ("[1, 'x']", "List[Union[int, str]]"),
            ("{'a': 1}", "Dict[str, int]"),
            ("{1, 2}", "Set[int]"),
            ("(1, 'a')", "Tuple[int, str]"),
            ("f'{1}'", "str"),
            ("[x for x in [1, 2]]", "List[int]"),
            ("{x: str(x) for x in [1, 2]}", "Dict[int, str]"),
        ],
    )
    def test_literals(self, expression, expected):
        assert _infer(expression) == expected


class TestOperatorInference:
    @pytest.mark.parametrize(
        "expression,bindings,expected",
        [
            ("a + b", {"a": "int", "b": "int"}, "int"),
            ("a + b", {"a": "int", "b": "float"}, "float"),
            ("a / b", {"a": "int", "b": "int"}, "float"),
            ("a + b", {"a": "str", "b": "str"}, "str"),
            ("a * 3", {"a": "str"}, "str"),
            ("a == b", {"a": "int", "b": "int"}, "bool"),
            ("not a", {"a": "int"}, "bool"),
            ("-a", {"a": "float"}, "float"),
            ("a and b", {"a": "bool", "b": "bool"}, "bool"),
            ("a if True else b", {"a": "int", "b": "int"}, "int"),
        ],
    )
    def test_operators(self, expression, bindings, expected):
        assert _infer(expression, bindings) == expected

    def test_invalid_operand_combination_reports_error(self):
        typer, scope, errors = _typer_and_scope()
        scope.bind("text", parse_type("str"))
        scope.bind("count", parse_type("int"))
        typer.infer(ast.parse("text + count", mode="eval").body, scope)
        assert errors and errors[0].code.value == "operator"

    def test_any_operand_suppresses_errors(self):
        typer, scope, errors = _typer_and_scope()
        scope.bind("count", parse_type("int"))
        result = typer.infer(ast.parse("unknown + count", mode="eval").body, scope)
        assert str(result) == "Any" and not errors


class TestContainerAndCallInference:
    def test_subscript_of_list(self):
        assert _infer("items[0]", {"items": "List[str]"}) == "str"

    def test_subscript_of_dict(self):
        assert _infer("mapping['k']", {"mapping": "Dict[str, int]"}) == "int"

    def test_slice_preserves_container(self):
        assert _infer("items[1:]", {"items": "List[int]"}) == "List[int]"

    def test_str_methods(self):
        assert _infer("text.upper()", {"text": "str"}) == "str"
        assert _infer("text.split(',')", {"text": "str"}) == "List[str]"
        assert _infer("text.encode('utf-8')", {"text": "str"}) == "bytes"

    def test_dict_get_returns_optional_value(self):
        assert _infer("mapping.get('k')", {"mapping": "Dict[str, int]"}) == "Optional[int]"

    def test_builtin_calls(self):
        assert _infer("len(items)", {"items": "List[int]"}) == "int"
        assert _infer("str(3)") == "str"
        assert _infer("sorted(items)", {"items": "List[int]"}) == "List"

    def test_user_function_call_uses_signature(self):
        prelude = "def scale(x: float) -> float:\n    return x * 2.0\n"
        assert _infer("scale(1.0)", prelude=prelude) == "float"

    def test_constructor_call_returns_class_type(self):
        prelude = (
            "class Widget:\n"
            "    def __init__(self, name: str) -> None:\n"
            "        self.name = name\n"
        )
        assert _infer("Widget('x')", prelude=prelude) == "Widget"

    def test_method_call_on_user_class(self):
        prelude = (
            "class Widget:\n"
            "    def __init__(self, name: str) -> None:\n"
            "        self.name = name\n"
            "    def describe(self) -> str:\n"
            "        return self.name\n"
        )
        assert _infer("w.describe()", {"w": "Widget"}, prelude=prelude) == "str"

    def test_attribute_on_user_class(self):
        prelude = (
            "class Widget:\n"
            "    def __init__(self, size: int) -> None:\n"
            "        self.size = size\n"
        )
        assert _infer("w.size", {"w": "Widget"}, prelude=prelude) == "Any"  # unannotated attribute
        prelude_annotated = (
            "class Widget:\n"
            "    def __init__(self, size: int) -> None:\n"
            "        self.size: int = size\n"
        )
        assert _infer("w.size", {"w": "Widget"}, prelude=prelude_annotated) == "int"

    def test_inherited_attribute_lookup(self):
        prelude = (
            "class Base:\n"
            "    def __init__(self, name: str) -> None:\n"
            "        self.name: str = name\n"
            "class Derived(Base):\n"
            "    def __init__(self, name: str) -> None:\n"
            "        self.name: str = name\n"
            "    def extra(self) -> int:\n"
            "        return 1\n"
        )
        assert _infer("d.name", {"d": "Derived"}, prelude=prelude) == "str"


class TestHelpers:
    def test_join_types(self):
        lattice = TypeLattice()
        assert str(join_types([parse_type("int"), parse_type("int")], lattice)) == "int"
        assert str(join_types([parse_type("bool"), parse_type("int")], lattice)) == "int"
        assert str(join_types([parse_type("int"), parse_type("str")], lattice)) == "Union[int, str]"
        assert str(join_types([parse_type("int"), parse_type("None")], lattice)) == "Optional[int]"
        assert join_types([], lattice).is_any

    def test_element_type(self):
        typer, _, _ = _typer_and_scope()
        assert str(typer.element_type(parse_type("List[int]"))) == "int"
        assert str(typer.element_type(parse_type("Dict[str, int]"))) == "str"
        assert str(typer.element_type(parse_type("str"))) == "str"
        assert typer.element_type(parse_type("CustomThing")).is_any

    def test_bind_target_tuple_unpacking(self):
        typer, scope, _ = _typer_and_scope()
        target = ast.parse("a, b = value", mode="exec").body[0].targets[0]
        typer.bind_target(target, parse_type("Tuple[int, str]"), scope)
        assert str(scope.lookup("a")) == "int"
        assert str(scope.lookup("b")) == "str"

    def test_scope_chain_lookup_and_declared(self):
        outer = Scope()
        outer.bind("x", parse_type("int"), declared=True)
        inner = outer.child("f")
        assert str(inner.lookup("x")) == "int"
        assert inner.is_declared("x")
        inner.bind("x", parse_type("str"))
        assert str(inner.lookup("x")) == "str"
        assert not inner.is_declared("x")
