"""Tests for the optional type checker (strict/mypy-like, lenient/pytype-like)."""

import pytest

from repro.checker import (
    CheckerMode,
    ErrorCode,
    OptionalTypeChecker,
    apply_annotation,
    AnnotationRewriteError,
    PredictionCategory,
    PredictionChecker,
    check_source,
    is_assignable,
)
from repro.graph.nodes import SymbolKind
from repro.types import TypeLattice, parse_type


WELL_TYPED = '''
def add(a: int, b: int) -> int:
    total = a + b
    return total


def greet(name: str) -> str:
    return "hello " + name


class Point:
    def __init__(self, x: float, y: float) -> None:
        self.x = x
        self.y = y

    def norm(self) -> float:
        return self.x * self.x + self.y * self.y


def length_of(items):
    return len(items)


origin = Point(0.0, 0.0)
distance: float = origin.norm()
message: str = greet("world")
count: int = add(1, 2)
'''


class TestAssignability:
    @pytest.fixture()
    def lattice(self):
        return TypeLattice()

    @pytest.mark.parametrize(
        "value,target,expected",
        [
            ("int", "int", True),
            ("int", "float", True),
            ("float", "int", False),
            ("Any", "int", True),
            ("int", "Any", True),
            ("None", "Optional[int]", True),
            ("int", "Optional[int]", True),
            ("str", "Optional[int]", False),
            ("List[int]", "List", True),
            ("List", "List[int]", True),
            ("List[int]", "Sequence[int]", True),
            ("int", "Union[int, str]", True),
            ("bytes", "Union[int, str]", False),
            ("int", "object", True),
        ],
    )
    def test_strict_assignability(self, lattice, value, target, expected):
        assert is_assignable(parse_type(value), parse_type(target), lattice, strict=True) is expected

    def test_lenient_allows_numeric_narrowing(self, lattice):
        assert is_assignable(parse_type("float"), parse_type("int"), lattice, strict=False)
        assert not is_assignable(parse_type("str"), parse_type("int"), lattice, strict=False)


class TestWellTypedPrograms:
    def test_strict_accepts_well_typed_module(self):
        assert check_source(WELL_TYPED, CheckerMode.STRICT).ok

    def test_lenient_accepts_well_typed_module(self):
        assert check_source(WELL_TYPED, CheckerMode.LENIENT).ok

    def test_unannotated_code_produces_no_errors(self):
        source = "def f(x):\n    y = x + 1\n    return y\n"
        assert check_source(source).ok

    def test_optional_narrowing_with_is_none_guard(self):
        source = (
            "from typing import Optional\n"
            "def greet(name: str, suffix: Optional[str] = None) -> str:\n"
            "    if suffix is None:\n"
            "        return 'hi ' + name\n"
            "    return 'hi ' + name + suffix\n"
        )
        assert check_source(source, CheckerMode.STRICT).ok

    def test_optional_narrowing_with_is_not_none_guard(self):
        source = (
            "from typing import Optional\n"
            "def scale(value: Optional[float]) -> float:\n"
            "    result = 0.0\n"
            "    if value is not None:\n"
            "        result = value * 2.0\n"
            "    return result\n"
        )
        assert check_source(source, CheckerMode.STRICT).ok

    def test_syntax_error_reported_not_raised(self):
        result = check_source("def broken(:\n")
        assert not result.ok
        assert result.errors[0].code == ErrorCode.ANNOTATION_UNPARSABLE


class TestErrorDetection:
    def test_wrong_return_type(self):
        result = check_source("def f() -> int:\n    return 'text'\n")
        assert any(e.code == ErrorCode.RETURN_VALUE for e in result.errors)

    def test_wrong_argument_type(self):
        source = "def f(x: int) -> int:\n    return x\n\ny = f('nope')\n"
        result = check_source(source)
        assert any(e.code == ErrorCode.ARG_TYPE for e in result.errors)

    def test_wrong_annotated_assignment(self):
        result = check_source("x: int = 'text'\n")
        assert any(e.code == ErrorCode.ASSIGNMENT for e in result.errors)

    def test_declared_variable_reassignment_checked(self):
        source = "def f() -> None:\n    x: int = 1\n    x = 'text'\n"
        result = check_source(source)
        assert any(e.code == ErrorCode.ASSIGNMENT for e in result.errors)

    def test_operator_mismatch(self):
        result = check_source("def f(a: str, b: int) -> str:\n    return a + b\n")
        assert any(e.code == ErrorCode.OPERATOR for e in result.errors)

    def test_attribute_error_strict_only(self):
        source = (
            "class Box:\n"
            "    def __init__(self, width: int) -> None:\n"
            "        self.width = width\n"
            "\n"
            "def f(box: Box) -> int:\n"
            "    return box.height\n"
        )
        assert any(e.code == ErrorCode.ATTR_DEFINED for e in check_source(source, CheckerMode.STRICT).errors)
        assert check_source(source, CheckerMode.LENIENT).ok

    def test_too_many_arguments_strict_only(self):
        source = "def f(x: int) -> int:\n    return x\n\ny = f(1, 2, 3)\n"
        assert any(e.code == ErrorCode.ARG_COUNT for e in check_source(source, CheckerMode.STRICT).errors)
        assert not any(e.code == ErrorCode.ARG_COUNT for e in check_source(source, CheckerMode.LENIENT).errors)

    def test_invalid_annotation_reported(self):
        result = check_source("value: 'List[' = []\n")
        assert any(e.code == ErrorCode.ANNOTATION_UNPARSABLE for e in result.errors)

    def test_lenient_reports_fewer_errors_than_strict(self):
        source = (
            "def f(x: int) -> int:\n"
            "    y: float = 2.5\n"
            "    return y\n"  # strict: return-value error; lenient tolerates numeric narrowing
        )
        strict_errors = len(check_source(source, CheckerMode.STRICT).errors)
        lenient_errors = len(check_source(source, CheckerMode.LENIENT).errors)
        assert lenient_errors <= strict_errors

    def test_dict_index_type_checked_strict(self):
        source = (
            "from typing import Dict\n"
            "def f(mapping: Dict[str, int]) -> int:\n"
            "    return mapping[3]\n"
        )
        assert any(e.code == ErrorCode.INDEX for e in check_source(source, CheckerMode.STRICT).errors)

    def test_class_attribute_assignment_checked(self):
        source = (
            "class Config:\n"
            "    def __init__(self, limit: int) -> None:\n"
            "        self.limit: int = limit\n"
            "\n"
            "    def reset(self) -> None:\n"
            "        self.limit = 'unbounded'\n"
        )
        assert any(e.code == ErrorCode.ASSIGNMENT for e in check_source(source, CheckerMode.STRICT).errors)


class TestInference:
    def test_infer_return_annotation(self):
        source = "def count(items):\n    return len(items)\n"
        inferred = OptionalTypeChecker(CheckerMode.LENIENT).infer_annotations(source)
        assert inferred[("module.count", "<return>", "function_return")] == "int"

    def test_infer_variable_types_from_literals(self):
        source = "def f():\n    label = 'x'\n    return label\n"
        inferred = OptionalTypeChecker(CheckerMode.LENIENT).infer_annotations(source)
        assert inferred[("module.f", "label", "variable")] == "str"

    def test_infer_module_level_constant(self):
        inferred = OptionalTypeChecker(CheckerMode.LENIENT).infer_annotations("LIMIT = 10\n")
        assert inferred[("module", "LIMIT", "variable")] == "int"

    def test_no_inference_for_annotated_returns(self):
        inferred = OptionalTypeChecker(CheckerMode.LENIENT).infer_annotations("def f() -> int:\n    return 1\n")
        assert ("module.f", "<return>", "function_return") not in inferred


class TestPredictionHarness:
    SOURCE = (
        "def repeat(text: str, times: int) -> str:\n"
        "    return text * times\n"
        "\n"
        "def run(count):\n"
        "    label = repeat('x', count)\n"
        "    return label\n"
    )

    def test_apply_annotation_to_parameter(self):
        modified = apply_annotation(self.SOURCE, "module.run", "count", SymbolKind.PARAMETER, "int")
        assert "def run(count: int):" in modified

    def test_apply_annotation_to_return(self):
        modified = apply_annotation(self.SOURCE, "module.run", "<return>", SymbolKind.FUNCTION_RETURN, "str")
        assert "-> str" in modified

    def test_apply_annotation_to_variable(self):
        modified = apply_annotation(self.SOURCE, "module.run", "label", SymbolKind.VARIABLE, "str")
        assert "label: str =" in modified

    def test_apply_annotation_unknown_symbol_raises(self):
        with pytest.raises(AnnotationRewriteError):
            apply_annotation(self.SOURCE, "module.run", "missing", SymbolKind.PARAMETER, "int")

    def test_apply_annotation_invalid_type_raises(self):
        with pytest.raises(AnnotationRewriteError):
            apply_annotation(self.SOURCE, "module.run", "count", SymbolKind.PARAMETER, "List[")

    def test_apply_annotation_to_self_attribute(self):
        source = (
            "class Box:\n"
            "    def __init__(self, width):\n"
            "        self.width = width\n"
        )
        modified = apply_annotation(source, "module.Box", "self.width", SymbolKind.VARIABLE, "int")
        assert "self.width: int = width" in modified

    def test_good_prediction_accepted(self):
        checker = PredictionChecker(CheckerMode.STRICT)
        outcome = checker.check_prediction(self.SOURCE, "module.run", "count", SymbolKind.PARAMETER, "int")
        assert outcome.ok and outcome.category == PredictionCategory.ADDED

    def test_bad_prediction_rejected(self):
        checker = PredictionChecker(CheckerMode.STRICT)
        outcome = checker.check_prediction(self.SOURCE, "module.run", "count", SymbolKind.PARAMETER, "str")
        assert not outcome.ok and outcome.introduced_errors >= 1

    def test_identical_prediction_categorised_tau_to_tau(self):
        checker = PredictionChecker(CheckerMode.STRICT)
        outcome = checker.check_prediction(
            self.SOURCE, "module.repeat", "times", SymbolKind.PARAMETER, "int", original_annotation="int"
        )
        assert outcome.ok and outcome.category == PredictionCategory.UNCHANGED

    def test_changed_prediction_categorised_tau_to_tau_prime(self):
        checker = PredictionChecker(CheckerMode.STRICT)
        outcome = checker.check_prediction(
            self.SOURCE, "module.repeat", "times", SymbolKind.PARAMETER, "float", original_annotation="int"
        )
        assert outcome.category == PredictionCategory.CHANGED

    def test_any_prediction_skipped(self):
        checker = PredictionChecker(CheckerMode.STRICT)
        outcome = checker.check_prediction(self.SOURCE, "module.run", "count", SymbolKind.PARAMETER, "Any")
        assert outcome.skipped

    def test_pre_existing_errors_do_not_count_against_prediction(self):
        source = "x: int = 'wrong'\n\ndef f(value):\n    return value + 1\n"
        checker = PredictionChecker(CheckerMode.STRICT)
        outcome = checker.check_prediction(source, "module.f", "value", SymbolKind.PARAMETER, "int")
        assert outcome.ok  # the unrelated baseline error is not attributed to the prediction
