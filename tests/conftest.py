"""Shared fixtures: a tiny corpus, dataset and trained pipeline.

Expensive fixtures are session-scoped so integration tests across modules
reuse one small training run instead of retraining per test.
"""

from __future__ import annotations

import pytest

from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.utils.rng import SeededRNG


SAMPLE_SOURCE = '''
from typing import Dict, List, Optional

MAX_RETRIES: int = 3


def get_foo(i: int, j: int) -> str:
    result: str = str(i + j)
    return result


class Widget:
    def __init__(self, name: str, sizes: List[int]) -> None:
        self.name: str = name
        self.sizes = sizes

    def total_size(self) -> int:
        total = 0
        for size in self.sizes:
            if size > 0:
                total += size
        return total


def process(widget: Widget, scale: Optional[float] = None) -> float:
    value = widget.total_size()
    if scale is not None:
        value = value * scale
    return float(value)


def summarise(counts: Dict[str, int]) -> str:
    parts = []
    for key, value in counts.items():
        parts.append(key + "=" + str(value))
    return ",".join(parts)
'''


@pytest.fixture(scope="session")
def rng() -> SeededRNG:
    return SeededRNG(123)


@pytest.fixture(scope="session")
def tiny_synthesis_config() -> SynthesisConfig:
    return SynthesisConfig(num_files=16, seed=5, num_user_classes=10)


@pytest.fixture(scope="session")
def tiny_dataset(tiny_synthesis_config) -> TypeAnnotationDataset:
    return TypeAnnotationDataset.synthetic(
        tiny_synthesis_config,
        DatasetConfig(rarity_threshold=8, seed=5),
    )


@pytest.fixture(scope="session")
def trained_pipeline(tiny_dataset) -> TypilusPipeline:
    return TypilusPipeline.fit(
        tiny_dataset,
        EncoderConfig(family="graph", hidden_dim=24, gnn_steps=2, seed=5),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=4, graphs_per_batch=6, learning_rate=8e-3, seed=5),
    )


@pytest.fixture()
def sample_source() -> str:
    return SAMPLE_SOURCE
