"""Tests for the compile-once featurization layer (repro.models.featurize)."""

import numpy as np
import pytest

from repro.graph.subtokens import CharacterVocabulary, SubtokenVocabulary
from repro.models.encoder_init import TokenVocabulary
from repro.models.featurize import (
    CHARACTER,
    SUBTOKEN,
    TOKEN,
    FeatureExtractor,
    TextFeatures,
    vocabulary_fingerprint,
)


@pytest.fixture(scope="module")
def subtokens() -> SubtokenVocabulary:
    vocabulary = SubtokenVocabulary()
    for text in ("num_count", "total_count", "get_value", "items"):
        vocabulary.observe_identifier(text)
    return vocabulary.finalise()


class TestFeatureExtractor:
    def test_subtoken_ids_match_eager_tokenization(self, subtokens):
        texts = ["num_count", "get_value", "+", "", "unseen_word"]
        extractor = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=subtokens)
        features = extractor.features_for_texts(texts)
        expected_ids = [identifier for text in texts for identifier in subtokens.ids_for_identifier(text)]
        expected_segments = [
            position for position, text in enumerate(texts)
            for _ in subtokens.ids_for_identifier(text)
        ]
        assert features.num_texts == len(texts)
        assert features.ids.tolist() == expected_ids
        assert features.segments.tolist() == expected_segments

    def test_token_and_character_layouts(self, subtokens):
        tokens = TokenVocabulary.from_texts(["count", "count", "name"])
        token_features = FeatureExtractor(TOKEN, token_vocabulary=tokens).features_for_texts(
            ["count", "never_seen"]
        )
        assert token_features.ids.tolist() == [tokens.lookup("count"), TokenVocabulary.UNKNOWN]

        characters = CharacterVocabulary()
        char_features = FeatureExtractor(
            CHARACTER, character_vocabulary=characters, max_chars=8
        ).features_for_texts(["ab", ""])
        assert char_features.ids.shape == (2, 8)
        assert char_features.ids.tolist()[0] == characters.encode("ab", 8)
        assert char_features.ids.tolist()[1] == characters.encode("_", 8)

    def test_memo_returns_identical_arrays(self, subtokens):
        extractor = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=subtokens, memoize=True)
        first = extractor.features_for_texts(["num_count"])
        second = extractor.features_for_texts(["num_count"])
        assert (first.ids == second.ids).all()
        assert "num_count" in extractor._memo

    def test_requires_matching_vocabulary(self):
        with pytest.raises(ValueError):
            FeatureExtractor(SUBTOKEN)
        with pytest.raises(ValueError):
            FeatureExtractor("nonsense")

    def test_fingerprint_tracks_vocabulary_content(self, subtokens):
        extractor = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=subtokens)
        other = SubtokenVocabulary()
        other.observe_identifier("different_words")
        other_extractor = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=other.finalise())
        assert extractor.fingerprint() != other_extractor.fingerprint()
        assert extractor.fingerprint() == vocabulary_fingerprint(SUBTOKEN, subtokens.tokens)


class TestTextFeaturesOps:
    def test_concatenate_offsets_segments(self, subtokens):
        extractor = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=subtokens)
        first = extractor.features_for_texts(["num_count", "items"])
        second = extractor.features_for_texts(["get_value"])
        merged = TextFeatures.concatenate([first, second])
        direct = extractor.features_for_texts(["num_count", "items", "get_value"])
        assert merged.num_texts == 3
        assert (merged.ids == direct.ids).all()
        assert (merged.segments == direct.segments).all()
        assert (merged.row_splits == direct.row_splits).all()

    def test_take_selects_rows_with_repeats(self, subtokens):
        extractor = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=subtokens)
        features = extractor.features_for_texts(["num_count", "items", "get_value"])
        taken = features.take(np.array([2, 0, 2]))
        direct = extractor.features_for_texts(["get_value", "num_count", "get_value"])
        assert (taken.ids == direct.ids).all()
        assert (taken.segments == direct.segments).all()

    def test_repeated_tiles_rows(self, subtokens):
        extractor = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=subtokens)
        padding = extractor.features_for_texts([""])
        tiled = padding.repeated(3)
        direct = extractor.features_for_texts(["", "", ""])
        assert (tiled.ids == direct.ids).all()
        assert (tiled.segments == direct.segments).all()

    def test_concatenate_mismatched_kinds_raises(self, subtokens):
        tokens = TokenVocabulary.from_texts(["a"])
        sub = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=subtokens).features_for_texts(["a"])
        tok = FeatureExtractor(TOKEN, token_vocabulary=tokens).features_for_texts(["a"])
        with pytest.raises(ValueError):
            TextFeatures.concatenate([sub, tok])
        with pytest.raises(ValueError):
            TextFeatures.concatenate([])


class TestInitializerFeaturePath:
    def test_encode_features_equals_encode_texts(self, subtokens):
        from repro.models.encoder_init import SubtokenNodeInitializer
        from repro.utils.rng import SeededRNG

        initializer = SubtokenNodeInitializer(subtokens, 8, SeededRNG(2))
        texts = ["num_count", "", "get_value", "total_count"]
        via_texts = initializer.encode_texts(texts)
        via_features = initializer.encode_features(initializer.featurize(texts))
        assert (via_texts.data == via_features.data).all()
