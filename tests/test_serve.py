"""The annotation daemon: protocol, micro-batching, parity and adaptation."""

from __future__ import annotations

import json
import os
import shutil
import socket
import struct
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.core import TypilusPipeline
from repro.engine import AnnotatorConfig, ProjectAnnotator
from repro.serve import (
    AnnotationClient,
    AnnotationServer,
    ProtocolError,
    ServeConfig,
    ServeError,
    recv_frame,
    send_frame,
)

FILE_A = "def scale_amount(amount, factor):\n    return amount * factor\n"
FILE_B = (
    "def count_entries(entries):\n"
    "    return len(entries)\n"
    "\n"
    "def join_names(names):\n"
    "    return ','.join(names)\n"
)
FILE_C = "def format_label(label):\n    return label.strip()\n"


def _suggestion_key(suggestion):
    return (
        suggestion.scope,
        suggestion.name,
        suggestion.kind,
        suggestion.existing_annotation,
        suggestion.prediction.candidates,
        None
        if suggestion.filtered is None
        else (
            suggestion.filtered.accepted_type,
            suggestion.filtered.accepted_confidence,
            suggestion.filtered.rejected,
        ),
    )


def _report_keys(report):
    return {
        file_report.filename: [_suggestion_key(s) for s in file_report.suggestions]
        for file_report in report.files
    }


@pytest.fixture(scope="module")
def model_dir(trained_pipeline, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-model") / "model"
    trained_pipeline.save(path)
    return path


@contextmanager
def _running_server(model_dir, annotator_config=None, serve_config=None):
    # A short socket path of our own: pytest tmp paths can overflow the
    # ~107-byte AF_UNIX limit.
    workdir = tempfile.mkdtemp(prefix="typilus-serve-")
    socket_path = os.path.join(workdir, "daemon.sock")
    pipeline = TypilusPipeline.load(model_dir)
    server = AnnotationServer(
        pipeline,
        socket_path,
        annotator_config=annotator_config or AnnotatorConfig(use_type_checker=False),
        serve_config=serve_config or ServeConfig(batch_window_seconds=0.2),
    ).start()
    client = AnnotationClient(socket_path)
    client.wait_until_ready(timeout=10.0)
    try:
        yield SimpleNamespace(
            server=server, client=client, pipeline=pipeline, socket_path=socket_path
        )
    finally:
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)


@pytest.fixture()
def served(model_dir):
    with _running_server(model_dir) as handle:
        yield handle


class TestServingParity:
    def test_daemon_report_matches_one_shot_annotator(self, served):
        """Acceptance: serve == ProjectAnnotator, suggestion for suggestion."""
        sources = {"a.py": FILE_A, "b.py": FILE_B, "c.py": FILE_C}
        direct = ProjectAnnotator(
            served.pipeline, AnnotatorConfig(use_type_checker=False)
        ).annotate_sources(sources)
        through_daemon = served.client.annotate_sources(sources)
        assert _report_keys(through_daemon) == _report_keys(direct)
        assert through_daemon.skipped_files == direct.skipped_files
        assert [f.filename for f in through_daemon.files] == [f.filename for f in direct.files]

    def test_parity_holds_with_type_checker(self, model_dir):
        config = AnnotatorConfig(use_type_checker=True)
        with _running_server(model_dir, annotator_config=config) as served:
            sources = {"a.py": FILE_A}
            direct = ProjectAnnotator(served.pipeline, config).annotate_sources(sources)
            through_daemon = served.client.annotate_sources(sources)
            assert _report_keys(through_daemon) == _report_keys(direct)

    def test_unparsable_files_are_skipped(self, served):
        report = served.client.annotate_sources({"ok.py": FILE_A, "broken.py": "def broken(:\n"})
        assert report.skipped_files == ["broken.py"]
        assert [f.filename for f in report.files] == ["ok.py"]

    def test_annotate_directory_through_daemon(self, served, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "a.py").write_text(FILE_A, encoding="utf-8")
        (tmp_path / "pkg" / "b.py").write_text(FILE_B, encoding="utf-8")
        report = served.client.annotate_directory(tmp_path)
        direct = ProjectAnnotator(
            served.pipeline, AnnotatorConfig(use_type_checker=False)
        ).annotate_directory(tmp_path)
        assert _report_keys(report) == _report_keys(direct)


class TestMicroBatching:
    def test_concurrent_requests_coalesce_and_stay_correct(self, served):
        per_request = [
            {"a.py": FILE_A},
            {"b.py": FILE_B},
            {"c.py": FILE_C},
            {"a2.py": FILE_A, "b2.py": FILE_B},
            {"c2.py": FILE_C},
        ]
        with ThreadPoolExecutor(max_workers=len(per_request)) as pool:
            reports = list(pool.map(served.client.annotate_sources, per_request))
        annotator = ProjectAnnotator(served.pipeline, AnnotatorConfig(use_type_checker=False))
        for sources, report in zip(per_request, reports):
            assert _report_keys(report) == _report_keys(annotator.annotate_sources(sources))
        stats = served.client.stats()
        assert stats["annotate_requests"] == len(per_request)
        assert stats["largest_batch"] >= 2  # coalescing actually happened
        assert stats["micro_batches"] < len(per_request)

    def test_same_filename_different_content_across_requests(self, served):
        """Request namespacing: identical filenames must not collide in a batch."""
        results = {}

        def annotate(tag, source):
            results[tag] = served.client.annotate_sources({"mod.py": source})

        threads = [
            threading.Thread(target=annotate, args=("a", FILE_A)),
            threading.Thread(target=annotate, args=("b", FILE_B)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        annotator = ProjectAnnotator(served.pipeline, AnnotatorConfig(use_type_checker=False))
        assert _report_keys(results["a"]) == _report_keys(annotator.annotate_sources({"mod.py": FILE_A}))
        assert _report_keys(results["b"]) == _report_keys(annotator.annotate_sources({"mod.py": FILE_B}))

    def test_batch_cap_respected(self, model_dir):
        config = ServeConfig(batch_window_seconds=0.5, max_batch_requests=2)
        with _running_server(model_dir, serve_config=config) as served:
            per_request = [{f"f{i}.py": FILE_A} for i in range(4)]
            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(served.client.annotate_sources, per_request))
            assert served.client.stats()["largest_batch"] <= 2


class TestServingAdaptation:
    def test_adapt_extends_type_map_between_requests(self, served):
        before = served.client.ping()["markers"]
        example = (
            "def handle(event: CustomEventKind) -> CustomEventKind:\n"
            "    return event\n"
        )
        response = served.client.adapt("CustomEventKind", {"example.py": example})
        assert response["added_markers"] >= 1
        assert response["markers"] == before + response["added_markers"]
        assert served.client.ping()["markers"] == response["markers"]
        # the daemon keeps answering afterwards, with the grown space
        report = served.client.annotate_sources({"a.py": FILE_A})
        assert report.num_files == 1
        assert "CustomEventKind" in served.pipeline.type_space.known_types()

    def test_adapt_with_no_matching_symbols_adds_nothing(self, served):
        before = served.client.ping()["markers"]
        response = served.client.adapt("NeverAnnotated", {"a.py": FILE_A})
        assert response["added_markers"] == 0
        assert served.client.ping()["markers"] == before


class TestLifecycleAndProtocol:
    def test_shutdown_request_stops_daemon_and_removes_socket(self, model_dir):
        with _running_server(model_dir) as served:
            acknowledgement = served.client.shutdown()
            assert acknowledgement["stopping"] is True
            served.server.close()
            assert not os.path.exists(served.socket_path)
            with pytest.raises((OSError, TimeoutError)):
                served.client.wait_until_ready(timeout=0.3)

    def test_stale_socket_file_is_reclaimed(self, model_dir):
        workdir = tempfile.mkdtemp(prefix="typilus-serve-")
        socket_path = os.path.join(workdir, "daemon.sock")
        try:
            leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            leftover.bind(socket_path)
            leftover.close()  # bound but never listening: a crash leftover
            pipeline = TypilusPipeline.load(model_dir)
            server = AnnotationServer(pipeline, socket_path).start()
            try:
                assert AnnotationClient(socket_path).wait_until_ready(timeout=10.0)["ok"]
            finally:
                server.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_second_daemon_refuses_live_socket(self, served, model_dir):
        other = TypilusPipeline.load(model_dir)
        with pytest.raises(RuntimeError, match="already serving"):
            AnnotationServer(other, served.socket_path).start()

    def test_unknown_op_is_an_error_not_a_crash(self, served):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as connection:
            connection.connect(served.socket_path)
            send_frame(connection, {"op": "frobnicate"})
            response = recv_frame(connection)
        assert response == {"ok": False, "error": "unknown op 'frobnicate'"}
        assert served.client.ping()["ok"]  # daemon still alive

    def test_malformed_frame_gets_error_response(self, served):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as connection:
            connection.connect(served.socket_path)
            body = b"this is not json"
            connection.sendall(struct.pack(">I", len(body)) + body)
            response = recv_frame(connection)
        assert response is not None and response["ok"] is False
        assert served.client.ping()["ok"]

    def test_bad_sources_payload_rejected(self, served):
        with pytest.raises(ServeError, match="sources"):
            served.client._request({"op": "annotate", "sources": "not a mapping"})

    def test_frame_roundtrip_and_limits(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"hello": "wörld", "n": 3})
            assert recv_frame(right) == {"hello": "wörld", "n": 3}
            left.close()
            assert recv_frame(right) is None  # clean EOF
        finally:
            right.close()

    def test_oversized_frame_header_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 1 << 31))
            with pytest.raises(ProtocolError, match="cap"):
                recv_frame(right)
        finally:
            left.close()
            right.close()


class TestServeCLI:
    def test_ping_and_client_mode_annotate(self, served, tmp_path, capsys):
        from repro.cli import main

        assert main(["serve", "--socket", served.socket_path, "--ping"]) == 0
        assert "daemon ready" in capsys.readouterr().out

        project = tmp_path / "project"
        project.mkdir()
        (project / "a.py").write_text(FILE_A, encoding="utf-8")
        report_path = tmp_path / "report.json"
        code = main(
            [
                "annotate",
                str(project),
                "--server",
                served.socket_path,
                "--report-json",
                str(report_path),
            ]
        )
        assert code == 0
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert [entry["filename"] for entry in payload["files"]] == ["a.py"]
        direct = ProjectAnnotator(
            served.pipeline, AnnotatorConfig(use_type_checker=False)
        ).annotate_sources({"a.py": FILE_A})
        from repro.engine import suggestion_to_payload

        assert payload["files"][0]["suggestions"] == [
            json.loads(json.dumps(suggestion_to_payload(s))) for s in direct.files[0].suggestions
        ]

    def test_client_mode_rejects_daemon_fixed_flags(self, served, tmp_path):
        from repro.cli import main

        project = tmp_path / "project"
        project.mkdir()
        (project / "a.py").write_text(FILE_A, encoding="utf-8")
        for flags in (["--confidence", "0.5"], ["--no-type-checker"], ["--jobs", "2"]):
            with pytest.raises(SystemExit, match="--server"):
                main(["annotate", str(project), "--server", served.socket_path, *flags])

    def test_cli_shutdown_stops_daemon(self, model_dir, capsys):
        from repro.cli import main

        with _running_server(model_dir) as served:
            assert main(["serve", "--socket", served.socket_path, "--shutdown"]) == 0
            assert "stopping" in capsys.readouterr().out
            served.server.close()
            assert not os.path.exists(served.socket_path)
