"""The annotation daemon: protocol, micro-batching, parity and adaptation."""

from __future__ import annotations

import json
import os
import shutil
import socket
import struct
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.core import TypilusPipeline
from repro.engine import AnnotatorConfig, ProjectAnnotator
from repro.serve import (
    AnnotationClient,
    AnnotationServer,
    ProtocolError,
    ServeConfig,
    ServeError,
    recv_frame,
    send_frame,
)

FILE_A = "def scale_amount(amount, factor):\n    return amount * factor\n"
FILE_B = (
    "def count_entries(entries):\n"
    "    return len(entries)\n"
    "\n"
    "def join_names(names):\n"
    "    return ','.join(names)\n"
)
FILE_C = "def format_label(label):\n    return label.strip()\n"


def _suggestion_key(suggestion):
    return (
        suggestion.scope,
        suggestion.name,
        suggestion.kind,
        suggestion.existing_annotation,
        suggestion.prediction.candidates,
        None
        if suggestion.filtered is None
        else (
            suggestion.filtered.accepted_type,
            suggestion.filtered.accepted_confidence,
            suggestion.filtered.rejected,
        ),
    )


def _report_keys(report):
    return {
        file_report.filename: [_suggestion_key(s) for s in file_report.suggestions]
        for file_report in report.files
    }


@pytest.fixture(scope="module")
def model_dir(trained_pipeline, tmp_path_factory):
    path = tmp_path_factory.mktemp("serve-model") / "model"
    trained_pipeline.save(path)
    return path


@contextmanager
def _running_server(model_dir, annotator_config=None, serve_config=None):
    # A short socket path of our own: pytest tmp paths can overflow the
    # ~107-byte AF_UNIX limit.
    workdir = tempfile.mkdtemp(prefix="typilus-serve-")
    socket_path = os.path.join(workdir, "daemon.sock")
    pipeline = TypilusPipeline.load(model_dir)
    server = AnnotationServer(
        pipeline,
        socket_path,
        annotator_config=annotator_config or AnnotatorConfig(use_type_checker=False),
        serve_config=serve_config or ServeConfig(batch_window_seconds=0.2),
    ).start()
    client = AnnotationClient(socket_path)
    client.wait_until_ready(timeout=10.0)
    try:
        yield SimpleNamespace(
            server=server, client=client, pipeline=pipeline, socket_path=socket_path
        )
    finally:
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)


@pytest.fixture()
def served(model_dir):
    with _running_server(model_dir) as handle:
        yield handle


class TestServingParity:
    def test_daemon_report_matches_one_shot_annotator(self, served):
        """Acceptance: serve == ProjectAnnotator, suggestion for suggestion."""
        sources = {"a.py": FILE_A, "b.py": FILE_B, "c.py": FILE_C}
        direct = ProjectAnnotator(
            served.pipeline, AnnotatorConfig(use_type_checker=False)
        ).annotate_sources(sources)
        through_daemon = served.client.annotate_sources(sources)
        assert _report_keys(through_daemon) == _report_keys(direct)
        assert through_daemon.skipped_files == direct.skipped_files
        assert [f.filename for f in through_daemon.files] == [f.filename for f in direct.files]

    def test_parity_holds_with_type_checker(self, model_dir):
        config = AnnotatorConfig(use_type_checker=True)
        with _running_server(model_dir, annotator_config=config) as served:
            sources = {"a.py": FILE_A}
            direct = ProjectAnnotator(served.pipeline, config).annotate_sources(sources)
            through_daemon = served.client.annotate_sources(sources)
            assert _report_keys(through_daemon) == _report_keys(direct)

    def test_unparsable_files_are_skipped(self, served):
        report = served.client.annotate_sources({"ok.py": FILE_A, "broken.py": "def broken(:\n"})
        assert report.skipped_files == ["broken.py"]
        assert [f.filename for f in report.files] == ["ok.py"]

    def test_annotate_directory_through_daemon(self, served, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "a.py").write_text(FILE_A, encoding="utf-8")
        (tmp_path / "pkg" / "b.py").write_text(FILE_B, encoding="utf-8")
        report = served.client.annotate_directory(tmp_path)
        direct = ProjectAnnotator(
            served.pipeline, AnnotatorConfig(use_type_checker=False)
        ).annotate_directory(tmp_path)
        assert _report_keys(report) == _report_keys(direct)


class TestMicroBatching:
    def test_concurrent_requests_coalesce_and_stay_correct(self, served):
        per_request = [
            {"a.py": FILE_A},
            {"b.py": FILE_B},
            {"c.py": FILE_C},
            {"a2.py": FILE_A, "b2.py": FILE_B},
            {"c2.py": FILE_C},
        ]
        with ThreadPoolExecutor(max_workers=len(per_request)) as pool:
            reports = list(pool.map(served.client.annotate_sources, per_request))
        annotator = ProjectAnnotator(served.pipeline, AnnotatorConfig(use_type_checker=False))
        for sources, report in zip(per_request, reports):
            assert _report_keys(report) == _report_keys(annotator.annotate_sources(sources))
        stats = served.client.stats()
        assert stats["annotate_requests"] == len(per_request)
        assert stats["largest_batch"] >= 2  # coalescing actually happened
        assert stats["micro_batches"] < len(per_request)

    def test_same_filename_different_content_across_requests(self, served):
        """Request namespacing: identical filenames must not collide in a batch."""
        results = {}

        def annotate(tag, source):
            results[tag] = served.client.annotate_sources({"mod.py": source})

        threads = [
            threading.Thread(target=annotate, args=("a", FILE_A)),
            threading.Thread(target=annotate, args=("b", FILE_B)),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        annotator = ProjectAnnotator(served.pipeline, AnnotatorConfig(use_type_checker=False))
        assert _report_keys(results["a"]) == _report_keys(annotator.annotate_sources({"mod.py": FILE_A}))
        assert _report_keys(results["b"]) == _report_keys(annotator.annotate_sources({"mod.py": FILE_B}))

    def test_batch_cap_respected(self, model_dir):
        config = ServeConfig(batch_window_seconds=0.5, max_batch_requests=2)
        with _running_server(model_dir, serve_config=config) as served:
            per_request = [{f"f{i}.py": FILE_A} for i in range(4)]
            with ThreadPoolExecutor(max_workers=4) as pool:
                list(pool.map(served.client.annotate_sources, per_request))
            assert served.client.stats()["largest_batch"] <= 2


class TestServingAdaptation:
    def test_adapt_extends_type_map_between_requests(self, served):
        before = served.client.ping()["markers"]
        example = (
            "def handle(event: CustomEventKind) -> CustomEventKind:\n"
            "    return event\n"
        )
        response = served.client.adapt("CustomEventKind", {"example.py": example})
        assert response["added_markers"] >= 1
        assert response["markers"] == before + response["added_markers"]
        assert served.client.ping()["markers"] == response["markers"]
        # the daemon keeps answering afterwards, with the grown space
        report = served.client.annotate_sources({"a.py": FILE_A})
        assert report.num_files == 1
        assert "CustomEventKind" in served.pipeline.type_space.known_types()

    def test_adapt_with_no_matching_symbols_adds_nothing(self, served):
        before = served.client.ping()["markers"]
        response = served.client.adapt("NeverAnnotated", {"a.py": FILE_A})
        assert response["added_markers"] == 0
        assert served.client.ping()["markers"] == before


class TestLifecycleAndProtocol:
    def test_shutdown_request_stops_daemon_and_removes_socket(self, model_dir):
        with _running_server(model_dir) as served:
            acknowledgement = served.client.shutdown()
            assert acknowledgement["stopping"] is True
            served.server.close()
            assert not os.path.exists(served.socket_path)
            with pytest.raises((OSError, TimeoutError)):
                served.client.wait_until_ready(timeout=0.3)

    def test_stale_socket_file_is_reclaimed(self, model_dir):
        workdir = tempfile.mkdtemp(prefix="typilus-serve-")
        socket_path = os.path.join(workdir, "daemon.sock")
        try:
            leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            leftover.bind(socket_path)
            leftover.close()  # bound but never listening: a crash leftover
            pipeline = TypilusPipeline.load(model_dir)
            server = AnnotationServer(pipeline, socket_path).start()
            try:
                assert AnnotationClient(socket_path).wait_until_ready(timeout=10.0)["ok"]
            finally:
                server.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)

    def test_second_daemon_refuses_live_socket(self, served, model_dir):
        other = TypilusPipeline.load(model_dir)
        with pytest.raises(RuntimeError, match="already serving"):
            AnnotationServer(other, served.socket_path).start()

    def test_unknown_op_is_an_error_not_a_crash(self, served):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as connection:
            connection.connect(served.socket_path)
            send_frame(connection, {"op": "frobnicate"})
            response = recv_frame(connection)
        assert response == {"ok": False, "error": "unknown op 'frobnicate'", "error_kind": "bad_request"}
        assert served.client.ping()["ok"]  # daemon still alive

    def test_malformed_frame_gets_error_response(self, served):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as connection:
            connection.connect(served.socket_path)
            body = b"this is not json"
            connection.sendall(struct.pack(">I", len(body)) + body)
            response = recv_frame(connection)
        assert response is not None and response["ok"] is False
        assert served.client.ping()["ok"]

    def test_bad_sources_payload_rejected(self, served):
        with pytest.raises(ServeError, match="sources"):
            served.client._request({"op": "annotate", "sources": "not a mapping"})

    def test_frame_roundtrip_and_limits(self):
        left, right = socket.socketpair()
        try:
            send_frame(left, {"hello": "wörld", "n": 3})
            assert recv_frame(right) == {"hello": "wörld", "n": 3}
            left.close()
            assert recv_frame(right) is None  # clean EOF
        finally:
            right.close()

    def test_oversized_frame_header_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", (1 << 31) - 1))
            with pytest.raises(ProtocolError, match="cap"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_garbage_negative_length_rejected(self):
        """A header whose length is negative as an int32 is garbage, not a big frame."""
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 0xFFFFFFFF))
            with pytest.raises(ProtocolError, match="garbage"):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_configurable_frame_cap_rejects_before_allocating(self):
        """recv_frame honours a caller-supplied cap on the *claimed* length."""
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 4097))  # header only: no payload ever sent
            with pytest.raises(ProtocolError, match="4096"):
                recv_frame(right, max_frame_bytes=4096)
        finally:
            left.close()
            right.close()

    def test_send_frame_honours_configurable_cap(self):
        left, right = socket.socketpair()
        try:
            with pytest.raises(ProtocolError, match="cap"):
                send_frame(left, {"blob": "x" * 512}, max_frame_bytes=64)
        finally:
            left.close()
            right.close()

    def test_truncated_payload_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 100) + b"only ten b")
            left.close()
            with pytest.raises(ProtocolError, match="mid-frame"):
                recv_frame(right)
        finally:
            right.close()

    def test_truncation_between_header_and_payload_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack(">I", 100))
            left.close()
            with pytest.raises(ProtocolError, match="between frame header and payload"):
                recv_frame(right)
        finally:
            right.close()

    def test_server_enforces_its_frame_cap_and_stays_alive(self, model_dir):
        config = ServeConfig(max_frame_bytes=2048)
        with _running_server(model_dir, serve_config=config) as served:
            with pytest.raises(ServeError, match="cap") as excinfo:
                served.client.annotate_sources({"big.py": "x = 1\n" * 4096})
            assert excinfo.value.kind == "protocol"
            assert served.client.ping()["ok"]  # daemon still alive


class TestStatsAndState:
    def test_stats_surface_degradation_counters(self, served):
        stats = served.client.stats()
        for key in (
            "shed_requests",
            "expired_requests",
            "poison_requests",
            "reloads",
            "failed_reloads",
            "batcher_restarts",
            "errors",
        ):
            assert key in stats, f"stats op must surface {key}"
        assert stats["state"] == "ready"

    def test_ping_reports_lifecycle_state_and_queue(self, served):
        info = served.client.ping()
        assert info["state"] == "ready"
        assert info["queue_capacity"] >= 1
        assert info["queue_depth"] >= 0

    def test_client_side_zero_deadline_never_reaches_the_wire(self, served):
        before = served.client.stats()
        with pytest.raises(ServeError, match="before the request was sent") as excinfo:
            served.client.annotate_sources({"a.py": FILE_A}, timeout_seconds=0.0)
        assert excinfo.value.kind == "expired"
        after = served.client.stats()
        # the request never reached the daemon: no server-side expiry, no annotate
        assert after["expired_requests"] == before["expired_requests"]
        assert after["annotate_requests"] == before["annotate_requests"]

    def test_expired_deadline_is_dropped_before_the_batch_runs(self, served):
        """A wire ``timeout_seconds: 0`` always expires before dispatch — dropped, not annotated."""
        before = served.client.stats()
        with pytest.raises(ServeError, match="dropped unprocessed") as excinfo:
            served.client._request({"op": "annotate", "sources": {"a.py": FILE_A}, "timeout_seconds": 0})
        assert excinfo.value.kind == "expired"
        after = served.client.stats()
        assert after["expired_requests"] == before["expired_requests"] + 1
        assert after["micro_batches"] == before["micro_batches"]  # no embedding pass spent
        # non-expiring deadlines still answer normally
        report = served.client.annotate_sources({"a.py": FILE_A}, timeout_seconds=60.0)
        assert report.num_files == 1

    def test_invalid_timeout_rejected(self, served):
        with pytest.raises(ServeError, match="timeout_seconds"):
            served.client._request({"op": "annotate", "sources": {"a.py": FILE_A}, "timeout_seconds": "soon"})


class TestWaitUntilReady:
    def test_socket_absent_named_in_timeout(self, tmp_path):
        client = AnnotationClient(tmp_path / "nobody-home.sock")
        with pytest.raises(TimeoutError, match="no daemon listening"):
            client.wait_until_ready(timeout=0.2)

    def test_poll_intervals_back_off_exponentially(self, tmp_path, monkeypatch):
        import time as time_module

        sleeps: list[float] = []
        real_sleep = time_module.sleep
        monkeypatch.setattr(time_module, "sleep", lambda s: (sleeps.append(s), real_sleep(min(s, 0.01)))[1])
        client = AnnotationClient(tmp_path / "nobody-home.sock")
        with pytest.raises(TimeoutError):
            client.wait_until_ready(timeout=0.5, poll_interval=0.01, max_poll_interval=0.08)
        growing = [s for s in sleeps if s > 0]
        assert len(growing) >= 3
        assert growing[1] > growing[0]  # backoff actually doubles
        assert max(growing) <= 0.08 + 1e-9  # and is capped


class TestShutdownRaces:
    def test_requests_racing_shutdown_get_definitive_answers(self, model_dir):
        """Every request concurrent with shutdown() either succeeds or fails
        with a definitive 'stopping'-style error — no client ever hangs."""
        with _running_server(model_dir) as served:
            outcomes: list = [None] * 8

            def annotate(position: int) -> None:
                try:
                    outcomes[position] = served.client.annotate_sources({f"f{position}.py": FILE_A})
                except Exception as error:  # noqa: BLE001 - recording every outcome
                    outcomes[position] = error

            threads = [threading.Thread(target=annotate, args=(i,)) for i in range(8)]
            for thread in threads[:4]:
                thread.start()
            served.server.shutdown()
            for thread in threads[4:]:
                thread.start()
            for thread in threads:
                thread.join(timeout=30.0)
                assert not thread.is_alive(), "a request hung across shutdown"
            for outcome in outcomes:
                assert outcome is not None
                if isinstance(outcome, Exception):
                    assert isinstance(outcome, (ServeError, ProtocolError, OSError)), outcome
                    if isinstance(outcome, ServeError):
                        assert "stopping" in str(outcome) or "crashed" in str(outcome)

    def test_stale_socket_then_live_refusal_on_same_path(self, model_dir):
        """One socket path, both stories: a stale file is reclaimed by the
        first daemon, then a second daemon on the same path is refused."""
        workdir = tempfile.mkdtemp(prefix="typilus-serve-")
        socket_path = os.path.join(workdir, "daemon.sock")
        try:
            leftover = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            leftover.bind(socket_path)
            leftover.close()  # bound but never listening: a crash leftover
            first = AnnotationServer(TypilusPipeline.load(model_dir), socket_path).start()
            try:
                assert AnnotationClient(socket_path).wait_until_ready(timeout=10.0)["ok"]
                second = AnnotationServer(TypilusPipeline.load(model_dir), socket_path)
                with pytest.raises(RuntimeError, match="already serving"):
                    second.start()
                # the refusal must not have evicted the live daemon
                assert AnnotationClient(socket_path).ping()["ok"]
            finally:
                first.close()
        finally:
            shutil.rmtree(workdir, ignore_errors=True)


class TestServeCLI:
    def test_ping_and_client_mode_annotate(self, served, tmp_path, capsys):
        from repro.cli import main

        assert main(["serve", "--socket", served.socket_path, "--ping"]) == 0
        assert "daemon ready" in capsys.readouterr().out

        project = tmp_path / "project"
        project.mkdir()
        (project / "a.py").write_text(FILE_A, encoding="utf-8")
        report_path = tmp_path / "report.json"
        code = main(
            [
                "annotate",
                str(project),
                "--server",
                served.socket_path,
                "--report-json",
                str(report_path),
            ]
        )
        assert code == 0
        payload = json.loads(report_path.read_text(encoding="utf-8"))
        assert [entry["filename"] for entry in payload["files"]] == ["a.py"]
        direct = ProjectAnnotator(
            served.pipeline, AnnotatorConfig(use_type_checker=False)
        ).annotate_sources({"a.py": FILE_A})
        from repro.engine import suggestion_to_payload

        assert payload["files"][0]["suggestions"] == [
            json.loads(json.dumps(suggestion_to_payload(s))) for s in direct.files[0].suggestions
        ]

    def test_client_mode_rejects_daemon_fixed_flags(self, served, tmp_path):
        from repro.cli import main

        project = tmp_path / "project"
        project.mkdir()
        (project / "a.py").write_text(FILE_A, encoding="utf-8")
        for flags in (["--confidence", "0.5"], ["--no-type-checker"], ["--jobs", "2"]):
            with pytest.raises(SystemExit, match="--server"):
                main(["annotate", str(project), "--server", served.socket_path, *flags])

    def test_cli_shutdown_stops_daemon(self, model_dir, capsys):
        from repro.cli import main

        with _running_server(model_dir) as served:
            assert main(["serve", "--socket", served.socket_path, "--shutdown"]) == 0
            assert "stopping" in capsys.readouterr().out
            served.server.close()
            assert not os.path.exists(served.socket_path)
