"""The fleet tier: worker pool dispatch, broadcasts, crashes and TCP."""

from __future__ import annotations

import json
import os
import shutil
import signal
import socket
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.core import TypilusPipeline
from repro.engine import AnnotatorConfig
from repro.serve import (
    AnnotationClient,
    AnnotationServer,
    FaultInjector,
    ServeConfig,
    ServeError,
    WorkerPool,
    format_address,
    parse_address,
    recv_frame,
    send_frame,
)

FILE_A = "def scale_amount(amount, factor):\n    return amount * factor\n"
FILE_B = (
    "def count_entries(entries):\n"
    "    return len(entries)\n"
    "\n"
    "def join_names(names):\n"
    "    return ','.join(names)\n"
)
ADAPT_EXAMPLE = (
    "def handle(event: FleetEventKind) -> FleetEventKind:\n"
    "    return event\n"
)


@pytest.fixture(scope="module")
def raw_model_dir(trained_pipeline, tmp_path_factory):
    """A saved raw-layout model — the memory-mapped serving layout."""
    path = tmp_path_factory.mktemp("fleet-model") / "model"
    trained_pipeline.save(path, typespace_layout="raw")
    return path


@contextmanager
def _running_fleet(model_dir, num_workers=2, fault_injector=None, serve_config=None, tcp=True):
    workdir = tempfile.mkdtemp(prefix="typilus-fleet-")
    socket_path = os.path.join(workdir, "daemon.sock")
    pool = WorkerPool(
        model_dir,
        num_workers,
        annotator_config=AnnotatorConfig(use_type_checker=False),
        fault_injector=fault_injector,
    )
    server = AnnotationServer(
        None,
        socket_path,
        serve_config=serve_config or ServeConfig(batch_window_seconds=0.01),
        tcp_address="127.0.0.1:0" if tcp else None,
        worker_pool=pool,
    ).start()
    client = AnnotationClient(socket_path)
    client.wait_until_ready(timeout=60.0)
    try:
        yield SimpleNamespace(
            server=server, client=client, pool=pool, socket_path=socket_path
        )
    finally:
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)


@pytest.fixture(scope="module")
def fleet(raw_model_dir):
    """One shared 2-worker fleet for the non-destructive tests."""
    with _running_fleet(raw_model_dir) as handle:
        yield handle


def _raw_response(address, payload):
    """One request over a raw socket, returning the decoded response frame."""
    kind, target = parse_address(address)
    family = socket.AF_INET if kind == "tcp" else socket.AF_UNIX
    with socket.socket(family, socket.SOCK_STREAM) as connection:
        connection.settimeout(60.0)
        connection.connect(target)
        send_frame(connection, payload)
        return recv_frame(connection)


class TestParseAddress:
    def test_unix_paths_stay_unix(self, tmp_path):
        assert parse_address(tmp_path / "d.sock") == ("unix", str(tmp_path / "d.sock"))
        assert parse_address("/tmp/with:colon/d.sock") == ("unix", "/tmp/with:colon/d.sock")
        assert parse_address("plain.sock") == ("unix", "plain.sock")

    def test_host_port_forms_are_tcp(self):
        assert parse_address("127.0.0.1:8155") == ("tcp", ("127.0.0.1", 8155))
        assert parse_address("tcp://example:80") == ("tcp", ("example", 80))
        assert parse_address(("localhost", 9)) == ("tcp", ("localhost", 9))

    def test_explicit_schemes(self):
        assert parse_address("unix:///tmp/d.sock") == ("unix", "/tmp/d.sock")
        with pytest.raises(ValueError):
            parse_address("tcp://noport")

    def test_format_address_round_trip(self):
        assert format_address("127.0.0.1:9001") == "tcp://127.0.0.1:9001"
        assert format_address("/tmp/d.sock") == "unix:///tmp/d.sock"


class TestFleetParity:
    def test_fleet_matches_single_process_daemon_byte_for_byte(self, raw_model_dir, fleet):
        """Acceptance: the fleet answers exactly what one process answers."""
        sources = {"a.py": FILE_A, "b.py": FILE_B}
        workdir = tempfile.mkdtemp(prefix="typilus-single-")
        single_socket = os.path.join(workdir, "single.sock")
        single = AnnotationServer(
            TypilusPipeline.load(raw_model_dir),
            single_socket,
            annotator_config=AnnotatorConfig(use_type_checker=False),
            serve_config=ServeConfig(batch_window_seconds=0.01),
        ).start()
        try:
            AnnotationClient(single_socket).wait_until_ready(timeout=30.0)
            request = {"op": "annotate", "sources": sources}
            fleet_reply = _raw_response(fleet.socket_path, request)
            single_reply = _raw_response(single_socket, request)
            canonical = lambda reply: json.dumps(reply, sort_keys=True).encode()  # noqa: E731
            assert canonical(fleet_reply) == canonical(single_reply)
        finally:
            single.close()
            shutil.rmtree(workdir, ignore_errors=True)

    def test_tcp_and_unix_transports_answer_identically(self, fleet):
        request = {"op": "annotate", "sources": {"a.py": FILE_A}}
        over_unix = _raw_response(fleet.socket_path, request)
        over_tcp = _raw_response(("127.0.0.1", fleet.server.tcp_port), request)
        assert over_unix == over_tcp

    def test_client_accepts_host_port_string(self, fleet):
        client = AnnotationClient(f"127.0.0.1:{fleet.server.tcp_port}")
        report = client.annotate_sources({"a.py": FILE_A})
        assert report.num_files == 1


class TestFleetBroadcasts:
    def test_adapt_broadcasts_to_every_worker(self, fleet):
        before = fleet.client.ping()["markers"]
        response = fleet.client.adapt("FleetEventKind", {"example.py": ADAPT_EXAMPLE})
        assert response["added_markers"] >= 1
        assert response["markers"] == before + response["added_markers"]
        assert fleet.client.ping()["markers"] == response["markers"]
        # Every worker reports the same grown map — no mixed type maps.
        stats = fleet.client.stats()
        worker_markers = {row["markers"] for row in stats["workers"]}
        assert worker_markers == {response["markers"]}
        assert all(row["adapts"] >= 1 for row in stats["workers"])
        # And the fleet keeps answering from the grown space.
        assert fleet.client.annotate_sources({"a.py": FILE_A}).num_files == 1

    def test_stats_aggregate_per_worker_counters(self, fleet):
        fleet.client.annotate_sources({"a.py": FILE_A})
        stats = fleet.client.stats()
        assert stats["worker_restarts"] == fleet.pool.restarts_total()
        assert [row["id"] for row in stats["workers"]] == [0, 1]
        for row in stats["workers"]:
            assert row["alive"] is True
            assert row["mmap"] is True  # raw layout ⇒ every worker memory-maps
            assert isinstance(row["pid"], int)
        assert sum(row["batches"] for row in stats["workers"]) >= 1

    def test_reload_moves_every_worker_to_the_new_model(self, raw_model_dir, tmp_path_factory):
        grown_dir = tmp_path_factory.mktemp("fleet-grown") / "model"
        grown = TypilusPipeline.load(raw_model_dir)
        added = grown.adapt_with_sources(
            "ReloadedKind",
            {"g.py": "def g(x: ReloadedKind) -> ReloadedKind:\n    return x\n"},
        )
        assert added >= 1
        grown.save(grown_dir, typespace_layout="raw")
        with _running_fleet(raw_model_dir, tcp=False) as fleet:
            before = fleet.client.ping()["markers"]
            response = fleet.client.reload(grown_dir)
            assert response["previous_markers"] == before
            assert response["markers"] == before + added
            stats = fleet.client.stats()
            assert {row["markers"] for row in stats["workers"]} == {response["markers"]}
            assert fleet.client.annotate_sources({"a.py": FILE_A}).num_files == 1

    def test_failed_reload_keeps_old_pipeline_serving(self, raw_model_dir):
        with _running_fleet(raw_model_dir, tcp=False) as fleet:
            before = fleet.client.ping()["markers"]
            with pytest.raises(ServeError) as excinfo:
                fleet.client.reload(str(Path(tempfile.gettempdir()) / "no-such-model-dir"))
            assert excinfo.value.kind == "reload"
            info = fleet.client.ping()
            assert info["state"] == "ready"
            assert info["markers"] == before
            assert fleet.client.annotate_sources({"a.py": FILE_A}).num_files == 1
            assert fleet.client.stats()["failed_reloads"] == 1


class TestWorkerCrashes:
    def test_injected_worker_crash_fails_batch_fast_and_restarts(self, raw_model_dir):
        faults = FaultInjector()
        with _running_fleet(raw_model_dir, fault_injector=faults) as fleet:
            faults.arm("worker", error="chaos: worker dies mid-dispatch")
            with pytest.raises(ServeError) as excinfo:
                fleet.client.annotate_sources({"a.py": FILE_A})
            assert excinfo.value.kind == "crashed"  # failed fast, never bisected
            # The pool replaced the victim and the fleet keeps serving.
            assert fleet.client.annotate_sources({"a.py": FILE_A}).num_files == 1
            stats = fleet.client.stats()
            assert stats["worker_restarts"] >= 1
            assert all(row["alive"] for row in stats["workers"])
            assert stats["poison_requests"] == 0

    def test_externally_killed_worker_is_replaced(self, raw_model_dir):
        with _running_fleet(raw_model_dir, num_workers=2, tcp=False) as fleet:
            victim_pid = fleet.client.stats()["workers"][0]["pid"]
            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                try:
                    fleet.client.annotate_sources({"a.py": FILE_A})
                except ServeError as error:
                    assert error.kind == "crashed"
                if fleet.client.stats()["worker_restarts"] >= 1:
                    break
            stats = fleet.client.stats()
            assert stats["worker_restarts"] >= 1
            assert all(row["alive"] for row in stats["workers"])
            assert {row["pid"] for row in stats["workers"]} != {victim_pid}
            assert fleet.client.annotate_sources({"a.py": FILE_A}).num_files == 1

    def test_adapt_survives_worker_replacement_via_log_replay(self, raw_model_dir):
        with _running_fleet(raw_model_dir, num_workers=2, tcp=False) as fleet:
            response = fleet.client.adapt("FleetEventKind", {"example.py": ADAPT_EXAMPLE})
            assert response["added_markers"] >= 1
            victim_pid = fleet.client.stats()["workers"][0]["pid"]
            os.kill(victim_pid, signal.SIGKILL)
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                try:
                    fleet.client.annotate_sources({"a.py": FILE_A})
                except ServeError:
                    pass
                if fleet.client.stats()["worker_restarts"] >= 1:
                    break
            # The respawned worker replayed the adapt log: the fleet still
            # agrees on the grown map.
            stats = fleet.client.stats()
            assert {row["markers"] for row in stats["workers"]} == {response["markers"]}


class TestFleetConstruction:
    def test_server_requires_exactly_one_backend(self, raw_model_dir, trained_pipeline, tmp_path):
        pool = WorkerPool(raw_model_dir, 1)
        with pytest.raises(ValueError, match="exactly one"):
            AnnotationServer(trained_pipeline, tmp_path / "d.sock", worker_pool=pool)
        with pytest.raises(ValueError, match="exactly one"):
            AnnotationServer(None, tmp_path / "d.sock")

    def test_server_requires_an_endpoint(self, trained_pipeline):
        with pytest.raises(ValueError, match="socket_path"):
            AnnotationServer(trained_pipeline)

    def test_pool_rejects_zero_workers(self, raw_model_dir):
        with pytest.raises(ValueError, match="at least one"):
            WorkerPool(raw_model_dir, 0)
