"""Tests for layers, recurrent cells, the char CNN, optimisers and serialization."""

import numpy as np
import pytest

from repro.nn.conv import CharCNNEncoder, Conv1D
from repro.nn.layers import MLP, Dropout, Embedding, LayerNorm, Linear, Module, Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.rnn import BiGRU, GRU, GRUCell
from repro.nn.serialization import load, load_state_dict, save, state_dict
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


@pytest.fixture()
def rng():
    return SeededRNG(0)


class TestModule:
    def test_parameters_found_in_nested_structures(self, rng):
        class Composite(Module):
            def __init__(self):
                super().__init__()
                self.linear = Linear(3, 4, rng.fork(1))
                self.stack = [Linear(4, 4, rng.fork(2)), Linear(4, 2, rng.fork(3))]
                self.by_name = {"head": Linear(2, 1, rng.fork(4))}
                self.standalone = Tensor(np.zeros(5), requires_grad=True)

        module = Composite()
        parameters = list(module.parameters())
        # 4 Linears with weight+bias plus the standalone tensor.
        assert len(parameters) == 9
        names = dict(module.named_parameters())
        assert "linear.weight" in names and "stack.0.weight" in names and "by_name.head.bias" in names

    def test_train_eval_propagates(self, rng):
        outer = Sequential([Dropout(0.5, rng), Linear(2, 2, rng)])
        outer.eval()
        assert not outer.stages[0].training
        outer.train()
        assert outer.stages[0].training

    def test_zero_grad_and_num_parameters(self, rng):
        linear = Linear(3, 2, rng)
        (linear(Tensor(np.ones((1, 3)))) ** 2).sum().backward()
        assert linear.weight.grad is not None
        linear.zero_grad()
        assert linear.weight.grad is None
        assert linear.num_parameters() == 3 * 2 + 2


class TestLinearEmbeddingLayerNorm:
    def test_linear_shapes_and_bias(self, rng):
        linear = Linear(4, 3, rng)
        out = linear(Tensor(np.zeros((5, 4))))
        assert out.shape == (5, 3)
        assert np.allclose(out.data, 0.0)  # zero input -> bias (zeros)

    def test_linear_without_bias(self, rng):
        linear = Linear(4, 3, rng, bias=False)
        assert linear.bias is None
        assert len(list(linear.parameters())) == 1

    def test_embedding_lookup_and_gradient(self, rng):
        embedding = Embedding(10, 4, rng)
        out = embedding(np.array([1, 1, 3]))
        assert out.shape == (3, 4)
        out.sum().backward()
        assert np.allclose(embedding.weight.grad[1], 2.0 * np.ones(4) * 0 + embedding.weight.grad[1])
        assert embedding.weight.grad[1].sum() != 0 and embedding.weight.grad[0].sum() == 0

    def test_embedding_out_of_range_raises(self, rng):
        embedding = Embedding(5, 2, rng)
        with pytest.raises(IndexError):
            embedding(np.array([7]))

    def test_layernorm_normalises_last_axis(self):
        layer_norm = LayerNorm(6)
        out = layer_norm(Tensor(np.random.randn(4, 6) * 10 + 3)).data
        assert np.allclose(out.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_mlp_forward_shape(self, rng):
        mlp = MLP(5, 8, 3, rng)
        assert mlp(Tensor(np.random.randn(7, 5))).shape == (7, 3)


class TestRecurrentAndConv:
    def test_gru_cell_shapes_and_state_dependence(self, rng):
        cell = GRUCell(3, 5, rng)
        x = Tensor(np.random.randn(2, 3))
        h0 = cell.initial_state(2)
        h1 = cell(x, h0)
        assert h1.shape == (2, 5)
        h2 = cell(x, h1)
        assert not np.allclose(h1.data, h2.data)

    def test_gru_sequence_and_reverse_differ(self, rng):
        sequence = Tensor(np.random.randn(6, 2, 3))
        forward = GRU(3, 4, rng.fork(1))(sequence)
        backward = GRU(3, 4, rng.fork(1), reverse=True)(sequence)
        assert forward.shape == (6, 2, 4)
        assert not np.allclose(forward.data, backward.data)

    def test_bigru_output_dim_is_double(self, rng):
        bigru = BiGRU(3, 4, rng)
        out = bigru(Tensor(np.random.randn(5, 2, 3)))
        assert out.shape == (5, 2, 8)
        out.sum().backward()  # gradients flow end to end

    def test_conv1d_output_positions(self, rng):
        conv = Conv1D(4, 6, kernel_size=3, rng=rng)
        out = conv(Tensor(np.random.randn(2, 10, 4)))
        assert out.shape == (2, 8, 6)

    def test_conv1d_too_short_sequence_raises(self, rng):
        conv = Conv1D(4, 6, kernel_size=5, rng=rng)
        with pytest.raises(ValueError):
            conv(Tensor(np.random.randn(2, 3, 4)))

    def test_char_cnn_encoder_shape_and_gradients(self, rng):
        encoder = CharCNNEncoder(40, 8, 12, rng)
        out = encoder(np.random.randint(0, 40, size=(5, 16)))
        assert out.shape == (5, 12)
        out.sum().backward()
        assert any(p.grad is not None for p in encoder.parameters())


class TestOptimisers:
    def _regression_data(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(64, 3))
        y = X @ np.array([[1.0], [-2.0], [0.5]]) + 0.3
        return X, y

    def test_adam_converges_on_linear_regression(self):
        X, y = self._regression_data()
        model = Linear(3, 1, SeededRNG(1))
        optimiser = Adam(model.parameters(), lr=0.05)
        for _ in range(200):
            optimiser.zero_grad()
            loss = ((model(Tensor(X)) - Tensor(y)) ** 2).mean()
            loss.backward()
            optimiser.step()
        assert float(loss.data) < 1e-3

    def test_sgd_with_momentum_decreases_loss(self):
        X, y = self._regression_data()
        model = Linear(3, 1, SeededRNG(2))
        optimiser = SGD(model.parameters(), lr=0.01, momentum=0.9)
        first_loss = None
        for step in range(100):
            optimiser.zero_grad()
            loss = ((model(Tensor(X)) - Tensor(y)) ** 2).mean()
            loss.backward()
            optimiser.step()
            if step == 0:
                first_loss = float(loss.data)
        assert float(loss.data) < first_loss

    def test_gradient_clipping_bounds_norm(self):
        parameter = Tensor(np.zeros(4), requires_grad=True)
        parameter.grad = np.full(4, 100.0)
        optimiser = SGD([parameter], lr=0.1)
        norm_before = optimiser.clip_gradients(1.0)
        assert norm_before > 1.0
        assert np.sqrt((parameter.grad**2).sum()) <= 1.0 + 1e-9

    def test_optimizer_requires_parameters(self):
        with pytest.raises(ValueError):
            Adam([])

    def test_weight_decay_shrinks_weights(self):
        parameter = Tensor(np.ones(3), requires_grad=True)
        parameter.grad = np.zeros(3)
        Adam([parameter], lr=0.1, weight_decay=1.0).step()
        assert (parameter.data < 1.0).all()


class TestSerialization:
    def test_state_dict_roundtrip(self, rng, tmp_path):
        model = MLP(4, 6, 2, rng)
        reference = model(Tensor(np.ones((1, 4)))).data.copy()
        path = tmp_path / "model.npz"
        save(model, path)

        fresh = MLP(4, 6, 2, SeededRNG(99))
        assert not np.allclose(fresh(Tensor(np.ones((1, 4)))).data, reference)
        load(fresh, path)
        assert np.allclose(fresh(Tensor(np.ones((1, 4)))).data, reference)

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        model = Linear(3, 2, rng)
        bad_state = {name: np.zeros((1, 1)) for name, _ in model.named_parameters()}
        with pytest.raises(ValueError):
            load_state_dict(model, bad_state)

    def test_strict_missing_key_raises(self, rng):
        model = Linear(3, 2, rng)
        with pytest.raises(KeyError):
            load_state_dict(model, {}, strict=True)
        missing = load_state_dict(model, {}, strict=False)
        assert set(missing) == {"weight", "bias"}

    def test_state_dict_contains_copies(self, rng):
        model = Linear(2, 2, rng)
        snapshot = state_dict(model)
        model.weight.data += 100.0
        assert not np.allclose(snapshot["weight"], model.weight.data)
