"""Out-of-core training: raw shards, mmap loading, streaming and workers.

The contract under test is bit-replay: every execution mode — resident,
bounded-window streaming, data-parallel workers, memory-mapped shards, and
their combinations — must reproduce the serial in-memory float64 loss
trajectory and final parameters byte-for-byte.
"""

import numpy as np
import pytest

from repro.core import EncoderConfig, LossKind, Trainer, TrainingConfig, build_encoder
from repro.corpus import DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.corpus.serialize import PayloadError, graph_to_payload
from repro.utils.memory import peak_rss_bytes


@pytest.fixture(scope="module")
def dataset() -> TypeAnnotationDataset:
    return TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=12, seed=33, num_user_classes=8),
        DatasetConfig(rarity_threshold=8, seed=5),
    )


@pytest.fixture(scope="module")
def raw_dir(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("raw_dataset")
    dataset.save(path, shard_size=4, shard_format="raw")
    return path


def _train(dataset, *, epochs=3, workers=1, prefetch=None, dtype="float64"):
    encoder = build_encoder(dataset, EncoderConfig(family="graph", hidden_dim=16, gnn_steps=2, seed=9))
    trainer = Trainer(
        encoder,
        dataset,
        loss_kind=LossKind.TYPILUS,
        config=TrainingConfig(
            epochs=epochs,
            graphs_per_batch=4,
            seed=9,
            dtype=dtype,
            workers=workers,
            prefetch_batches=prefetch,
        ),
    )
    result = trainer.train()
    return [stats.mean_loss for stats in result.history], trainer


def _parameters(trainer):
    return [np.array(parameter.data) for parameter in trainer.encoder.parameters()]


class TestStreaming:
    def test_bounded_windows_replay_resident_losses_exactly(self, dataset):
        resident_losses, resident = _train(dataset)
        for window in (1, 2, 10**9):
            losses, trainer = _train(dataset, prefetch=window)
            assert losses == resident_losses, f"window={window} diverged"
            for streamed, baseline in zip(_parameters(trainer), _parameters(resident)):
                assert np.array_equal(streamed, baseline)

    def test_streaming_plan_is_lazy(self, dataset):
        _, trainer = _train(dataset, epochs=1, prefetch=1)
        assert trainer._plan is not None and trainer._plan.lazy
        _, resident = _train(dataset, epochs=1)
        assert not resident._plan.lazy

    def test_invalid_prefetch_rejected(self, dataset):
        encoder = build_encoder(dataset, EncoderConfig(family="graph", hidden_dim=16, seed=9))
        with pytest.raises(ValueError, match="prefetch_batches"):
            Trainer(encoder, dataset, config=TrainingConfig(prefetch_batches=0))


class TestWorkers:
    def test_workers_replay_serial_losses_and_parameters_exactly(self, dataset):
        serial_losses, serial = _train(dataset)
        losses, trainer = _train(dataset, workers=2)
        assert losses == serial_losses
        for parallel, baseline in zip(_parameters(trainer), _parameters(serial)):
            assert np.array_equal(parallel, baseline)

    def test_workers_with_streaming_window_replay_serial(self, dataset):
        serial_losses, _ = _train(dataset)
        losses, _ = _train(dataset, workers=2, prefetch=1)
        assert losses == serial_losses

    def test_invalid_workers_rejected(self, dataset):
        encoder = build_encoder(dataset, EncoderConfig(family="graph", hidden_dim=16, seed=9))
        with pytest.raises(ValueError, match="workers"):
            Trainer(encoder, dataset, config=TrainingConfig(workers=0))


class TestRawShards:
    def test_eager_raw_round_trip_matches_original(self, dataset, raw_dir):
        loaded = TypeAnnotationDataset.load(raw_dir)
        assert loaded.summary() == dataset.summary()
        for name in ("train", "valid", "test"):
            original, restored = dataset.splits[name], loaded.splits[name]
            assert restored.samples == original.samples
            assert [graph_to_payload(g) for g in restored.graphs] == [
                graph_to_payload(g) for g in original.graphs
            ]

    def test_mmap_load_matches_eager_load(self, dataset, raw_dir):
        mapped = TypeAnnotationDataset.load(raw_dir, mmap=True)
        assert mapped.summary() == dataset.summary()
        for name in ("train", "valid", "test"):
            original, restored = dataset.splits[name], mapped.splits[name]
            assert len(restored.graphs) == len(original.graphs)
            assert [graph_to_payload(g) for g in restored.graphs] == [
                graph_to_payload(g) for g in original.graphs
            ]

    def test_mmap_split_graphs_are_lazy_views(self, raw_dir):
        from repro.corpus.serialize import LazyView

        mapped = TypeAnnotationDataset.load(raw_dir, mmap=True)
        graphs = mapped.train.graphs
        assert isinstance(graphs, LazyView)
        window = graphs[1:3]
        assert isinstance(window, LazyView) and len(window) == 2
        assert graphs[-1].filename == graphs[len(graphs) - 1].filename
        with pytest.raises(IndexError):
            graphs[len(graphs)]

    def test_mmap_features_attached_with_matching_fingerprint(self, dataset, raw_dir):
        dataset.featurize_nodes()
        mapped = TypeAnnotationDataset.load(raw_dir, mmap=True)
        assert mapped.train.node_features is not None
        assert mapped.train.features_fingerprint == dataset.train.features_fingerprint
        original = dataset.train.node_features[0]
        restored = mapped.train.node_features[0]
        assert np.array_equal(np.asarray(restored.ids), np.asarray(original.ids))
        assert np.array_equal(np.asarray(restored.row_splits), np.asarray(original.row_splits))

    def test_training_from_mmap_replays_in_memory_exactly(self, dataset, raw_dir):
        baseline_losses, _ = _train(dataset)
        mapped = TypeAnnotationDataset.load(raw_dir, mmap=True)
        for kwargs in ({}, {"prefetch": 1}, {"workers": 2, "prefetch": 1}):
            losses, _ = _train(mapped, **kwargs)
            assert losses == baseline_losses, f"mmap run {kwargs} diverged"

    def test_mmap_requires_raw_shards(self, dataset, tmp_path):
        dataset.save(tmp_path / "npz")
        with pytest.raises(ValueError, match="raw shard"):
            TypeAnnotationDataset.load(tmp_path / "npz", mmap=True)

    def test_tampered_raw_column_rejected_on_eager_load(self, dataset, tmp_path):
        target = tmp_path / "tampered"
        dataset.save(target, shard_size=1000, shard_format="raw")
        (shard,) = sorted(target.glob("graphs-*.raw"))
        nodes_path = shard / "nodes.npy"
        nodes = np.load(nodes_path)
        np.save(nodes_path, nodes + 1)
        with pytest.raises(PayloadError, match="fingerprint"):
            TypeAnnotationDataset.load(target)

    def test_missing_raw_meta_rejected(self, dataset, tmp_path):
        target = tmp_path / "no_meta"
        dataset.save(target, shard_size=1000, shard_format="raw")
        (shard,) = sorted(target.glob("graphs-*.raw"))
        (shard / "meta.json").unlink()
        with pytest.raises(PayloadError):
            TypeAnnotationDataset.load(target)


class TestDecodeCacheByteBound:
    """The LazyGraphStore decode cache is bounded by bytes, not entry count."""

    @staticmethod
    def _store(raw_dir, **kwargs):
        import json

        from repro.corpus import serialize

        manifest = json.loads((raw_dir / "dataset.json").read_text(encoding="utf-8"))
        shards = [serialize.RawGraphShard(raw_dir / name) for name in manifest["graph_shards"]]
        return serialize.LazyGraphStore(shards, **kwargs)

    def test_flatgraph_nbytes_counts_decoded_payload(self, raw_dir):
        store = self._store(raw_dir)
        flat = store.graph(0).flat
        assert flat is not None
        assert flat.nbytes > len(flat.source) > 0

    def test_cached_bytes_never_exceed_budget_and_evictions_occur(self, raw_dir):
        unbounded = self._store(raw_dir)
        costs = [unbounded._cost(unbounded.graph(i)) for i in range(len(unbounded))]
        # A budget that holds roughly two graphs forces evictions on a full sweep.
        budget = max(costs) * 2
        store = self._store(raw_dir, cache_bytes=budget)
        for index in range(len(store)):
            store.graph(index)
            assert store.cached_bytes <= store.cache_bytes
        assert store.evictions > 0
        assert len(store._cache) < len(store)

    def test_lru_keeps_recently_touched_graphs(self, raw_dir):
        unbounded = self._store(raw_dir)
        costs = [unbounded._cost(unbounded.graph(i)) for i in range(len(unbounded))]
        store = self._store(raw_dir, cache_bytes=costs[0] + costs[1] + costs[2])
        store.graph(0)
        store.graph(1)
        store.graph(0)  # refresh 0 so index 1 is now the eviction candidate
        for index in range(2, len(store)):
            store.graph(index)
            if store.evictions > 0:
                break
        # Index 1 sits at the LRU front after 0's refresh, so the first
        # eviction always claims it; 0 survives unless the insert forced
        # several evictions at once.
        assert store.evictions > 0
        assert 1 not in store._cache
        if store.evictions == 1:
            assert 0 in store._cache

    def test_over_budget_graph_returned_uncached(self, raw_dir):
        store = self._store(raw_dir, cache_bytes=1)
        graph = store.graph(0)
        assert graph.flat is not None
        assert store.cached_bytes == 0
        assert len(store._cache) == 0
        assert store.evictions == 0  # bypass is not an eviction

    def test_identical_graphs_regardless_of_budget(self, raw_dir):
        bounded = self._store(raw_dir, cache_bytes=0)
        unbounded = self._store(raw_dir)
        for index in range(len(bounded)):
            assert graph_to_payload(bounded.graph(index)) == graph_to_payload(unbounded.graph(index))

    def test_negative_budget_rejected(self, raw_dir):
        with pytest.raises(ValueError, match="cache_bytes"):
            self._store(raw_dir, cache_bytes=-1)


class TestFeatureFingerprintValidation:
    def test_stale_fingerprint_skips_decoding_entirely(self, dataset, tmp_path, monkeypatch):
        """The vocabulary fingerprint gates decoding: with a stale header the
        id arrays must never be inflated (features_from_arrays not called)."""
        from repro.corpus import serialize

        target = tmp_path / "stale"
        dataset.save(target)
        features_path = target / "features.npz"
        with np.load(features_path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["fingerprint"] = np.array(["not-the-vocabulary"])
        np.savez(features_path, **arrays)

        def explode(archive):  # pragma: no cover - the assertion is that it never runs
            raise AssertionError("features_from_arrays called despite stale fingerprint")

        monkeypatch.setattr(serialize, "features_from_arrays", explode)
        loaded = TypeAnnotationDataset.load(target)
        assert loaded.train.node_features is None

    def test_matching_fingerprint_still_adopts_features(self, dataset, tmp_path):
        target = tmp_path / "fresh"
        dataset.save(target)
        loaded = TypeAnnotationDataset.load(target)
        assert loaded.train.node_features is not None
        assert loaded.train.features_fingerprint == dataset.train.features_fingerprint

    def test_stale_raw_features_skipped(self, dataset, tmp_path):
        import json

        target = tmp_path / "stale_raw"
        dataset.save(target, shard_format="raw")
        meta_path = target / "features.raw" / "meta.json"
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        meta["fingerprint"] = "not-the-vocabulary"
        meta_path.write_text(json.dumps(meta), encoding="utf-8")
        loaded = TypeAnnotationDataset.load(target, mmap=True)
        assert loaded.train.node_features is None


class TestPeakRss:
    def test_peak_rss_helper_reports_bytes(self):
        peak = peak_rss_bytes()
        if peak is None:
            pytest.skip("getrusage unavailable on this platform")
        assert peak > 1024 * 1024  # a running interpreter holds megabytes

    def test_epoch_stats_carry_peak_rss(self, dataset):
        encoder = build_encoder(dataset, EncoderConfig(family="graph", hidden_dim=16, seed=9))
        trainer = Trainer(encoder, dataset, config=TrainingConfig(epochs=1, graphs_per_batch=4, seed=9))
        result = trainer.train()
        recorded = result.history[-1].peak_rss_bytes
        if peak_rss_bytes() is None:
            assert recorded is None
        else:
            assert recorded and recorded > 0
