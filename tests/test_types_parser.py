"""Tests for type-annotation parsing and normalisation."""

import pytest
from hypothesis import given, strategies as st

from repro.types import (
    ANY,
    NONE,
    TypeExpr,
    TypeParseError,
    canonical_string,
    canonicalise,
    erase_parameters,
    flatten_unions,
    is_informative,
    parse_type,
    rewrite_deep_parameters,
    try_parse_type,
)


class TestParser:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("int", "int"),
            ("str", "str"),
            ("List[int]", "List[int]"),
            ("list[int]", "List[int]"),
            ("typing.List[int]", "List[int]"),
            ("Dict[str, List[int]]", "Dict[str, List[int]]"),
            ("Optional[float]", "Optional[float]"),
            ("Union[int, str]", "Union[int, str]"),
            ("Tuple[int, ...]", "Tuple[int, ...]"),
            ("torch.Tensor", "torch.Tensor"),
            ("mx.nd.NDArray", "mx.nd.NDArray"),
            ("None", "None"),
            ("'Widget'", "Widget"),
            ('"Widget"', "Widget"),
            ("Callable[[int, str], bool]", "Callable[__arglist__[int, str], bool]"),
        ],
    )
    def test_parse_and_render(self, text, expected):
        assert str(parse_type(text)) == expected

    @pytest.mark.parametrize("bad", ["", "   ", "List[", "List[int]]", "[int]extra", "?!", "int,"])
    def test_malformed_annotations_raise(self, bad):
        with pytest.raises(TypeParseError):
            parse_type(bad)

    def test_try_parse_returns_none_on_failure(self):
        assert try_parse_type("List[") is None
        assert try_parse_type("int") == TypeExpr("int")

    def test_pep604_union_normalised(self):
        assert str(parse_type("int | str")) == "Union[int, str]"
        assert str(parse_type("int | None")) == "Optional[int]"
        assert str(parse_type("int | str | None")) == "Optional[Union[int, str]]"

    def test_nested_forward_reference(self):
        assert str(parse_type("List['Node']")) == "List[Node]"

    @given(st.recursive(
        st.sampled_from(["int", "str", "bool", "float", "bytes", "MyType"]),
        lambda children: st.builds(
            lambda base, args: f"{base}[{', '.join(args)}]",
            st.sampled_from(["List", "Set", "Dict", "Tuple", "Optional"]),
            st.lists(children, min_size=1, max_size=2),
        ),
        max_leaves=6,
    ))
    def test_property_roundtrip_is_stable(self, text):
        """str(parse(x)) is a fixpoint: parsing its own rendering is identity."""
        rendered = str(parse_type(text))
        assert str(parse_type(rendered)) == rendered


class TestTypeExpr:
    def test_depth(self):
        assert parse_type("int").depth() == 0
        assert parse_type("List[int]").depth() == 1
        assert parse_type("List[List[List[int]]]").depth() == 3

    def test_base_and_flags(self):
        expr = parse_type("Dict[str, int]")
        assert str(expr.base()) == "Dict"
        assert expr.is_parametric and not expr.is_any
        assert parse_type("Any").is_any
        assert parse_type("None").is_none
        assert parse_type("Optional[int]").is_optional
        assert parse_type("Union[int, str]").is_union

    def test_walk_and_mentioned_names(self):
        expr = parse_type("Dict[str, List[Widget]]")
        assert {"Dict", "str", "List", "Widget"} == expr.mentioned_names()
        assert len(list(expr.walk())) == 4

    def test_equality_and_hash(self):
        assert parse_type("List[int]") == parse_type("list[int]")
        assert hash(parse_type("List[int]")) == hash(parse_type("list[int]"))
        assert parse_type("List[int]") != parse_type("List[str]")


class TestNormalisation:
    def test_rewrite_deep_parameters(self):
        assert str(rewrite_deep_parameters(parse_type("List[List[List[int]]]"))) == "List[List[Any]]"
        assert str(rewrite_deep_parameters(parse_type("List[List[int]]"))) == "List[List[int]]"
        assert str(rewrite_deep_parameters(parse_type("List[int]"), max_depth=0)) == "Any"

    def test_erase_parameters(self):
        assert str(erase_parameters(parse_type("Dict[str, List[int]]"))) == "Dict"
        assert str(erase_parameters(parse_type("int"))) == "int"

    def test_flatten_unions_dedupes_and_sorts(self):
        assert str(flatten_unions(parse_type("Union[str, int, str]"))) == "Union[int, str]"
        assert str(flatten_unions(parse_type("Union[int, Union[str, int]]"))) == "Union[int, str]"
        assert str(flatten_unions(parse_type("Union[int]"))) == "int"
        assert str(flatten_unions(parse_type("Union[int, None]"))) == "Optional[int]"
        assert str(flatten_unions(parse_type("Optional[Optional[int]]"))) == "Optional[int]"

    def test_canonical_string(self):
        assert canonical_string("typing.Optional[int]") == "Optional[int]"
        assert canonical_string("not a type !!") is None
        assert canonical_string("List[List[List[int]]]", max_depth=2) == "List[List[Any]]"

    def test_canonicalise_idempotent(self):
        for text in ["Union[str, int, None]", "Optional[List[int]]", "Dict[str, Union[int, int]]"]:
            once = canonicalise(parse_type(text))
            twice = canonicalise(once)
            assert once == twice

    def test_is_informative(self):
        assert is_informative("int") and is_informative("List[str]")
        assert not is_informative("Any")
        assert not is_informative("None")
        assert not is_informative("garbage[[")

    def test_constants(self):
        assert ANY.is_any and NONE.is_none
