"""Tests for corpus synthesis, deduplication and dataset assembly."""

import ast

import pytest
from hypothesis import given, settings, strategies as st

from repro.checker import CheckerMode, check_source
from repro.corpus import (
    CorpusSynthesizer,
    DatasetConfig,
    Deduplicator,
    SynthesisConfig,
    TypeAnnotationDataset,
    deduplicate_sources,
    file_token_fingerprint,
    generate_corpus,
    jaccard_similarity,
)
from repro.graph import collect_annotations
from repro.graph.nodes import SymbolKind


class TestSynthesis:
    @pytest.fixture(scope="class")
    def files(self):
        return generate_corpus(SynthesisConfig(num_files=20, seed=3))

    def test_expected_number_of_files_with_duplicates(self, files):
        config = SynthesisConfig(num_files=20, seed=3)
        expected_duplicates = int(20 * config.duplicate_fraction)
        assert len(files) == 20 + expected_duplicates

    def test_every_file_parses(self, files):
        for entry in files:
            ast.parse(entry.source)

    def test_files_type_check_strictly(self, files):
        failures = [entry.filename for entry in files if not check_source(entry.source, CheckerMode.STRICT).ok]
        assert not failures, f"synthetic files with type errors: {failures}"

    def test_files_contain_annotations(self, files):
        total = sum(len(collect_annotations(entry.source)) for entry in files)
        assert total > 50

    def test_annotation_probability_zero_produces_no_annotations(self):
        files = generate_corpus(SynthesisConfig(num_files=4, seed=1, annotation_probability=0.0, duplicate_fraction=0.0))
        assert all(not collect_annotations(entry.source) for entry in files)

    def test_annotation_probability_one_annotates_everything_it_can(self):
        files = generate_corpus(SynthesisConfig(num_files=4, seed=1, annotation_probability=1.0, duplicate_fraction=0.0))
        assert all(collect_annotations(entry.source) for entry in files)

    def test_generation_is_deterministic(self):
        first = generate_corpus(SynthesisConfig(num_files=5, seed=9))
        second = generate_corpus(SynthesisConfig(num_files=5, seed=9))
        assert [f.source for f in first] == [f.source for f in second]

    def test_different_seeds_differ(self):
        first = generate_corpus(SynthesisConfig(num_files=5, seed=1))
        second = generate_corpus(SynthesisConfig(num_files=5, seed=2))
        assert [f.source for f in first] != [f.source for f in second]

    def test_duplicates_reference_their_original(self, files):
        duplicates = [entry for entry in files if entry.duplicate_of is not None]
        originals = {entry.filename for entry in files}
        assert duplicates
        assert all(entry.duplicate_of in originals for entry in duplicates)

    def test_class_hierarchy_edges_match_generated_classes(self):
        synthesizer = CorpusSynthesizer(SynthesisConfig(num_files=5, seed=4))
        class_names = {spec.name for spec in synthesizer.class_specs}
        for subclass, superclass in synthesizer.class_hierarchy_edges():
            assert subclass in class_names and superclass in class_names

    def test_type_distribution_is_fat_tailed(self):
        dataset = TypeAnnotationDataset.synthetic(
            SynthesisConfig(num_files=40, seed=3), DatasetConfig(rarity_threshold=10)
        )
        stats = dataset.registry.statistics()
        assert stats.top10_fraction > 0.5  # a few builtins dominate
        assert stats.rare_types > 0  # but a long tail of rare types exists
        assert stats.zipf_exponent > 0.5


class TestDeduplication:
    def test_exact_duplicates_removed(self):
        files = {"a.py": "x = 1\ny = 2\n", "b.py": "x = 1\ny = 2\n", "c.py": "completely = 'different'\n"}
        kept, report = deduplicate_sources(files)
        assert len(kept) == 2
        assert report.removed_files == 1
        assert report.kept_files == 2

    def test_near_duplicates_removed_with_loose_threshold(self):
        base = "def f(count):\n    total = count + 1\n    return total\n"
        variant = base + "\n# trailing comment\n"
        kept, report = deduplicate_sources({"a.py": base, "b.py": variant}, threshold=0.8)
        assert len(kept) == 1 and report.removed_files == 1

    def test_distinct_files_kept_with_strict_threshold(self):
        files = {
            "a.py": "def alpha(x):\n    return x + 1\n",
            "b.py": "def beta(items):\n    return len(items)\n",
        }
        kept, report = deduplicate_sources(files, threshold=0.95)
        assert len(kept) == 2 and report.removed_files == 0

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            Deduplicator(threshold=0.0)

    def test_fingerprint_ignores_comments_and_whitespace(self):
        a = file_token_fingerprint("x = 1  # comment\n")
        b = file_token_fingerprint("x = 1\n")
        assert jaccard_similarity(a, b) == 1.0

    def test_synthetic_duplicates_are_caught(self):
        files = {entry.filename: entry.source for entry in generate_corpus(SynthesisConfig(num_files=20, seed=3))}
        _, report = deduplicate_sources(files)
        assert report.removed_files >= int(20 * SynthesisConfig().duplicate_fraction)

    @settings(max_examples=25, deadline=None)
    @given(st.text(alphabet="abc ()=\n", max_size=80), st.text(alphabet="abc ()=\n", max_size=80))
    def test_property_jaccard_is_bounded_and_symmetric(self, left, right):
        a, b = file_token_fingerprint(left), file_token_fingerprint(right)
        similarity = jaccard_similarity(a, b)
        assert 0.0 <= similarity <= 1.0
        assert similarity == pytest.approx(jaccard_similarity(b, a))

    def test_property_self_similarity_is_one(self):
        fingerprint = file_token_fingerprint("def f(x):\n    return x\n")
        assert jaccard_similarity(fingerprint, fingerprint) == 1.0


def _cluster_payload(report):
    return sorted((cluster.kept, sorted(cluster.removed)) for cluster in report.clusters)


class TestMinHashCandidateGeneration:
    """The banded-MinHash path must reproduce the pairwise oracle exactly."""

    def _assert_strategies_agree(self, files, threshold=0.8):
        minhash_kept, minhash_report = Deduplicator(
            threshold=threshold, candidate_strategy="minhash"
        ).deduplicate(files)
        pairwise_kept, pairwise_report = Deduplicator(
            threshold=threshold, candidate_strategy="pairwise"
        ).deduplicate(files)
        assert sorted(minhash_kept) == sorted(pairwise_kept)
        assert minhash_report.removed_files == pairwise_report.removed_files
        assert _cluster_payload(minhash_report) == _cluster_payload(pairwise_report)
        return minhash_report

    def test_identical_clusters_on_synthetic_corpus(self):
        files = {
            entry.filename: entry.source
            for entry in generate_corpus(SynthesisConfig(num_files=40, seed=11))
        }
        report = self._assert_strategies_agree(files)
        assert report.removed_files > 0  # the corpus ships real duplicates

    def test_identical_clusters_across_thresholds(self):
        files = {
            entry.filename: entry.source
            for entry in generate_corpus(SynthesisConfig(num_files=24, seed=5))
        }
        for threshold in (0.5, 0.8, 0.95, 1.0):
            self._assert_strategies_agree(files, threshold=threshold)

    def test_identical_clusters_with_empty_and_tiny_files(self):
        files = {
            "empty_a.py": "",
            "empty_b.py": "# only a comment\n",
            "tiny.py": "x = 1\n",
            "tiny_copy.py": "x = 1\n",
            "other.py": "def unrelated(value):\n    return value * 2\n",
        }
        report = self._assert_strategies_agree(files)
        assert report.removed_files >= 2  # empties cluster together, tiny with its copy

    def test_repeated_token_heavy_files_cluster_like_the_oracle(self):
        """Multiset expansion regression: files dominated by one repeated
        identifier have high multiset but tiny set Jaccard — signatures must
        hash the multiset so such pairs still become candidates."""
        for trial in range(10):
            base = "x = x + x\n" * 40
            left = base + "\n".join(f"left_{trial}_{i} = 1" for i in range(6))
            right = base + "\n".join(f"right_{trial}_{i} = 1" for i in range(6))
            report = self._assert_strategies_agree({"a.py": left, "b.py": right})
            assert report.removed_files == 1  # the pair is a real near-duplicate

    def test_default_strategy_is_minhash(self):
        assert Deduplicator().candidate_strategy == "minhash"
        with pytest.raises(ValueError):
            Deduplicator(candidate_strategy="sorcery")

    def test_minhash_is_deterministic_across_runs(self):
        files = {
            entry.filename: entry.source
            for entry in generate_corpus(SynthesisConfig(num_files=16, seed=9))
        }
        first = Deduplicator().deduplicate(files)[1]
        second = Deduplicator().deduplicate(files)[1]
        assert _cluster_payload(first) == _cluster_payload(second)


class TestDatasetAssembly:
    @pytest.fixture(scope="class")
    def dataset(self):
        return TypeAnnotationDataset.synthetic(
            SynthesisConfig(num_files=24, seed=6), DatasetConfig(rarity_threshold=8, seed=6)
        )

    def test_split_fractions_roughly_70_10_20(self, dataset):
        total = dataset.train.num_graphs + dataset.valid.num_graphs + dataset.test.num_graphs
        assert dataset.train.num_graphs > dataset.test.num_graphs > 0
        assert total == len(dataset.sources)

    def test_splits_are_disjoint_by_file(self, dataset):
        train_files = {g.filename for g in dataset.train.graphs}
        valid_files = {g.filename for g in dataset.valid.graphs}
        test_files = {g.filename for g in dataset.test.graphs}
        assert not (train_files & valid_files) and not (train_files & test_files) and not (valid_files & test_files)

    def test_samples_reference_valid_graphs_and_symbols(self, dataset):
        for split in dataset.splits.values():
            for sample in split.samples:
                graph = split.graphs[sample.graph_index]
                symbol = graph.symbols[sample.symbol_position]
                assert symbol.node_index == sample.node_index
                assert symbol.name == sample.name

    def test_sample_annotations_are_canonical_and_informative(self, dataset):
        from repro.types import is_informative

        for sample in dataset.train.samples:
            assert is_informative(sample.annotation)

    def test_any_and_none_annotations_excluded(self):
        files = {"a.py": "from typing import Any\nx: Any = 1\ny: None = None\nz: int = 3\n"}
        dataset = TypeAnnotationDataset.from_sources(files, config=DatasetConfig(deduplicate=False))
        all_annotations = [s.annotation for split in dataset.splits.values() for s in split.samples]
        assert all_annotations == ["int"]

    def test_registry_counts_cover_all_samples(self, dataset):
        total_samples = sum(split.num_samples for split in dataset.splits.values())
        assert dataset.registry.statistics().total_annotations == total_samples

    def test_lattice_knows_corpus_class_hierarchy(self):
        files = {"a.py": "class Base:\n    pass\n\nclass Derived(Base):\n    pass\n\nx: int = 1\n"}
        dataset = TypeAnnotationDataset.from_sources(files, config=DatasetConfig(deduplicate=False))
        from repro.types import parse_type

        assert dataset.lattice.is_subtype(parse_type("Derived"), parse_type("Base"))

    def test_sources_preserved_for_checker_experiments(self, dataset):
        assert dataset.sources
        for filename in (g.filename for g in dataset.test.graphs):
            assert filename in dataset.sources
            assert "def " in dataset.sources[filename]

    def test_subtoken_vocabulary_built(self, dataset):
        assert len(dataset.subtokens) > 20
        assert dataset.subtokens.lookup("count") != 0 or dataset.subtokens.lookup("name") != 0

    def test_dedup_report_attached(self, dataset):
        assert dataset.dedup_report is not None
        assert dataset.dedup_report.removed_files >= 0

    def test_augmentation_with_inference_adds_samples(self):
        source = (
            "def count_things(items):\n"
            "    return len(items)\n"
            "\n"
            "def label_of(value: int) -> str:\n"
            "    return str(value)\n"
        )
        files = {"a.py": source}
        plain = TypeAnnotationDataset.from_sources(
            files, config=DatasetConfig(deduplicate=False, augment_with_inference=False, split_fractions=(1.0, 0.0, 0.0))
        )
        augmented = TypeAnnotationDataset.from_sources(
            files, config=DatasetConfig(deduplicate=False, augment_with_inference=True, split_fractions=(1.0, 0.0, 0.0))
        )
        assert augmented.train.num_samples > plain.train.num_samples

    def test_unparsable_files_are_skipped(self):
        files = {"bad.py": "def broken(:\n", "good.py": "x: int = 1\n"}
        dataset = TypeAnnotationDataset.from_sources(files, config=DatasetConfig(deduplicate=False))
        assert sum(split.num_graphs for split in dataset.splits.values()) == 1

    def test_invalid_split_fractions_rejected(self):
        with pytest.raises(ValueError):
            TypeAnnotationDataset.from_sources(
                {"a.py": "x: int = 1\n"},
                config=DatasetConfig(deduplicate=False, split_fractions=(0.5, 0.1, 0.1)),
            )

    def test_samples_of_kind_filter(self, dataset):
        parameters = dataset.train.samples_of_kind(SymbolKind.PARAMETER)
        assert all(sample.kind == SymbolKind.PARAMETER for sample in parameters)
        assert parameters  # the synthetic corpus always annotates some parameters
