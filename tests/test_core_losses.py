"""Tests for the training objectives (Eqs. 1-4) and the kNN machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    ClassificationHead,
    ExactL1Index,
    KNNTypePredictor,
    RandomProjectionIndex,
    TypeSpace,
    TypilusLoss,
    adapt_space_with_new_type,
    classification_loss,
    erased_type_name,
    erased_vocabulary,
    similarity_space_loss,
    triplet_loss,
)
from repro.nn.optim import Adam
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


class TestClassificationLoss:
    def _head(self, dim=8):
        vocabulary = {"%UNK%": 0, "int": 1, "str": 2, "float": 3}
        return ClassificationHead(vocabulary, dim, SeededRNG(0))

    def test_vocabulary_roundtrip(self):
        head = self._head()
        assert head.type_id("int") == 1
        assert head.type_id("UnknownType") == 0
        assert head.type_name(2) == "str"
        assert len(head) == 4

    def test_missing_unk_rejected(self):
        with pytest.raises(ValueError):
            ClassificationHead({"int": 0}, 4, SeededRNG(0))

    def test_loss_decreases_with_training(self):
        head = self._head(dim=4)
        rng = np.random.default_rng(0)
        embeddings = Tensor(rng.normal(size=(30, 4)))
        types = ["int"] * 10 + ["str"] * 10 + ["float"] * 10
        optimiser = Adam(head.parameters(), lr=0.1)
        initial = float(classification_loss(head, embeddings, types).data)
        for _ in range(50):
            optimiser.zero_grad()
            loss = classification_loss(head, embeddings, types)
            loss.backward()
            optimiser.step()
        assert float(loss.data) < initial

    def test_predict_returns_probabilities(self):
        head = self._head()
        predictions = head.predict(Tensor(np.random.randn(5, 8)))
        assert len(predictions) == 5
        for type_name, probability in predictions:
            assert type_name in head.vocabulary
            assert 0.0 <= probability <= 1.0

    def test_predict_distribution_sums_to_one(self):
        head = self._head()
        distribution = head.predict_distribution(Tensor(np.random.randn(3, 8)))
        assert np.allclose(distribution.sum(axis=1), 1.0)


class TestTripletAndSpaceLoss:
    def test_triplet_loss_zero_when_separated(self):
        anchor = Tensor(np.zeros((2, 4)))
        positive = Tensor(np.zeros((2, 4)))
        negative = Tensor(np.full((2, 4), 10.0))
        assert float(triplet_loss(anchor, positive, negative, margin=2.0).data) == 0.0

    def test_triplet_loss_positive_when_violated(self):
        anchor = Tensor(np.zeros((1, 4)))
        positive = Tensor(np.full((1, 4), 5.0))
        negative = Tensor(np.zeros((1, 4)))
        assert float(triplet_loss(anchor, positive, negative, margin=1.0).data) > 0.0

    def test_space_loss_prefers_clustered_embeddings(self):
        rng = np.random.default_rng(0)
        types = ["int"] * 8 + ["str"] * 8
        # Clustered: same-type points close together, different types far apart.
        clustered = np.concatenate([rng.normal(0, 0.1, (8, 6)), rng.normal(8, 0.1, (8, 6))])
        mixed = rng.normal(0, 1.0, (16, 6))
        clustered_loss = float(similarity_space_loss(Tensor(clustered), types).data)
        mixed_loss = float(similarity_space_loss(Tensor(mixed), types).data)
        assert clustered_loss < mixed_loss

    def test_space_loss_handles_singleton_types(self):
        embeddings = Tensor(np.random.randn(5, 4), requires_grad=True)
        types = ["int", "str", "float", "bool", "bytes"]  # no positives at all
        loss = similarity_space_loss(embeddings, types)
        loss.backward()  # must be differentiable even with empty positive sets
        assert np.isfinite(float(loss.data))

    def test_space_loss_alignment_check(self):
        with pytest.raises(ValueError):
            similarity_space_loss(Tensor(np.zeros((3, 2))), ["int"])

    def test_space_loss_stats(self):
        embeddings = Tensor(np.random.randn(6, 4))
        types = ["int", "int", "str", "str", "float", "float"]
        _, stats = similarity_space_loss(embeddings, types, return_stats=True)
        assert stats.num_anchors_with_positives == 6
        assert stats.mean_negative_distance > 0

    def test_training_with_space_loss_clusters_types(self):
        """Optimising Eq. 3 pulls same-typed symbols together (the TypeSpace)."""
        rng = SeededRNG(0)
        embeddings = Tensor(rng.np.normal(0, 1.0, (20, 6)), requires_grad=True)
        types = ["int"] * 10 + ["str"] * 10
        optimiser = Adam([embeddings], lr=0.05)
        for _ in range(60):
            optimiser.zero_grad()
            loss = similarity_space_loss(embeddings, types, margin=2.0)
            loss.backward()
            optimiser.step()
        ints, strs = embeddings.data[:10], embeddings.data[10:]
        within = np.abs(ints - ints.mean(0)).sum(1).mean() + np.abs(strs - strs.mean(0)).sum(1).mean()
        between = np.abs(ints.mean(0) - strs.mean(0)).sum()
        assert between > within


class TestTypilusLoss:
    def test_erasure_helpers(self):
        assert erased_type_name("List[int]") == "List"
        assert erased_type_name("int") == "int"
        vocabulary = erased_vocabulary(["List[int]", "List[str]", "Dict[str, int]", "int"])
        assert vocabulary.keys() == {"%UNK%", "List", "Dict", "int"}

    def test_combined_loss_trains(self):
        rng = SeededRNG(1)
        loss_module = TypilusLoss(6, ["List[int]", "List[str]", "int", "str"], rng)
        embeddings = Tensor(rng.np.normal(0, 1, (12, 6)), requires_grad=True)
        types = ["List[int]", "List[str]", "int", "str"] * 3
        optimiser = Adam([embeddings] + list(loss_module.parameters()), lr=0.05)
        initial = float(loss_module(embeddings, types).data)
        for _ in range(40):
            optimiser.zero_grad()
            loss = loss_module(embeddings, types)
            loss.backward()
            optimiser.step()
        assert float(loss.data) < initial

    def test_lambda_zero_equals_space_loss(self):
        rng = SeededRNG(2)
        loss_module = TypilusLoss(4, ["int", "str"], rng, lambda_classification=0.0)
        embeddings = Tensor(np.random.randn(6, 4))
        types = ["int", "str"] * 3
        combined = float(loss_module(embeddings, types).data)
        space_only = float(similarity_space_loss(embeddings, types, margin=loss_module.margin).data)
        assert np.isclose(combined, space_only)


class TestKNNIndexes:
    def test_exact_index_finds_true_neighbours(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [5.0, 5.0]])
        index = ExactL1Index(points)
        result = index.query(np.array([0.9, 0.9]), k=2)
        assert list(result.indices) == [1, 0]
        assert result.distances[0] <= result.distances[1]

    def test_exact_index_k_larger_than_points(self):
        index = ExactL1Index(np.zeros((2, 3)))
        assert len(index.query(np.zeros(3), k=10).indices) == 2

    def test_exact_index_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ExactL1Index(np.zeros(3))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 1000), n=st.integers(5, 40), k=st.integers(1, 5))
    def test_property_approximate_index_falls_back_gracefully(self, seed, n, k):
        rng = np.random.default_rng(seed)
        points = rng.normal(size=(n, 4))
        query = rng.normal(size=4)
        exact = ExactL1Index(points).query(query, k)
        approximate = RandomProjectionIndex(points, num_bits=4, probe_radius=2, seed=seed).query(query, k)
        assert len(approximate.indices) == len(exact.indices)
        # The approximate nearest distance can never beat the exact one.
        assert approximate.distances[0] >= exact.distances[0] - 1e-9

    def test_approximate_recall_is_reasonable(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(200, 8))
        queries = rng.normal(size=(30, 8))
        exact = ExactL1Index(points)
        approximate = RandomProjectionIndex(points, num_bits=6, probe_radius=2, seed=1)
        hits = 0
        for query in queries:
            true_top = set(exact.query(query, 5).indices.tolist())
            approx_top = set(approximate.query(query, 5).indices.tolist())
            hits += len(true_top & approx_top)
        assert hits / (30 * 5) > 0.6


class TestTypeSpaceAndPredictor:
    def _space(self):
        space = TypeSpace(dim=3)
        space.add_markers(["int"] * 3, np.zeros((3, 3)), source="train")
        space.add_markers(["str"] * 3, np.full((3, 3), 4.0), source="train")
        return space

    def test_marker_bookkeeping(self):
        space = self._space()
        assert len(space) == 6
        assert space.known_types() == {"int", "str"}
        assert space.type_counts()["int"] == 3

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            self._space().add_marker("int", np.zeros(5))

    def test_nearest_returns_sorted_distances(self):
        space = self._space()
        neighbours = space.nearest(np.zeros(3), k=4)
        assert neighbours[0][0] == "int"
        distances = [d for _, d in neighbours]
        assert distances == sorted(distances)

    def test_predictor_probabilities_normalised_and_ranked(self):
        predictor = KNNTypePredictor(self._space(), k=6, p=1.0)
        prediction = predictor.predict(np.full(3, 0.5))
        assert prediction.top_type == "int"
        assert np.isclose(sum(p for _, p in prediction.candidates), 1.0)
        assert prediction.probability_of("str") < prediction.probability_of("int")

    def test_small_p_approaches_uniform_vote(self):
        space = self._space()
        near_uniform = KNNTypePredictor(space, k=6, p=0.001).predict(np.full(3, 1.0))
        peaked = KNNTypePredictor(space, k=6, p=5.0).predict(np.full(3, 1.0))
        assert peaked.confidence > near_uniform.confidence

    def test_threshold_suppresses_low_confidence(self):
        predictor = KNNTypePredictor(self._space(), k=6, p=0.001)
        assert predictor.predict_with_threshold(np.full(3, 2.0), threshold=0.99) is None
        assert predictor.predict_with_threshold(np.zeros(3), threshold=0.1) is not None

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            KNNTypePredictor(self._space(), k=0)
        with pytest.raises(ValueError):
            KNNTypePredictor(self._space(), k=1, p=-1)

    def test_empty_space_returns_empty_prediction(self):
        prediction = KNNTypePredictor(TypeSpace(dim=3), k=3).predict(np.zeros(3))
        assert prediction.top_type is None and prediction.confidence == 0.0

    def test_one_shot_adaptation_enables_new_type(self):
        """Sec. 4.2: adding a marker lets the predictor emit an unseen type."""
        space = self._space()
        predictor = KNNTypePredictor(space, k=3, p=2.0)
        query = np.full(3, 10.0)
        assert predictor.predict(query).top_type in {"int", "str"}
        adapt_space_with_new_type(space, "torch.Tensor", [np.full(3, 10.0)])
        assert predictor.predict(query).top_type == "torch.Tensor"

    def test_save_and_load_roundtrip(self, tmp_path):
        space = self._space()
        path = str(tmp_path / "space.npz")
        space.save(path)
        loaded = TypeSpace.load(path)
        assert len(loaded) == len(space)
        assert loaded.known_types() == space.known_types()
        assert loaded.nearest(np.zeros(3), k=1)[0][0] == "int"
