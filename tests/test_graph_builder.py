"""Tests for the program-graph builder (nodes, edges, symbols, annotations)."""

import pytest

from repro.graph import (
    CodeGraph,
    EdgeKind,
    GraphBuildError,
    GraphBuilder,
    NodeKind,
    SymbolKind,
    build_graph,
    collect_annotations,
    erase_annotations,
    to_dot,
)
from repro.graph.builder import RETURN_SYMBOL_NAME, SymbolKey


@pytest.fixture()
def graph(sample_source) -> CodeGraph:
    return build_graph(sample_source, "sample.py")


class TestAnnotationCollection:
    def test_parameter_annotations_collected(self, sample_source):
        annotations = collect_annotations(sample_source)
        assert annotations[SymbolKey("module.get_foo", "i", SymbolKind.PARAMETER)] == "int"
        assert annotations[SymbolKey("module.Widget.__init__", "sizes", SymbolKind.PARAMETER)] == "List[int]"
        assert annotations[SymbolKey("module.process", "scale", SymbolKind.PARAMETER)] == "Optional[float]"

    def test_return_annotations_collected(self, sample_source):
        annotations = collect_annotations(sample_source)
        assert annotations[SymbolKey("module.get_foo", RETURN_SYMBOL_NAME, SymbolKind.FUNCTION_RETURN)] == "str"
        assert annotations[SymbolKey("module.process", RETURN_SYMBOL_NAME, SymbolKind.FUNCTION_RETURN)] == "float"

    def test_variable_annotations_collected(self, sample_source):
        annotations = collect_annotations(sample_source)
        assert annotations[SymbolKey("module", "MAX_RETRIES", SymbolKind.VARIABLE)] == "int"
        assert annotations[SymbolKey("module.get_foo", "result", SymbolKind.VARIABLE)] == "str"

    def test_self_attribute_annotations_recorded_under_class_scope(self, sample_source):
        annotations = collect_annotations(sample_source)
        assert annotations[SymbolKey("module.Widget", "self.name", SymbolKind.VARIABLE)] == "str"


class TestAnnotationErasure:
    def test_erased_source_has_no_annotations(self, sample_source):
        erased = erase_annotations(sample_source)
        assert collect_annotations(erased) == {}
        assert "->" not in erased
        assert ": int" not in erased and ": str" not in erased

    def test_erased_source_still_parses_and_keeps_structure(self, sample_source):
        import ast

        original = ast.parse(sample_source)
        erased = ast.parse(erase_annotations(sample_source))
        original_functions = [n.name for n in ast.walk(original) if isinstance(n, ast.FunctionDef)]
        erased_functions = [n.name for n in ast.walk(erased) if isinstance(n, ast.FunctionDef)]
        assert original_functions == erased_functions

    def test_bare_annotated_declaration_becomes_assignment(self):
        erased = erase_annotations("x: int\ny = x")
        assert "x = None" in erased

    def test_graph_nodes_never_contain_annotation_text(self):
        source = "def f(parameter: SomeVeryUniqueTypeName) -> AnotherUniqueType:\n    return parameter\n"
        graph = build_graph(source)
        texts = {node.text for node in graph.nodes}
        assert "SomeVeryUniqueTypeName" not in texts
        assert "AnotherUniqueType" not in texts


class TestGraphStructure:
    def test_all_node_kinds_present(self, graph):
        kinds = {node.kind for node in graph.nodes}
        assert kinds == {NodeKind.TOKEN, NodeKind.NON_TERMINAL, NodeKind.VOCABULARY, NodeKind.SYMBOL}

    def test_all_edge_kinds_present(self, graph):
        assert set(graph.edges) == set(EdgeKind)

    def test_next_token_edges_form_a_chain(self, graph):
        token_count = len(graph.nodes_of_kind(NodeKind.TOKEN))
        assert len(graph.edges_of(EdgeKind.NEXT_TOKEN)) == token_count - 1

    def test_symbols_have_occurrences(self, graph):
        symbol = graph.find_symbol("widget", kind=SymbolKind.PARAMETER)
        assert symbol is not None
        assert len(symbol.occurrence_indices) >= 2  # declaration plus at least one use

    def test_return_symbol_exists_per_function(self, graph):
        scopes = {s.scope for s in graph.symbols if s.kind == SymbolKind.FUNCTION_RETURN}
        assert "module.get_foo" in scopes and "module.process" in scopes
        assert "module.Widget.total_size" in scopes

    def test_symbol_kinds_assigned_correctly(self, graph):
        assert graph.find_symbol("MAX_RETRIES").kind == SymbolKind.VARIABLE
        assert graph.find_symbol("scale").kind == SymbolKind.PARAMETER
        assert graph.find_symbol("self.name").kind == SymbolKind.VARIABLE

    def test_annotations_attached_to_symbols(self, graph):
        assert graph.find_symbol("i", kind=SymbolKind.PARAMETER).annotation == "int"
        assert graph.find_symbol(RETURN_SYMBOL_NAME, scope="module.summarise").annotation == "str"
        assert graph.find_symbol("value", scope="module.process").annotation is None

    def test_returns_to_edges_point_at_function_definitions(self, graph):
        for source, target in graph.edges_of(EdgeKind.RETURNS_TO):
            assert graph.nodes[source].text in ("Return", "Yield", "YieldFrom")
            assert graph.nodes[target].text in ("FunctionDef", "AsyncFunctionDef")

    def test_assigned_from_edges_exist(self, graph):
        assert len(graph.edges_of(EdgeKind.ASSIGNED_FROM)) >= 3

    def test_subtoken_edges_connect_to_vocabulary_nodes(self, graph):
        for _, target in graph.edges_of(EdgeKind.SUBTOKEN_OF):
            assert graph.nodes[target].kind == NodeKind.VOCABULARY

    def test_occurrence_edges_target_symbol_nodes(self, graph):
        for _, target in graph.edges_of(EdgeKind.OCCURRENCE_OF):
            assert graph.nodes[target].kind == NodeKind.SYMBOL

    def test_validate_passes(self, graph):
        graph.validate()

    def test_summary_counts_are_consistent(self, graph):
        summary = graph.summary()
        assert summary["nodes"] == graph.num_nodes
        assert summary["annotated_symbols"] == len(graph.annotated_symbols())
        assert summary["symbols"] == len(graph.symbols)


class TestScoping:
    def test_module_scope_excludes_function_locals(self):
        graph = build_graph("total = 0\n\ndef f(x):\n    local_value = x\n    return local_value\n")
        module_names = {s.name for s in graph.symbols if s.scope == "module"}
        assert module_names == {"total"}

    def test_shadowed_names_create_separate_symbols(self):
        source = "count = 1\n\ndef f(count):\n    return count\n"
        graph = build_graph(source)
        symbols = [s for s in graph.symbols if s.name == "count"]
        assert len(symbols) == 2
        assert {s.scope for s in symbols} == {"module", "module.f"}

    def test_nested_function_scopes(self):
        source = "def outer(a):\n    def inner(b):\n        return b\n    return inner(a)\n"
        graph = build_graph(source)
        assert graph.find_symbol("b", scope="module.outer.inner") is not None
        assert graph.find_symbol("a", scope="module.outer") is not None


class TestEdgeAblation:
    def test_include_edges_filters_graph(self, sample_source):
        builder = GraphBuilder(include_edges=[EdgeKind.CHILD, EdgeKind.OCCURRENCE_OF])
        graph = builder.build(sample_source)
        assert set(graph.edges) <= {EdgeKind.CHILD, EdgeKind.OCCURRENCE_OF}
        assert graph.edges_of(EdgeKind.CHILD)

    def test_without_edges_returns_filtered_copy(self, graph):
        filtered = graph.without_edges([EdgeKind.NEXT_TOKEN])
        assert EdgeKind.NEXT_TOKEN not in filtered.edges
        assert EdgeKind.NEXT_TOKEN in graph.edges  # original untouched
        assert filtered.num_nodes == graph.num_nodes


class TestErrorsAndExport:
    def test_unparsable_source_raises_graph_build_error(self):
        with pytest.raises(GraphBuildError):
            build_graph("def broken(:\n")

    def test_build_file_reads_from_disk(self, tmp_path, sample_source):
        path = tmp_path / "module.py"
        path.write_text(sample_source)
        graph = GraphBuilder().build_file(str(path))
        assert graph.filename == str(path)
        assert graph.num_nodes > 0

    def test_dot_export_mentions_every_node(self, graph):
        dot = to_dot(graph)
        assert dot.startswith("digraph")
        assert dot.count("->") == graph.num_edges

    def test_add_edge_rejects_dangling_indices(self):
        graph = CodeGraph()
        graph.add_node(NodeKind.TOKEN, "x")
        with pytest.raises(IndexError):
            graph.add_edge(EdgeKind.CHILD, 0, 5)

    def test_self_loops_are_dropped(self):
        graph = CodeGraph()
        index = graph.add_node(NodeKind.TOKEN, "x")
        graph.add_edge(EdgeKind.CHILD, index, index)
        assert graph.num_edges == 0
