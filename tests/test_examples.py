"""Smoke tests for the example scripts: they import cleanly and expose main()."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_expected_examples_exist():
    names = {path.name for path in EXAMPLE_FILES}
    assert {
        "quickstart.py",
        "find_annotation_errors.py",
        "annotate_project.py",
        "rare_type_adaptation.py",
        "serve_project.py",
    } <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_and_defines_main(path):
    module = _load(path)
    assert hasattr(module, "main") and callable(module.main)
    assert module.__doc__, "examples must explain what they demonstrate"


def test_example_snippets_are_valid_python():
    quickstart = _load(EXAMPLES_DIR / "quickstart.py")
    errors_example = _load(EXAMPLES_DIR / "find_annotation_errors.py")
    adaptation = _load(EXAMPLES_DIR / "rare_type_adaptation.py")
    serving = _load(EXAMPLES_DIR / "serve_project.py")
    import ast

    for source in (
        quickstart.SNIPPET,
        errors_example.SUSPICIOUS_MODULE,
        adaptation.ADAPTATION_EXAMPLE,
        adaptation.QUERY_SNIPPET,
        serving.ADAPTATION_EXAMPLE,
    ):
        ast.parse(source)


def test_quickstart_suggestion_path_runs_on_trained_pipeline(trained_pipeline):
    """The quickstart's final step (suggesting on its snippet) works end to end."""
    quickstart = _load(EXAMPLES_DIR / "quickstart.py")
    suggestions = trained_pipeline.suggest_for_source(quickstart.SNIPPET, use_type_checker=False)
    assert suggestions
    assert all(s.suggested_type is not None for s in suggestions)
