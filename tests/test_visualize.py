"""DOT export: node/edge rendering, stable ordering, FlatGraph input."""

import pytest

from repro.graph import CodeGraph, EdgeKind, NodeKind, build_graph, to_dot, write_dot
from repro.graph.edges import ALL_EDGE_KINDS

SNIPPET = "def scale(value: int) -> int:\n    result = value * 2\n    return result\n"


@pytest.fixture()
def graph() -> CodeGraph:
    return build_graph(SNIPPET, "snippet.py")


class TestToDot:
    def test_every_node_rendered_with_kind_style(self, graph):
        dot = to_dot(graph)
        assert dot.startswith("digraph code_graph {") and dot.endswith("}")
        for node in graph.nodes:
            assert f"n{node.index} [label=" in dot
        # each node category maps to its distinctive shape
        kinds_present = {node.kind for node in graph.nodes}
        shapes = {
            NodeKind.TOKEN: "shape=box",
            NodeKind.NON_TERMINAL: "shape=ellipse",
            NodeKind.VOCABULARY: "shape=diamond",
            NodeKind.SYMBOL: "shape=hexagon",
        }
        for kind in kinds_present:
            assert shapes[kind] in dot

    def test_every_edge_rendered_with_kind_label(self, graph):
        dot = to_dot(graph)
        for kind in graph.edges:
            pairs = graph.edges_of(kind)
            assert f'label="{kind.value}"' in dot
            source, target = pairs[0]
            assert f"n{source} -> n{target} [label=\"{kind.value}\"" in dot
        # edge count in the DOT output matches the graph exactly
        assert dot.count(" -> ") == graph.num_edges

    def test_edges_emitted_in_stable_enum_order(self, graph):
        dot = to_dot(graph)
        first_offsets = []
        for kind in ALL_EDGE_KINDS:
            marker = f'label="{kind.value}"'
            if marker in dot:
                first_offsets.append(dot.index(marker))
        assert first_offsets == sorted(first_offsets)

    def test_output_is_deterministic_across_builds(self):
        first = to_dot(build_graph(SNIPPET, "snippet.py"))
        second = to_dot(build_graph(SNIPPET, "snippet.py"))
        assert first == second

    def test_flat_graph_input_renders_identically(self, graph):
        assert graph.flat is not None
        assert to_dot(graph.flat) == to_dot(graph)

    def test_materialised_graph_renders_identically(self, graph):
        materialised = CodeGraph(
            filename=graph.filename,
            source=graph.source,
            nodes=list(graph.nodes),
            edges={kind: list(pairs) for kind, pairs in graph.edges.items()},
            symbols=list(graph.symbols),
        )
        assert materialised.flat is None
        assert to_dot(materialised) == to_dot(graph)

    def test_long_labels_truncated_and_quotes_escaped(self):
        graph = CodeGraph(filename="weird.py")
        graph.add_node(NodeKind.TOKEN, '"' + "x" * 50)
        graph.add_node(NodeKind.TOKEN, "ok")
        graph.add_edge(EdgeKind.NEXT_TOKEN, 0, 1)
        dot = to_dot(graph, max_label_length=10)
        assert '\\"' in dot  # escaped quote
        assert "…" in dot  # truncation marker
        assert "x" * 50 not in dot

    def test_rendering_never_mutates_the_graph(self, graph):
        from repro.corpus.serialize import graph_to_payload

        before = graph_to_payload(graph)
        to_dot(graph)
        assert graph_to_payload(graph) == before


class TestWriteDot:
    def test_write_dot_round_trip(self, graph, tmp_path):
        path = tmp_path / "graph.dot"
        returned = write_dot(graph, str(path))
        assert returned == str(path)
        assert path.read_text(encoding="utf-8") == to_dot(graph)

    def test_write_dot_accepts_flat_graphs(self, graph, tmp_path):
        path = tmp_path / "flat.dot"
        write_dot(graph.flat, str(path))
        assert path.read_text(encoding="utf-8") == to_dot(graph)
