"""Tests for the dataflow analysis (NEXT_LEXICAL_USE / NEXT_MAY_USE) and subtokens."""

import pytest
from hypothesis import given, strategies as st

from repro.graph import EdgeKind, NodeKind, build_graph
from repro.graph.subtokens import (
    EMPTY_SUBTOKEN,
    UNKNOWN_SUBTOKEN,
    CharacterVocabulary,
    SubtokenVocabulary,
    split_identifier,
)


def _use_pairs(source: str, kind: EdgeKind) -> set[tuple[str, str]]:
    """Map edge endpoints to (token text, token text) pairs for readability."""
    graph = build_graph(source)
    pairs = set()
    for source_index, target_index in graph.edges_of(kind):
        pairs.add((graph.nodes[source_index].text, graph.nodes[target_index].text))
    return pairs


class TestNextLexicalUse:
    def test_sequential_uses_are_chained(self):
        source = "def f(value):\n    a = value + 1\n    b = value + 2\n    return value\n"
        graph = build_graph(source)
        value_tokens = [
            node.index for node in graph.nodes if node.kind == NodeKind.TOKEN and node.text == "value"
        ]
        lexical = set(graph.edges_of(EdgeKind.NEXT_LEXICAL_USE))
        chained = [(a, b) for a, b in zip(value_tokens, value_tokens[1:])]
        assert set(chained) <= lexical

    def test_distinct_variables_not_linked(self):
        source = "def f(alpha, beta):\n    x = alpha\n    y = beta\n    return x + y\n"
        pairs = _use_pairs(source, EdgeKind.NEXT_LEXICAL_USE)
        assert ("alpha", "beta") not in pairs and ("beta", "alpha") not in pairs


class TestNextMayUse:
    def test_both_branches_reachable_from_pre_branch_use(self):
        source = (
            "def f(flag, value):\n"
            "    start = value\n"
            "    if flag:\n"
            "        a = value + 1\n"
            "    else:\n"
            "        b = value + 2\n"
            "    return value\n"
        )
        graph = build_graph(source)
        value_tokens = [n.index for n in graph.nodes if n.kind == NodeKind.TOKEN and n.text == "value"]
        may_use = set(graph.edges_of(EdgeKind.NEXT_MAY_USE))
        first_use = value_tokens[1]  # the RHS of `start = value` (index 0 is the parameter)
        then_use = value_tokens[2]
        else_use = value_tokens[3]
        assert (first_use, then_use) in may_use
        assert (first_use, else_use) in may_use

    def test_final_use_reachable_from_both_branches(self):
        source = (
            "def f(flag, value):\n"
            "    if flag:\n"
            "        a = value + 1\n"
            "    else:\n"
            "        b = value + 2\n"
            "    return value\n"
        )
        graph = build_graph(source)
        value_tokens = [n.index for n in graph.nodes if n.kind == NodeKind.TOKEN and n.text == "value"]
        may_use = set(graph.edges_of(EdgeKind.NEXT_MAY_USE))
        then_use, else_use, final_use = value_tokens[1], value_tokens[2], value_tokens[3]
        assert (then_use, final_use) in may_use
        assert (else_use, final_use) in may_use
        # Lexical-use is a chain, so the else-branch -> final edge distinguishes
        # the two relations.
        lexical = set(graph.edges_of(EdgeKind.NEXT_LEXICAL_USE))
        assert (then_use, else_use) in lexical

    def test_loop_back_edge_connects_last_use_to_first_use(self):
        source = (
            "def f(items):\n"
            "    total = 0\n"
            "    for item in items:\n"
            "        total = total + item\n"
            "    return total\n"
        )
        graph = build_graph(source)
        total_tokens = [n.index for n in graph.nodes if n.kind == NodeKind.TOKEN and n.text == "total"]
        may_use = set(graph.edges_of(EdgeKind.NEXT_MAY_USE))
        # The assignment target inside the loop may flow back to the RHS use
        # of the next iteration.
        in_loop_target, in_loop_use = total_tokens[1], total_tokens[2]
        assert (in_loop_target, in_loop_use) in may_use or (in_loop_use, in_loop_target) in may_use

    def test_nested_function_uses_not_crossed(self):
        source = (
            "def outer(shared):\n"
            "    def inner(shared):\n"
            "        return shared\n"
            "    return shared\n"
        )
        graph = build_graph(source)
        # The inner function's `shared` is a different symbol: no may-use edge
        # should connect occurrences across the two scopes.
        outer_symbol = graph.find_symbol("shared", scope="module.outer")
        inner_symbol = graph.find_symbol("shared", scope="module.outer.inner")
        assert outer_symbol is not None and inner_symbol is not None
        outer_occurrences = set(outer_symbol.occurrence_indices)
        inner_occurrences = set(inner_symbol.occurrence_indices)
        for a, b in graph.edges_of(EdgeKind.NEXT_MAY_USE):
            assert not (a in outer_occurrences and b in inner_occurrences)
            assert not (a in inner_occurrences and b in outer_occurrences)


class TestSubtokenSplitting:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("numNodes", ["num", "nodes"]),
            ("get_foo", ["get", "foo"]),
            ("+", [EMPTY_SUBTOKEN]),
            ("", [EMPTY_SUBTOKEN]),
            ("CONSTANT_VALUE", ["constant", "value"]),
        ],
    )
    def test_split_identifier(self, text, expected):
        assert split_identifier(text) == expected

    def test_vocabulary_keeps_frequent_subtokens(self):
        vocabulary = SubtokenVocabulary(max_size=4)
        for _ in range(5):
            vocabulary.observe(["count", "total"])
        vocabulary.observe(["rare"])
        vocabulary.finalise()
        assert "count" in vocabulary and "total" in vocabulary
        assert len(vocabulary) <= 4

    def test_unknown_maps_to_unk_id(self):
        vocabulary = SubtokenVocabulary()
        vocabulary.observe(["alpha"])
        vocabulary.finalise()
        assert vocabulary.lookup("never_seen") == vocabulary.lookup(UNKNOWN_SUBTOKEN)
        assert vocabulary.lookup("alpha") != vocabulary.lookup(UNKNOWN_SUBTOKEN)

    def test_observe_after_finalise_raises(self):
        vocabulary = SubtokenVocabulary().finalise()
        with pytest.raises(RuntimeError):
            vocabulary.observe(["late"])

    def test_ids_for_identifier(self):
        vocabulary = SubtokenVocabulary()
        vocabulary.observe_identifier("numNodes")
        vocabulary.finalise()
        ids = vocabulary.ids_for_identifier("numNodes")
        assert len(ids) == 2 and all(isinstance(i, int) for i in ids)

    @given(st.text(alphabet="abcdefgXYZ_09", min_size=0, max_size=20))
    def test_property_split_never_empty(self, text):
        parts = split_identifier(text)
        assert parts  # always at least the EMPTY pseudo-subtoken

    def test_character_vocabulary_encoding(self):
        characters = CharacterVocabulary()
        encoded = characters.encode("abc", max_chars=6)
        assert len(encoded) == 6
        assert encoded[3:] == [CharacterVocabulary.PAD] * 3
        assert characters.encode("€", 2)[0] == CharacterVocabulary.UNKNOWN
