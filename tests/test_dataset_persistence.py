"""Sharded dataset save/load round trips."""

import json

import pytest

from repro.corpus import DatasetConfig, TypeAnnotationDataset
from repro.corpus.serialize import graph_to_payload
from repro.corpus.synthesis import SynthesisConfig
from repro.graph.nodes import SymbolKind


@pytest.fixture(scope="module")
def dataset() -> TypeAnnotationDataset:
    return TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=10, seed=23),
        DatasetConfig(rarity_threshold=6, seed=23),
    )


@pytest.fixture(scope="module")
def saved_dir(dataset, tmp_path_factory):
    path = tmp_path_factory.mktemp("dataset")
    dataset.save(path, shard_size=3)
    return path


class TestSaveLayout:
    def test_manifest_sources_and_binary_shards_written(self, dataset, saved_dir):
        from repro.corpus.serialize import read_graph_shard

        assert (saved_dir / "dataset.json").exists()
        assert (saved_dir / "sources.json").exists()
        assert not list(saved_dir.glob("graphs-*.json"))  # binary is the default
        shards = sorted(saved_dir.glob("graphs-*.npz"))
        total_graphs = sum(split.num_graphs for split in dataset.splits.values())
        assert len(shards) == -(-total_graphs // 3)  # ceil division
        stored = sum(len(read_graph_shard(shard)) for shard in shards)
        assert stored == total_graphs

    def test_shard_size_one_gives_one_graph_per_file(self, dataset, tmp_path):
        dataset.save(tmp_path, shard_size=1)
        shards = sorted(tmp_path.glob("graphs-*.npz"))
        assert len(shards) == sum(split.num_graphs for split in dataset.splits.values())

    def test_json_shard_format_still_writable(self, dataset, tmp_path):
        dataset.save(tmp_path, shard_size=3, shard_format="json")
        shards = sorted(tmp_path.glob("graphs-*.json"))
        assert shards and not list(tmp_path.glob("graphs-*.npz"))
        stored = sum(
            len(json.loads(shard.read_text(encoding="utf-8"))["graphs"]) for shard in shards
        )
        assert stored == sum(split.num_graphs for split in dataset.splits.values())

    def test_unknown_shard_format_rejected(self, dataset, tmp_path):
        with pytest.raises(ValueError, match="shard format"):
            dataset.save(tmp_path, shard_format="parquet")


class TestRoundTrip:
    def test_summary_and_splits_identical(self, dataset, saved_dir):
        loaded = TypeAnnotationDataset.load(saved_dir)
        assert loaded.summary() == dataset.summary()
        for name in ("train", "valid", "test"):
            original, restored = dataset.splits[name], loaded.splits[name]
            assert restored.samples == original.samples
            assert [graph_to_payload(g) for g in restored.graphs] == [
                graph_to_payload(g) for g in original.graphs
            ]

    def test_registry_ids_counts_and_vocabulary_preserved(self, dataset, saved_dir):
        loaded = TypeAnnotationDataset.load(saved_dir)
        assert list(loaded.registry) == list(dataset.registry)
        for type_name in dataset.registry:
            assert loaded.registry.id_of(type_name) == dataset.registry.id_of(type_name)
            assert loaded.registry.count_of(type_name) == dataset.registry.count_of(type_name)
            assert loaded.registry.is_rare(type_name) == dataset.registry.is_rare(type_name)
        assert loaded.registry.classification_vocabulary() == dataset.registry.classification_vocabulary()

    def test_subtoken_vocabulary_preserved(self, dataset, saved_dir):
        loaded = TypeAnnotationDataset.load(saved_dir)
        assert loaded.subtokens.tokens == dataset.subtokens.tokens
        for token in dataset.subtokens.tokens[:20]:
            assert loaded.subtokens.lookup(token) == dataset.subtokens.lookup(token)

    def test_lattice_relations_preserved(self, dataset, saved_dir):
        from repro.corpus.serialize import lattice_to_payload

        loaded = TypeAnnotationDataset.load(saved_dir)
        assert lattice_to_payload(loaded.lattice) == lattice_to_payload(dataset.lattice)

    def test_sources_config_and_dedup_preserved(self, dataset, saved_dir):
        loaded = TypeAnnotationDataset.load(saved_dir)
        assert loaded.sources == dataset.sources
        assert loaded.config == dataset.config
        if dataset.dedup_report is None:
            assert loaded.dedup_report is None
        else:
            assert loaded.dedup_report.removed_files == dataset.dedup_report.removed_files
            assert loaded.dedup_report.total_files == dataset.dedup_report.total_files

    def test_samples_kinds_are_enums_after_load(self, dataset, saved_dir):
        loaded = TypeAnnotationDataset.load(saved_dir)
        for sample in loaded.train.samples[:10]:
            assert isinstance(sample.kind, SymbolKind)

    def test_kind_breakdown_survives_round_trip(self, dataset, saved_dir):
        loaded = TypeAnnotationDataset.load(saved_dir)
        for kind in SymbolKind:
            assert loaded.train.samples_of_kind(kind) == dataset.train.samples_of_kind(kind)


class TestFormatCompatibility:
    def test_json_round_trip_matches_binary_round_trip(self, dataset, saved_dir, tmp_path):
        dataset.save(tmp_path, shard_size=3, shard_format="json")
        from_json = TypeAnnotationDataset.load(tmp_path)
        from_binary = TypeAnnotationDataset.load(saved_dir)
        assert from_json.summary() == from_binary.summary()
        for name in ("train", "valid", "test"):
            assert from_json.splits[name].samples == from_binary.splits[name].samples
            assert [graph_to_payload(g) for g in from_json.splits[name].graphs] == [
                graph_to_payload(g) for g in from_binary.splits[name].graphs
            ]

    def test_binary_loaded_graphs_are_flat_backed(self, saved_dir):
        loaded = TypeAnnotationDataset.load(saved_dir)
        for split in loaded.splits.values():
            for graph in split.graphs:
                assert graph.flat is not None

    def test_corrupted_binary_shard_rejected(self, dataset, tmp_path):
        import numpy as np

        dataset.save(tmp_path, shard_size=1000)
        (shard,) = sorted(tmp_path.glob("graphs-*.npz"))
        with np.load(shard, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["nodes"] = arrays["nodes"] + 1
        with open(shard, "wb") as handle:
            np.savez(handle, **arrays)
        from repro.corpus.serialize import PayloadError

        with pytest.raises(PayloadError, match="fingerprint"):
            TypeAnnotationDataset.load(tmp_path)

    def test_legacy_json_fixture_loads(self):
        """Backward-compat gate: a dataset directory written before the
        binary shard format (checked in under tests/fixtures) still loads."""
        from pathlib import Path

        fixture = Path(__file__).parent / "fixtures" / "legacy_dataset"
        loaded = TypeAnnotationDataset.load(fixture)
        total_graphs = sum(split.num_graphs for split in loaded.splits.values())
        assert total_graphs == loaded.summary()["files"] == 4
        assert loaded.train.num_samples > 0
        for split in loaded.splits.values():
            for graph in split.graphs:
                graph.validate()
        # A legacy dataset re-saved with today's default becomes binary and
        # round-trips unchanged.
        import tempfile

        with tempfile.TemporaryDirectory() as scratch:
            loaded.save(scratch, shard_size=2)
            resaved = TypeAnnotationDataset.load(scratch)
            assert resaved.summary() == loaded.summary()
            for name in ("train", "valid", "test"):
                assert [graph_to_payload(g) for g in resaved.splits[name].graphs] == [
                    graph_to_payload(g) for g in loaded.splits[name].graphs
                ]


class TestLoadValidation:
    def test_unknown_format_version_rejected(self, dataset, tmp_path):
        dataset.save(tmp_path)
        manifest_path = tmp_path / "dataset.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["format_version"] = 999
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError, match="format version"):
            TypeAnnotationDataset.load(tmp_path)

    def test_graph_count_mismatch_rejected(self, dataset, tmp_path):
        dataset.save(tmp_path, shard_size=1)
        manifest_path = tmp_path / "dataset.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["graph_shards"] = manifest["graph_shards"][:-1]  # drop the last graph
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(ValueError):
            TypeAnnotationDataset.load(tmp_path)
