"""Integration tests for the experiment runners and their text formatting.

These use the smallest settings so the whole module runs in well under a
minute; the benchmark suite exercises the same runners at a larger scale.
"""

import numpy as np
import pytest

from repro.checker.checker import CheckerMode
from repro.core import LossKind
from repro.evaluation import (
    ExperimentSettings,
    build_dataset,
    format_corpus_stats,
    format_figure4,
    format_figure5,
    format_figure6,
    format_figure7,
    format_speed_comparison,
    format_table2,
    format_table3,
    format_table4,
    format_table5,
    render_table,
    run_corpus_stats,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_speed_comparison,
    run_table3,
    run_table4,
    run_table5,
    summarise_heatmap,
    train_variant,
)


@pytest.fixture(scope="module")
def settings():
    return ExperimentSettings.tiny()


@pytest.fixture(scope="module")
def dataset(settings):
    return build_dataset(settings)


@pytest.fixture(scope="module")
def typilus_variant(settings, dataset):
    return train_variant(dataset, settings, "graph", LossKind.TYPILUS, label="Typilus")


class TestSettings:
    def test_presets_are_ordered_by_size(self):
        tiny, fast, paper = ExperimentSettings.tiny(), ExperimentSettings.fast(), ExperimentSettings.paper_scale()
        assert tiny.synthesis.num_files < fast.synthesis.num_files < paper.synthesis.num_files
        assert tiny.training.epochs <= fast.training.epochs <= paper.training.epochs

    def test_with_overrides(self, settings):
        modified = settings.with_encoder(hidden_dim=64).with_training(epochs=1)
        assert modified.encoder.hidden_dim == 64 and modified.training.epochs == 1
        assert settings.encoder.hidden_dim != 64  # original untouched


class TestVariantTraining:
    def test_variant_result_fields(self, typilus_variant, dataset):
        assert typilus_variant.label == "Typilus"
        assert len(typilus_variant.evaluated) == dataset.test.num_samples
        assert typilus_variant.type_space is not None
        assert typilus_variant.test_embeddings.shape[0] == dataset.test.num_samples
        assert typilus_variant.training_seconds > 0
        assert set(typilus_variant.breakdown) == {"all", "common", "rare"}

    def test_classification_variant_has_no_type_space(self, settings, dataset):
        variant = train_variant(dataset, settings, "names", LossKind.CLASSIFICATION, label="Names2Class")
        assert variant.type_space is None
        assert variant.breakdown["all"].count == dataset.test.num_samples


class TestTableRunners:
    def test_table3_proportions_sum_to_one(self, settings, dataset, typilus_variant):
        result = run_table3(settings, variant=typilus_variant, dataset=dataset)
        assert sum(result.proportions.values()) == pytest.approx(1.0)
        text = format_table3(result)
        assert "Parameter" in text and "% Exact Match" in text

    def test_table4_contains_all_ablations(self, settings, dataset):
        quick = settings.with_training(epochs=1)
        result = run_table4(quick, dataset=dataset)
        labels = [row.label for row in result.rows]
        assert "Only Names (No GNN)" in labels
        assert "Full Model - Subtokens" in labels
        assert len(labels) == 8
        assert all(0.0 <= row.exact_match <= 1.0 for row in result.rows)
        assert "Ablation" in format_table4(result)

    def test_table5_categories_and_accuracy(self, settings, dataset, typilus_variant):
        result = run_table5(settings, dataset=dataset, variant=typilus_variant, max_predictions_per_mode=30)
        for mode in (CheckerMode.STRICT.value, CheckerMode.LENIENT.value):
            cells = result.by_mode[mode]
            assert len(cells) == 3
            assert abs(sum(cell.proportion for cell in cells) - 1.0) < 1e-6
            assert 0.0 <= result.overall_accuracy[mode] <= 1.0
            assert result.total_checked[mode] > 0
        assert "eps -> tau" in format_table5(result)

    def test_corpus_stats(self, settings, dataset):
        result = run_corpus_stats(settings, dataset=dataset)
        assert result.summary["files"] == sum(split.num_graphs for split in dataset.splits.values())
        assert result.top_types
        assert "zipf" in format_corpus_stats(result).lower()

    def test_speed_comparison_gnn_faster_than_rnn(self, settings, dataset):
        result = run_speed_comparison(settings, dataset=dataset)
        assert result.gnn_train_seconds_per_epoch > 0
        assert result.rnn_train_seconds_per_epoch > result.gnn_train_seconds_per_epoch
        assert "speedup" in format_speed_comparison(result)


class TestFigureRunners:
    def test_figure4_curves(self, settings, dataset, typilus_variant):
        result = run_figure4(settings, dataset=dataset, variants=[typilus_variant])
        points = result.curves["Typilus"]
        recalls = [point.recall for point in points]
        assert recalls == sorted(recalls, reverse=True)
        assert "Typilus" in format_figure4(result)

    def test_figure5_buckets(self, settings, dataset, typilus_variant):
        result = run_figure5(settings, dataset=dataset, variant=typilus_variant)
        assert sum(bucket.count for bucket in result.buckets) == len(typilus_variant.evaluated)
        assert "annotation count" in format_figure5(result)

    def test_figure6_sweep_shape_and_median_centering(self, settings, dataset, typilus_variant):
        result = run_figure6(
            settings, dataset=dataset, variant=typilus_variant, k_values=(1, 3, 5), p_values=(0.1, 1.0, 2.0)
        )
        assert result.scores.shape == (3, 3)
        assert np.isclose(np.median(result.deltas), 0.0, atol=1e-9)
        summary = summarise_heatmap(result)
        assert summary["best_k"] in (1.0, 3.0, 5.0)
        assert "k \\ p" in format_figure6(result)

    def test_figure7_precision_recall(self, settings, dataset, typilus_variant):
        result = run_figure7(
            settings, dataset=dataset, variant=typilus_variant, max_predictions=25, num_thresholds=5
        )
        for mode, points in result.curves.items():
            recalls = [point.recall for point in points]
            assert recalls == sorted(recalls, reverse=True)
            assert all(0.0 <= point.precision <= 1.0 for point in points)
        assert "strict" in format_figure7(result)


class TestRendering:
    def test_render_table_alignment(self):
        text = render_table(["a", "bbbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])
