"""Chaos suite: every engineered degradation path, proven deterministically.

Each test arms a named :class:`~repro.serve.faults.FaultInjector` failure
point and drives the daemon into exactly the failure the server's recovery
code exists for — a dead batcher thread, an overloaded admission queue, a
poison request inside a coalesced batch, a reload that cannot read its
model directory, a response frame torn mid-write.  Gates (armed
``threading.Event`` objects) replace "slow" with "pinned at a known point",
and :meth:`FaultInjector.wait_for` replaces sleep-and-hope, so the suite is
deterministic: no real crashes, no timing-dependent outcomes.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading
import time
from contextlib import contextmanager
from types import SimpleNamespace

import pytest

from repro.core import TypilusPipeline
from repro.engine import AnnotatorConfig, ProjectAnnotator
from repro.serve import (
    AnnotationClient,
    AnnotationServer,
    FaultInjector,
    ProtocolError,
    RetryPolicy,
    ServeConfig,
    ServeError,
)
from test_serve import FILE_A, FILE_B, FILE_C, _report_keys

POISON_FILE = "poison.py"


@pytest.fixture(scope="module")
def model_dir(trained_pipeline, tmp_path_factory):
    path = tmp_path_factory.mktemp("chaos-model") / "model"
    trained_pipeline.save(path)
    return path


@pytest.fixture(scope="module")
def grown_model_dir(model_dir, tmp_path_factory):
    """A second saved pipeline with a larger type space, for reload tests."""
    pipeline = TypilusPipeline.load(model_dir)
    added = pipeline.adapt_with_sources(
        "ChaosReloadKind",
        {"example.py": "def handle(event: ChaosReloadKind) -> ChaosReloadKind:\n    return event\n"},
        provenance="test:chaos",
    )
    assert added >= 1
    path = tmp_path_factory.mktemp("chaos-model-grown") / "model"
    pipeline.save(path)
    return path


@contextmanager
def _running_server(model_dir, serve_config=None, injector=None):
    workdir = tempfile.mkdtemp(prefix="typilus-chaos-")
    socket_path = os.path.join(workdir, "daemon.sock")
    pipeline = TypilusPipeline.load(model_dir)
    injector = injector or FaultInjector()
    server = AnnotationServer(
        pipeline,
        socket_path,
        annotator_config=AnnotatorConfig(use_type_checker=False),
        serve_config=serve_config or ServeConfig(batch_window_seconds=0.05),
        fault_injector=injector,
    ).start()
    client = AnnotationClient(socket_path)
    client.wait_until_ready(timeout=10.0)
    try:
        yield SimpleNamespace(
            server=server,
            client=client,
            pipeline=pipeline,
            socket_path=socket_path,
            faults=injector,
        )
    finally:
        injector.reset()
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)


def _in_thread(fn, *args):
    """Run ``fn`` in a thread; returns a handle whose .result() joins it."""
    box = {}

    def run():
        try:
            box["value"] = fn(*args)
        except BaseException as error:  # noqa: BLE001 - tests inspect every outcome
            box["error"] = error

    thread = threading.Thread(target=run)
    thread.start()

    def result(timeout=30.0):
        thread.join(timeout=timeout)
        assert not thread.is_alive(), f"{fn.__name__} hung"
        if "error" in box:
            raise box["error"]
        return box["value"]

    return SimpleNamespace(result=result, thread=thread)


def _wait_until(predicate, timeout=10.0, message="condition"):
    """Bounded poll on an observable condition (no fixed sleeps)."""
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out waiting for {message}")
        time.sleep(0.005)


class TestBatcherCrash:
    def test_crash_fails_fast_and_daemon_keeps_serving(self, model_dir):
        injector = FaultInjector().arm("batcher", error="thread killed by test")
        with _running_server(model_dir, injector=injector) as served:
            with pytest.raises(ServeError, match="batcher crashed") as excinfo:
                served.client.annotate_sources({"a.py": FILE_A})
            assert excinfo.value.kind == "crashed"
            # the restart guard entered a fresh loop: the next request succeeds
            report = served.client.annotate_sources({"a.py": FILE_A})
            assert report.num_files == 1
            stats = served.client.stats()
            assert stats["batcher_restarts"] == 1
            assert served.client.ping()["state"] == "ready"

    def test_queued_requests_behind_a_crash_fail_fast_too(self, model_dir):
        gate = threading.Event()
        injector = FaultInjector().arm("slow_batch", gate=gate)
        config = ServeConfig(batch_window_seconds=0.01, max_batch_requests=1)
        with _running_server(model_dir, serve_config=config, injector=injector) as served:
            pinned = _in_thread(served.client.annotate_sources, {"a.py": FILE_A})
            assert served.faults.wait_for("slow_batch"), "batcher never reached the gate"
            # arm the crash, then queue a request behind the pinned batch
            served.faults.arm("batcher", error="thread killed by test")
            queued = _in_thread(served.client.annotate_sources, {"b.py": FILE_B})
            _wait_until(
                lambda: served.client.ping()["queue_depth"] >= 2,
                message="the second request to be admitted",
            )
            gate.set()
            assert pinned.result().num_files == 1  # the pinned batch still answers
            with pytest.raises(ServeError, match="batcher crashed"):
                queued.result()
            assert served.client.annotate_sources({"c.py": FILE_C}).num_files == 1


class TestOverload:
    def _pinned_server(self, model_dir, gate, max_queue_depth=2):
        config = ServeConfig(
            batch_window_seconds=0.01, max_batch_requests=1, max_queue_depth=max_queue_depth
        )
        injector = FaultInjector().arm("slow_batch", times=None, gate=gate)
        return _running_server(model_dir, serve_config=config, injector=injector)

    def test_admission_sheds_past_capacity_with_retry_hint(self, model_dir):
        gate = threading.Event()
        with self._pinned_server(model_dir, gate) as served:
            pinned = _in_thread(served.client.annotate_sources, {"a.py": FILE_A})
            assert served.faults.wait_for("slow_batch")
            queued = _in_thread(served.client.annotate_sources, {"b.py": FILE_B})
            _wait_until(
                lambda: served.client.ping()["queue_depth"] >= 2,
                message="admission to fill to capacity",
            )
            # capacity 2 is exhausted: the next request is shed immediately
            with pytest.raises(ServeError, match="overloaded") as excinfo:
                served.client.annotate_sources({"c.py": FILE_C})
            assert excinfo.value.kind == "overloaded"
            assert excinfo.value.retry_after_seconds > 0
            assert served.client.ping()["state"] == "overloaded"
            gate.set()
            # every *admitted* request still completes after the slow batch clears
            assert pinned.result().num_files == 1
            assert queued.result().num_files == 1
            stats = served.client.stats()
            assert stats["shed_requests"] == 1
            assert stats["errors"] == 0  # shedding is degradation, not failure

    def test_retry_policy_recovers_from_a_shed(self, model_dir):
        gate = threading.Event()
        with self._pinned_server(model_dir, gate) as served:
            pinned = _in_thread(served.client.annotate_sources, {"a.py": FILE_A})
            assert served.faults.wait_for("slow_batch")
            queued = _in_thread(served.client.annotate_sources, {"b.py": FILE_B})
            _wait_until(lambda: served.client.ping()["queue_depth"] >= 2, message="full admission")
            retrying_client = AnnotationClient(
                served.socket_path,
                retry_policy=RetryPolicy(max_attempts=8, base_delay_seconds=0.02, seed=7),
            )
            flooding = _in_thread(retrying_client.annotate_sources, {"c.py": FILE_C})
            _wait_until(
                lambda: served.client.stats()["shed_requests"] >= 1,
                message="the retrying client to be shed at least once",
            )
            gate.set()
            assert flooding.result(timeout=60.0).num_files == 1  # backoff + retry won through
            assert pinned.result().num_files == 1
            assert queued.result().num_files == 1
            assert served.client.stats()["shed_requests"] >= 1

    def test_retry_policy_never_retries_annotation_errors(self, model_dir):
        injector = FaultInjector().arm("annotator", times=1, error="bad request payload")
        with _running_server(model_dir, injector=injector) as served:
            client = AnnotationClient(served.socket_path, retry_policy=RetryPolicy(max_attempts=5))
            # the fault is armed for ONE fire: a (wrong) retry would succeed,
            # so the raise itself proves the client did not retry
            with pytest.raises(ServeError, match="annotation failed") as excinfo:
                client.annotate_sources({"a.py": FILE_A})
            assert excinfo.value.kind == "annotation"
            assert served.faults.fired("annotator") == 1

    def test_retry_backoff_sequence_is_deterministic(self):
        policy = RetryPolicy(max_attempts=5, base_delay_seconds=0.1, seed=42)
        first, second = list(policy.delays()), list(policy.delays())
        assert first == second  # seeded jitter: reproducible in replays
        assert len(first) == 4
        undithered = [0.1, 0.2, 0.4, 0.8]
        for delay, base in zip(first, undithered):
            assert abs(delay - base) <= base * policy.jitter_fraction + 1e-9


class TestPoisonIsolation:
    def test_poison_request_fails_alone_in_a_coalesced_batch(self, model_dir):
        """One bad request in a merged micro-batch must not fail its neighbors,
        and the neighbors' answers must match un-coalesced runs exactly."""
        gate = threading.Event()
        injector = FaultInjector()
        injector.arm("slow_batch", times=1, gate=gate)
        injector.arm(
            "annotator",
            times=None,
            error="poison payload",
            match=lambda context: POISON_FILE in context.get("filenames", ()),
        )
        config = ServeConfig(batch_window_seconds=0.2, max_batch_requests=32)
        with _running_server(model_dir, serve_config=config, injector=injector) as served:
            # pin the batcher on a sacrificial request so the next four
            # requests deterministically coalesce into one micro-batch
            sacrificial = _in_thread(served.client.annotate_sources, {"warmup.py": FILE_A})
            assert served.faults.wait_for("slow_batch")
            good_sources = [{"a.py": FILE_A}, {"b.py": FILE_B}, {"c.py": FILE_C}]
            good = [_in_thread(served.client.annotate_sources, sources) for sources in good_sources]
            poison = _in_thread(served.client.annotate_sources, {POISON_FILE: FILE_A})
            _wait_until(
                lambda: served.client.ping()["queue_depth"] >= 5,
                message="all five requests to be admitted",
            )
            gate.set()

            assert sacrificial.result().num_files == 1
            with pytest.raises(ServeError, match="poison payload") as excinfo:
                poison.result()
            assert excinfo.value.kind == "annotation"
            direct = ProjectAnnotator(served.pipeline, AnnotatorConfig(use_type_checker=False))
            for handle, sources in zip(good, good_sources):
                report = handle.result()
                assert _report_keys(report) == _report_keys(direct.annotate_sources(sources))

            stats = served.client.stats()
            assert stats["poison_requests"] == 1
            assert stats["errors"] == 1  # one failed request, not one per batch member
            assert stats["largest_batch"] == 4  # the four really did share a batch
            # full batch -> poisoned half -> poisoned singleton: three matching fires
            assert served.faults.fired("annotator") == 3


class TestHotReload:
    def test_reload_swaps_atomically_between_batches(self, model_dir, grown_model_dir):
        gate = threading.Event()
        injector = FaultInjector().arm("slow_batch", times=1, gate=gate)
        with _running_server(model_dir, injector=injector) as served:
            old_markers = served.client.ping()["markers"]
            in_flight = _in_thread(served.client.annotate_sources, {"a.py": FILE_A})
            assert served.faults.wait_for("slow_batch")
            reloading = _in_thread(served.client.reload, grown_model_dir)
            _wait_until(
                lambda: served.client.ping()["state"] == "reloading",
                message="the daemon to report state 'reloading'",
            )
            # readiness polling names the non-ready state, not a generic timeout
            with pytest.raises(TimeoutError, match="daemon answering but not ready") as excinfo:
                served.client.wait_until_ready(timeout=0.3)
            assert "reloading" in str(excinfo.value)

            gate.set()
            assert in_flight.result().num_files == 1  # finished on the old pipeline, no failure
            acknowledgement = reloading.result()
            assert acknowledgement["previous_markers"] == old_markers
            assert acknowledgement["markers"] > old_markers

            info = served.client.ping()
            assert info["state"] == "ready"
            assert info["markers"] == acknowledgement["markers"]
            stats = served.client.stats()
            assert stats["reloads"] == 1
            assert stats["failed_reloads"] == 0
            assert stats["errors"] == 0

    def test_failed_reload_keeps_the_old_pipeline_serving(self, model_dir, grown_model_dir):
        injector = FaultInjector().arm("reload", error="disk went away")
        with _running_server(model_dir, injector=injector) as served:
            before = served.client.ping()["markers"]
            with pytest.raises(ServeError, match="reload failed") as excinfo:
                served.client.reload(grown_model_dir)
            assert excinfo.value.kind == "reload"
            info = served.client.ping()
            assert info["state"] == "ready"  # the reloading flag was released
            assert info["markers"] == before  # old pipeline untouched
            assert served.client.annotate_sources({"a.py": FILE_A}).num_files == 1
            stats = served.client.stats()
            assert stats["failed_reloads"] == 1
            assert stats["reloads"] == 0

    def test_reload_from_a_torn_directory_is_a_clean_error(self, model_dir, tmp_path):
        # a directory without the pipeline.json commit marker was never
        # fully written: reload must refuse it and keep serving
        torn = tmp_path / "torn-model"
        torn.mkdir()
        with _running_server(model_dir) as served:
            with pytest.raises(ServeError, match="no complete pipeline") as excinfo:
                served.client.reload(torn)
            assert excinfo.value.kind == "reload"
            assert served.client.ping()["state"] == "ready"
            assert served.client.annotate_sources({"a.py": FILE_A}).num_files == 1


class TestTornFrames:
    def test_torn_response_frame_is_a_protocol_error_not_a_hang(self, model_dir):
        with _running_server(model_dir) as served:
            # armed only now: the startup readiness pings must answer whole
            served.faults.arm("torn_frame", times=1)
            with pytest.raises(ProtocolError, match="mid-frame"):
                served.client.annotate_sources({"a.py": FILE_A})
            # one torn connection does not poison the daemon
            assert served.client.ping()["ok"]
            assert served.client.annotate_sources({"a.py": FILE_A}).num_files == 1


class TestDeadlinesUnderLoad:
    def test_expired_request_behind_a_slow_batch_is_dropped_unprocessed(self, model_dir):
        gate = threading.Event()
        injector = FaultInjector().arm("slow_batch", times=1, gate=gate)
        config = ServeConfig(batch_window_seconds=0.01, max_batch_requests=1)
        with _running_server(model_dir, serve_config=config, injector=injector) as served:
            pinned = _in_thread(served.client.annotate_sources, {"a.py": FILE_A})
            assert served.faults.wait_for("slow_batch")
            doomed = _in_thread(
                served.client._request,
                {"op": "annotate", "sources": {"b.py": FILE_B}, "timeout_seconds": 0},
            )
            _wait_until(lambda: served.client.ping()["queue_depth"] >= 2, message="admission")
            gate.set()
            assert pinned.result().num_files == 1
            with pytest.raises(ServeError, match="dropped unprocessed") as excinfo:
                doomed.result()
            assert excinfo.value.kind == "expired"
            stats = served.client.stats()
            assert stats["expired_requests"] == 1
            assert stats["micro_batches"] == 1  # no embedding pass for the expired request
