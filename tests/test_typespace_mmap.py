"""Memory-mapped TypeSpace serving: raw layout, shared read-only pages, promotion."""

import json

import numpy as np
import pytest

from repro.core import TypeSpace, TypilusPipeline


def populated_space(n=300, dim=8, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    space = TypeSpace(dim, **kwargs)
    space.add_markers(
        [f"T{position % 12}" for position in range(n)],
        rng.normal(size=(n, dim)),
        source=[f"file{position % 5}.py" for position in range(n)],
    )
    return space


class TestRawLayout:
    def test_raw_round_trip_preserves_everything(self, tmp_path):
        space = populated_space()
        space.save(str(tmp_path / "ts"), layout="raw")
        restored = TypeSpace.load(str(tmp_path / "ts"))
        assert restored.marker_type_names() == space.marker_type_names()
        assert restored.marker_sources() == space.marker_sources()
        assert restored.dtype == space.dtype
        np.testing.assert_array_equal(restored.marker_matrix(), space.marker_matrix())

    def test_raw_round_trip_preserves_float32(self, tmp_path):
        space = populated_space(dtype=np.float32)
        space.save(str(tmp_path / "ts"), layout="raw")
        restored = TypeSpace.load(str(tmp_path / "ts"), mmap=True)
        assert restored.dtype == np.float32
        assert restored.marker_matrix().dtype == np.float32

    def test_unknown_layout_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown TypeSpace layout 'parquet'"):
            populated_space().save(str(tmp_path / "ts"), layout="parquet")

    def test_mmap_of_npz_archive_rejected(self, tmp_path):
        space = populated_space()
        path = str(tmp_path / "space.npz")
        space.save(path)
        with pytest.raises(ValueError, match="cannot be memory-mapped"):
            TypeSpace.load(path, mmap=True)

    def test_inconsistent_raw_directory_rejected(self, tmp_path):
        space = populated_space()
        space.save(str(tmp_path / "ts"), layout="raw")
        np.save(tmp_path / "ts" / "embeddings.npy", np.zeros((2, 8)))
        with pytest.raises(ValueError, match="is inconsistent"):
            TypeSpace.load(str(tmp_path / "ts"))


class TestMmapSemantics:
    def test_mmap_load_performs_no_copy_and_is_read_only(self, tmp_path):
        space = populated_space()
        space.save(str(tmp_path / "ts"), layout="raw")
        mapped = TypeSpace.load(str(tmp_path / "ts"), mmap=True)
        matrix = mapped.marker_matrix()
        assert isinstance(matrix, np.memmap)  # backed by the file, not a RAM copy
        assert matrix.base is not None
        assert not matrix.flags.writeable

    def test_mmap_nearest_batch_byte_identical(self, tmp_path):
        space = populated_space()
        space.save(str(tmp_path / "ts"), layout="raw")
        mapped = TypeSpace.load(str(tmp_path / "ts"), mmap=True)
        queries = np.random.default_rng(7).normal(size=(40, 8))
        expected = space.nearest_batch(queries, 6)
        answered = mapped.nearest_batch(queries, 6)
        assert expected.type_codes.tobytes() == answered.type_codes.tobytes()
        assert expected.distances.tobytes() == answered.distances.tobytes()

    def test_two_loads_are_both_read_only_views_of_the_file(self, tmp_path):
        space = populated_space()
        space.save(str(tmp_path / "ts"), layout="raw")
        first = TypeSpace.load(str(tmp_path / "ts"), mmap=True)
        second = TypeSpace.load(str(tmp_path / "ts"), mmap=True)
        for loaded in (first, second):
            matrix = loaded.marker_matrix()
            assert isinstance(matrix, np.memmap)
            assert not matrix.flags.writeable
            assert str(matrix.base.filename) == str(tmp_path / "ts" / "embeddings.npy")
        queries = np.random.default_rng(8).normal(size=(5, 8))
        assert (
            first.nearest_batch(queries, 3).distances.tobytes()
            == second.nearest_batch(queries, 3).distances.tobytes()
        )

    def test_add_markers_promotes_without_corrupting_the_file(self, tmp_path):
        space = populated_space()
        space.save(str(tmp_path / "ts"), layout="raw")
        on_disk = np.array(np.load(tmp_path / "ts" / "embeddings.npy"))
        mapped = TypeSpace.load(str(tmp_path / "ts"), mmap=True)
        mapped.nearest_batch(np.zeros((1, 8)), 2)  # build the index over the mapping
        new_rows = np.random.default_rng(9).normal(size=(10, 8))
        mapped.add_markers(["Fresh"] * 10, new_rows, source="adapt")
        matrix = mapped.marker_matrix()
        assert not isinstance(matrix, np.memmap)  # promoted to private RAM storage
        assert matrix.flags.writeable
        assert len(mapped) == len(on_disk) + 10
        np.testing.assert_array_equal(matrix[: len(on_disk)], on_disk)
        np.testing.assert_array_equal(matrix[len(on_disk) :], new_rows)
        # the on-disk file is untouched: a fresh load still sees the original rows
        np.testing.assert_array_equal(
            np.array(np.load(tmp_path / "ts" / "embeddings.npy")), on_disk
        )
        # and the promoted space serves the new markers
        answer = mapped.nearest(new_rows[0], 1)
        assert answer[0][0] == "Fresh"


class TestConcurrentProcesses:
    """Two *processes* can map the same raw layout and answer identically.

    This is the fleet-serving contract: every annotation worker maps the one
    on-disk marker matrix read-only, so N workers cost one matrix of RAM and
    no worker can drift from another.
    """

    _CHILD = """\
import hashlib
import sys

import numpy as np

from repro.core import TypeSpace

space = TypeSpace.load(sys.argv[1], mmap=True)
assert space.is_memory_mapped
print("READY", flush=True)
sys.stdin.readline()  # hold the mapping open until both processes are up
queries = np.random.default_rng(1234).normal(size=(64, space.dim))
result = space.nearest_batch(queries, 5)
digest = hashlib.sha256(result.type_codes.tobytes() + result.distances.tobytes())
print(digest.hexdigest(), flush=True)
"""

    def test_two_processes_share_one_mapping_and_agree(self, tmp_path):
        import os
        import subprocess
        import sys

        space = populated_space()
        space.save(str(tmp_path / "ts"), layout="raw")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in ("src", env.get("PYTHONPATH", "")) if part
        )
        children = [
            subprocess.Popen(
                [sys.executable, "-c", self._CHILD, str(tmp_path / "ts")],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                env=env,
                text=True,
            )
            for _ in range(2)
        ]
        try:
            # Both processes hold the read-only mapping before either queries.
            for child in children:
                assert child.stdout.readline().strip() == "READY"
            for child in children:
                child.stdin.write("go\n")
                child.stdin.flush()
            digests = [child.stdout.readline().strip() for child in children]
            for child in children:
                assert child.wait(timeout=60) == 0
        finally:
            for child in children:
                child.kill()
        assert digests[0] and digests[0] == digests[1]
        # and the in-process answer matches the children byte-for-byte
        import hashlib

        queries = np.random.default_rng(1234).normal(size=(64, space.dim))
        result = space.nearest_batch(queries, 5)
        local = hashlib.sha256(result.type_codes.tobytes() + result.distances.tobytes())
        assert local.hexdigest() == digests[0]


class TestPipelineRawLayout:
    @pytest.fixture(scope="class")
    def raw_dir(self, trained_pipeline, tmp_path_factory):
        path = tmp_path_factory.mktemp("model") / "pipeline"
        trained_pipeline.save(path, typespace_layout="raw")
        return path

    def test_raw_save_writes_directory_layout(self, raw_dir):
        assert (raw_dir / "typespace" / "embeddings.npy").exists()
        assert (raw_dir / "typespace" / "markers.npz").exists()
        assert not (raw_dir / "typespace.npz").exists()
        manifest = json.loads((raw_dir / "pipeline.json").read_text(encoding="utf-8"))
        assert manifest["typespace_layout"] == "raw"
        assert manifest["index"] == {"kind": "exact", "params": {}}

    def test_raw_load_memory_maps_by_default(self, raw_dir):
        loaded = TypilusPipeline.load(raw_dir)
        assert isinstance(loaded.type_space.marker_matrix(), np.memmap)
        in_ram = TypilusPipeline.load(raw_dir, mmap_typespace=False)
        assert not isinstance(in_ram.type_space.marker_matrix(), np.memmap)

    def test_raw_reload_keeps_byte_identical_fingerprint(self, trained_pipeline, raw_dir):
        loaded = TypilusPipeline.load(raw_dir)
        assert loaded.fingerprint() == trained_pipeline.fingerprint()

    def test_npz_layout_cannot_be_mmapped(self, trained_pipeline, tmp_path):
        path = tmp_path / "npz-model"
        trained_pipeline.save(path)
        with pytest.raises(ValueError, match="cannot\\s+be memory-mapped"):
            TypilusPipeline.load(path, mmap_typespace=True)

    def test_unknown_layout_rejected(self, trained_pipeline, tmp_path):
        with pytest.raises(ValueError, match="unknown typespace layout"):
            trained_pipeline.save(tmp_path / "model", typespace_layout="hdf5")

    def test_index_kind_round_trips_through_manifest(self, trained_pipeline, tmp_path):
        trained_pipeline.type_space.reindex("ivf", nlist=4, nprobe=2)
        try:
            path = tmp_path / "ivf-model"
            trained_pipeline.save(path, typespace_layout="raw")
            manifest = json.loads((path / "pipeline.json").read_text(encoding="utf-8"))
            assert manifest["index"] == {"kind": "ivf", "params": {"nlist": 4, "nprobe": 2}}
            loaded = TypilusPipeline.load(path)
            assert loaded.type_space.index_kind == "ivf"
            assert loaded.type_space.index_params == {"nlist": 4, "nprobe": 2}
            assert loaded.type_space.approximate_index
        finally:
            # trained_pipeline is session-scoped: restore the default index
            trained_pipeline.type_space.reindex("exact")
