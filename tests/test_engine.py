"""Project-scale annotation engine: batched reports, metrics and CLI surface."""

import numpy as np
import pytest

from repro.engine import AnnotatorConfig, FileReport, ProjectAnnotator, ProjectReport

UNANNOTATED_A = (
    "def scale_amount(amount, factor):\n"
    "    return amount * factor\n"
)
UNANNOTATED_B = (
    "def count_entries(entries):\n"
    "    return len(entries)\n"
    "\n"
    "def join_names(names):\n"
    "    return ','.join(names)\n"
)


class TestProjectAnnotator:
    def test_batched_report_matches_single_file_path(self, trained_pipeline):
        sources = {"a.py": UNANNOTATED_A, "b.py": UNANNOTATED_B}
        annotator = ProjectAnnotator(trained_pipeline, AnnotatorConfig(use_type_checker=False))
        report = annotator.annotate_sources(sources)
        assert report.num_files == 2
        assert not report.skipped_files
        for file_report in report.files:
            single = trained_pipeline.suggest_for_source(
                sources[file_report.filename], filename=file_report.filename, use_type_checker=False
            )
            assert [(s.scope, s.name, s.suggested_type) for s in file_report.suggestions] == [
                (s.scope, s.name, s.suggested_type) for s in single
            ]

    def test_unparsable_files_are_skipped_not_fatal(self, trained_pipeline):
        sources = {"ok.py": UNANNOTATED_A, "broken.py": "def broken(:\n"}
        report = ProjectAnnotator(trained_pipeline, AnnotatorConfig(use_type_checker=False)).annotate_sources(
            sources
        )
        assert report.skipped_files == ["broken.py"]
        assert [f.filename for f in report.files] == ["ok.py"]

    def test_report_metrics_and_throughput(self, trained_pipeline):
        report = ProjectAnnotator(trained_pipeline, AnnotatorConfig(use_type_checker=False)).annotate_sources(
            {"a.py": UNANNOTATED_A, "b.py": UNANNOTATED_B}
        )
        assert report.num_symbols == sum(f.num_symbols for f in report.files) > 0
        assert 0.0 <= report.coverage <= 1.0
        assert report.elapsed_seconds > 0
        assert report.symbols_per_second > 0
        summary = report.summary()
        assert summary["files"] == 2
        assert summary["symbols"] == report.num_symbols

    def test_confidence_threshold_prunes_symbols(self, trained_pipeline):
        loose = ProjectAnnotator(
            trained_pipeline, AnnotatorConfig(use_type_checker=False, confidence_threshold=0.0)
        ).annotate_sources({"a.py": UNANNOTATED_A})
        strict = ProjectAnnotator(
            trained_pipeline, AnnotatorConfig(use_type_checker=False, confidence_threshold=0.99)
        ).annotate_sources({"a.py": UNANNOTATED_A})
        assert strict.num_symbols <= loose.num_symbols

    def test_disagreements_respect_threshold(self, trained_pipeline):
        source = "def build_grid(num_rows: str, num_cols: str) -> int:\n    return num_rows * num_cols\n"
        report = ProjectAnnotator(
            trained_pipeline,
            AnnotatorConfig(use_type_checker=False, disagreement_threshold=0.0),
        ).annotate_sources({"grid.py": source})
        for filename, suggestion in report.disagreements():
            assert filename == "grid.py"
            assert suggestion.disagrees_with_existing
        # raising the threshold can only shrink the findings
        stricter = ProjectAnnotator(
            trained_pipeline,
            AnnotatorConfig(use_type_checker=False, disagreement_threshold=0.999),
        ).annotate_sources({"grid.py": source})
        assert len(stricter.disagreements()) <= len(report.disagreements())

    def test_annotate_directory_walks_files(self, trained_pipeline, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "a.py").write_text(UNANNOTATED_A, encoding="utf-8")
        (tmp_path / "pkg" / "b.py").write_text(UNANNOTATED_B, encoding="utf-8")
        (tmp_path / "notes.txt").write_text("not python", encoding="utf-8")
        report = ProjectAnnotator(trained_pipeline, AnnotatorConfig(use_type_checker=False)).annotate_directory(
            tmp_path
        )
        assert sorted(f.filename for f in report.files) == ["a.py", "pkg/b.py"]

    def test_annotate_directory_rejects_non_directory(self, trained_pipeline, tmp_path):
        target = tmp_path / "file.py"
        target.write_text("x = 1\n", encoding="utf-8")
        with pytest.raises(NotADirectoryError):
            ProjectAnnotator(trained_pipeline).annotate_directory(target)

    def test_empty_project_yields_empty_report(self, trained_pipeline):
        report = ProjectAnnotator(trained_pipeline).annotate_sources({})
        assert report.num_files == 0
        assert report.num_symbols == 0
        assert report.coverage == 0.0

    def test_checker_filter_runs_in_engine(self, trained_pipeline):
        source = "def double_text(text):\n    return text + text\n\nresult: str = double_text('x')\n"
        report = ProjectAnnotator(
            trained_pipeline, AnnotatorConfig(use_type_checker=True)
        ).annotate_sources({"f.py": source})
        [file_report] = report.files
        assert any(s.filtered is not None for s in file_report.suggestions)


class TestSuggestForSources:
    def test_batch_covers_all_files_and_symbols(self, trained_pipeline):
        results = trained_pipeline.suggest_for_sources(
            {"a.py": UNANNOTATED_A, "b.py": UNANNOTATED_B}, use_type_checker=False
        )
        assert set(results) == {"a.py", "b.py"}
        names_b = {s.name for s in results["b.py"]}
        assert {"entries", "names", "<return>"} <= names_b

    def test_unparsable_raises_without_skip_flag(self, trained_pipeline):
        from repro.graph.builder import GraphBuildError

        with pytest.raises(GraphBuildError):
            trained_pipeline.suggest_for_sources({"broken.py": "def broken(:\n"})

    def test_predictions_identical_to_split_predictor(self, trained_pipeline, tiny_dataset):
        """The batch suggestion path uses the same predictor as split scoring."""
        embeddings, _ = trained_pipeline.embedder.embed_split(tiny_dataset.test)
        if len(embeddings) == 0:
            pytest.skip("no test symbols in tiny dataset")
        batched = trained_pipeline.predictor.predict_batch(embeddings)
        singles = [trained_pipeline.predictor.predict(embedding) for embedding in embeddings]
        for one, other in zip(singles, batched):
            assert one.top_type == other.top_type
            assert np.isclose(one.confidence, other.confidence)


class TestIncrementalAnnotation:
    def _suggestion_keys(self, report):
        return {
            file_report.filename: [
                (s.scope, s.name, s.suggested_type, round(s.confidence, 12))
                for s in file_report.suggestions
            ]
            for file_report in report.files
        }

    def test_second_run_reuses_every_unchanged_file(self, trained_pipeline, tmp_path):
        sources = {"a.py": UNANNOTATED_A, "b.py": UNANNOTATED_B}
        config = AnnotatorConfig(use_type_checker=False, cache_dir=tmp_path)
        annotator = ProjectAnnotator(trained_pipeline, config)
        cold = annotator.annotate_sources(sources)
        warm = annotator.annotate_sources(sources)
        assert cold.reused_files == 0
        assert warm.reused_files == 2
        assert self._suggestion_keys(warm) == self._suggestion_keys(cold)
        assert warm.summary()["reused_files"] == 2

    def test_only_changed_file_is_reannotated(self, trained_pipeline, tmp_path):
        sources = {"a.py": UNANNOTATED_A, "b.py": UNANNOTATED_B}
        annotator = ProjectAnnotator(
            trained_pipeline, AnnotatorConfig(use_type_checker=False, cache_dir=tmp_path)
        )
        annotator.annotate_sources(sources)
        edited = dict(sources)
        edited["b.py"] = UNANNOTATED_B + "\ndef extra_helper(value):\n    return value\n"
        report = annotator.annotate_sources(edited)
        assert report.reused_files == 1
        assert {f.filename for f in report.files} == {"a.py", "b.py"}

    def test_cache_reuse_survives_new_annotator_instance(self, trained_pipeline, tmp_path):
        sources = {"a.py": UNANNOTATED_A}
        config = AnnotatorConfig(use_type_checker=False, cache_dir=tmp_path)
        first = ProjectAnnotator(trained_pipeline, config).annotate_sources(sources)
        second = ProjectAnnotator(trained_pipeline, config).annotate_sources(sources)
        assert second.reused_files == 1
        assert self._suggestion_keys(second) == self._suggestion_keys(first)

    def test_settings_change_invalidates_cache(self, trained_pipeline, tmp_path):
        sources = {"a.py": UNANNOTATED_A}
        loose = AnnotatorConfig(use_type_checker=False, confidence_threshold=0.0, cache_dir=tmp_path)
        strict = AnnotatorConfig(use_type_checker=False, confidence_threshold=0.99, cache_dir=tmp_path)
        ProjectAnnotator(trained_pipeline, loose).annotate_sources(sources)
        report = ProjectAnnotator(trained_pipeline, strict).annotate_sources(sources)
        assert report.reused_files == 0

    def test_corrupted_annotation_entry_is_a_miss(self, trained_pipeline, tmp_path):
        sources = {"a.py": UNANNOTATED_A}
        config = AnnotatorConfig(use_type_checker=False, cache_dir=tmp_path)
        annotator = ProjectAnnotator(trained_pipeline, config)
        cold = annotator.annotate_sources(sources)
        for corruption in ("not json at all", "[1, 2]"):  # garbage and valid-but-wrong-shape JSON
            for entry in (tmp_path / "annotations").glob("*.json"):
                entry.write_text(corruption, encoding="utf-8")
            recovered = annotator.annotate_sources(sources)
            assert recovered.reused_files == 0
            assert self._suggestion_keys(recovered) == self._suggestion_keys(cold)

    def test_pipeline_mutation_invalidates_cache(self, trained_pipeline, tmp_path):
        sources = {"a.py": UNANNOTATED_A}
        config = AnnotatorConfig(use_type_checker=False, cache_dir=tmp_path)
        annotator = ProjectAnnotator(trained_pipeline, config)
        annotator.annotate_sources(sources)
        original_k = trained_pipeline.predictor.k
        try:
            trained_pipeline.predictor.k = original_k + 1  # changes the fingerprint
            report = annotator.annotate_sources(sources)
        finally:
            trained_pipeline.predictor.k = original_k
        assert report.reused_files == 0

    def test_parallel_jobs_produce_identical_report(self, trained_pipeline):
        sources = {"a.py": UNANNOTATED_A, "b.py": UNANNOTATED_B}
        serial = ProjectAnnotator(
            trained_pipeline, AnnotatorConfig(use_type_checker=False)
        ).annotate_sources(sources)
        parallel = ProjectAnnotator(
            trained_pipeline, AnnotatorConfig(use_type_checker=False, jobs=2)
        ).annotate_sources(sources)
        assert self._suggestion_keys(parallel) == self._suggestion_keys(serial)

    def test_fingerprint_stable_and_sensitive(self, trained_pipeline):
        assert trained_pipeline.fingerprint() == trained_pipeline.fingerprint()
        original_k = trained_pipeline.predictor.k
        try:
            trained_pipeline.predictor.k = original_k + 1
            changed = trained_pipeline.fingerprint()
        finally:
            trained_pipeline.predictor.k = original_k
        assert changed != trained_pipeline.fingerprint()


class TestReportDataclasses:
    def test_file_report_counts(self):
        report = FileReport(filename="x.py", suggestions=[])
        assert report.num_symbols == 0
        assert report.num_suggested == 0
        assert report.disagreements() == []

    def test_project_report_defaults(self):
        report = ProjectReport()
        assert report.symbols_per_second == 0.0
        assert report.summary()["files"] == 0
