"""Integration tests: trainer, pipeline, suggestion path and checker filtering."""


from repro.checker import CheckerMode
from repro.core import (
    EncoderConfig,
    LossKind,
    Trainer,
    TrainingConfig,
    TypeCheckedFilter,
    TypePrediction,
    TypilusPipeline,
    build_encoder,
    summarise_by_rarity,
)
from repro.graph.nodes import SymbolKind


class TestTrainer:
    def test_training_reduces_loss(self, tiny_dataset):
        encoder = build_encoder(tiny_dataset, EncoderConfig(family="graph", hidden_dim=16, gnn_steps=2, seed=3))
        trainer = Trainer(
            encoder, tiny_dataset, loss_kind=LossKind.TYPILUS,
            config=TrainingConfig(epochs=3, graphs_per_batch=6, learning_rate=8e-3, seed=3),
        )
        result = trainer.train()
        assert len(result.history) == 3
        assert result.history[-1].mean_loss < result.history[0].mean_loss

    def test_classification_trainer_builds_head(self, tiny_dataset):
        encoder = build_encoder(tiny_dataset, EncoderConfig(family="names", hidden_dim=16, seed=3))
        trainer = Trainer(
            encoder, tiny_dataset, loss_kind=LossKind.CLASSIFICATION,
            config=TrainingConfig(epochs=2, graphs_per_batch=6, seed=3),
        )
        result = trainer.train()
        assert result.classification_head is not None
        assert result.typilus_loss is None

    def test_embed_split_aligns_samples(self, tiny_dataset):
        encoder = build_encoder(tiny_dataset, EncoderConfig(family="names", hidden_dim=16, seed=3))
        trainer = Trainer(encoder, tiny_dataset, loss_kind=LossKind.SPACE,
                          config=TrainingConfig(epochs=1, graphs_per_batch=6, seed=3))
        trainer.train()
        embeddings, samples = trainer.embed_split(tiny_dataset.test)
        assert embeddings.shape == (len(samples), encoder.output_dim)
        assert len(samples) == tiny_dataset.test.num_samples

    def test_type_space_markers_come_from_train_and_valid(self, tiny_dataset):
        encoder = build_encoder(tiny_dataset, EncoderConfig(family="names", hidden_dim=16, seed=3))
        trainer = Trainer(encoder, tiny_dataset, loss_kind=LossKind.SPACE,
                          config=TrainingConfig(epochs=1, graphs_per_batch=6, seed=3))
        trainer.train()
        space = trainer.build_type_space(include_valid=True)
        expected = tiny_dataset.train.num_samples + tiny_dataset.valid.num_samples
        assert len(space) == expected
        sources = {marker.source for marker in space.markers}
        assert "train" in sources


class TestPipeline:
    def test_pipeline_beats_random_guessing(self, trained_pipeline, tiny_dataset):
        summary, evaluated = trained_pipeline.evaluate_split(tiny_dataset.test)
        assert summary.count == tiny_dataset.test.num_samples
        # Random guessing over the type vocabulary would land far below this.
        assert summary.exact_match > 0.3
        assert summary.type_neutral >= summary.exact_match

    def test_common_types_predicted_better_than_rare(self, trained_pipeline, tiny_dataset):
        _, evaluated = trained_pipeline.evaluate_split(tiny_dataset.test)
        breakdown = summarise_by_rarity(evaluated, tiny_dataset.registry)
        if breakdown["rare"].count:
            assert breakdown["common"].exact_match >= breakdown["rare"].exact_match

    def test_predictions_have_confidences(self, trained_pipeline, tiny_dataset):
        for _, prediction in trained_pipeline.predict_split(tiny_dataset.test)[:10]:
            assert 0.0 < prediction.confidence <= 1.0
            assert prediction.top_type is not None

    def test_suggest_for_unannotated_source(self, trained_pipeline):
        source = (
            "def scale_amount(amount, factor):\n"
            "    return amount * factor\n"
            "\n"
            "def count_entries(entries):\n"
            "    return len(entries)\n"
        )
        suggestions = trained_pipeline.suggest_for_source(source, use_type_checker=False)
        names = {s.name for s in suggestions}
        assert {"amount", "factor", "entries", "<return>"} <= names
        for suggestion in suggestions:
            assert suggestion.suggested_type is not None

    def test_suggest_skips_existing_annotations_when_asked(self, trained_pipeline):
        source = "def f(count: int, label):\n    return label + str(count)\n"
        suggestions = trained_pipeline.suggest_for_source(source, use_type_checker=False, include_annotated=False)
        assert all(s.name != "count" for s in suggestions)

    def test_checker_filter_rejects_type_error_candidates(self, trained_pipeline):
        source = "def double_text(text):\n    return text + text\n\nresult: str = double_text('x')\n"
        suggestions = trained_pipeline.suggest_for_source(
            source, use_type_checker=True, checker_mode=CheckerMode.STRICT
        )
        return_suggestions = [s for s in suggestions if s.name == "<return>" and s.scope == "module.double_text"]
        assert return_suggestions
        accepted = return_suggestions[0]
        if accepted.filtered is not None and accepted.filtered.has_suggestion:
            # whatever was accepted must not contradict the str usage downstream
            assert accepted.filtered.accepted_type not in ("int", "float", "bool")

    def test_confidence_threshold_reduces_suggestions(self, trained_pipeline):
        source = "def mystery(a, b):\n    return a\n"
        all_suggestions = trained_pipeline.suggest_for_source(source, use_type_checker=False, confidence_threshold=0.0)
        confident = trained_pipeline.suggest_for_source(source, use_type_checker=False, confidence_threshold=0.99)
        assert len(confident) <= len(all_suggestions)

    def test_disagreement_detection(self, trained_pipeline):
        # `num_layers`-style integers annotated as float: the Sec. 7 scenario.
        source = (
            "def build_grid(num_rows: str, num_cols: str) -> int:\n"
            "    return num_rows * num_cols\n"
        )
        suggestions = trained_pipeline.suggest_for_source(source, use_type_checker=False)
        by_name = {s.name: s for s in suggestions}
        assert by_name["num_rows"].existing_annotation == "str"
        # The model's prediction is recorded even when it disagrees.
        assert by_name["num_rows"].prediction.top_type is not None


class TestTypeCheckedFilter:
    def test_filter_accepts_first_passing_candidate(self):
        source = "def emphasise(word):\n    return word + '!'\n"
        prediction = TypePrediction(candidates=[("int", 0.6), ("str", 0.4)])
        filtered = TypeCheckedFilter(mode=CheckerMode.STRICT).filter(
            source, "module.emphasise", "word", SymbolKind.PARAMETER, prediction
        )
        assert filtered.accepted_type == "str"
        assert any(candidate == "int" for candidate, _ in filtered.rejected)

    def test_filter_rejects_uninformative_candidates(self):
        source = "def f(x):\n    return x\n"
        prediction = TypePrediction(candidates=[("Any", 0.9), ("None", 0.1)])
        filtered = TypeCheckedFilter().filter(source, "module.f", "x", SymbolKind.PARAMETER, prediction)
        assert not filtered.has_suggestion
        assert len(filtered.rejected) == 2

    def test_filter_respects_confidence_threshold(self):
        source = "def f(x):\n    return x\n"
        prediction = TypePrediction(candidates=[("int", 0.2)])
        filtered = TypeCheckedFilter(confidence_threshold=0.5).filter(
            source, "module.f", "x", SymbolKind.PARAMETER, prediction
        )
        assert not filtered.has_suggestion
