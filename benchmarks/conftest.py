"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  The
corpus, dataset and the reference Typilus model are session-scoped so the
table/figure benches that only *consume* a trained model (Tables 3 and 5,
Figures 4-7) do not retrain it.

The benchmark profile is selected with the ``REPRO_BENCH_PROFILE``
environment variable: ``tiny`` (default, a few minutes for the whole suite),
``fast`` (larger corpus, clearer trends) or ``paper`` (closest to the paper's
scale; tens of minutes).

Two command-line options turn the suite into a CI smoke harness:

``--quick``
    Force the tiny profile and downgrade every performance/quality assertion
    (anything routed through the ``bench_check`` fixture) to a recorded
    observation.  Quick mode answers "does every benchmark still run end to
    end and emit sane numbers?", not "is the hardware fast?".
``--bench-json PATH``
    Write everything benches record through ``bench_record`` to ``PATH`` as
    JSON when the session ends (defaults to ``bench-results.json`` under
    ``--quick``).
"""

import json
import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import LossKind  # noqa: E402
from repro.evaluation import ExperimentSettings, build_dataset, train_variant  # noqa: E402


def pytest_addoption(parser):
    group = parser.getgroup("repro-bench")
    group.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="smoke mode: tiny profile, no perf/quality assertions, JSON results",
    )
    group.addoption(
        "--bench-json",
        default=None,
        help="write recorded benchmark results to this JSON file",
    )


def pytest_configure(config):
    config._bench_results = {}


def pytest_sessionfinish(session, exitstatus):
    config = session.config
    results = getattr(config, "_bench_results", None)
    if not results:
        return
    target = config.getoption("--bench-json")
    if target is None and config.getoption("--quick"):
        target = "bench-results.json"
    if target is None:
        return
    payload = {
        "quick": bool(config.getoption("--quick")),
        "profile": _profile_name(config),
        "results": results,
    }
    Path(target).write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")


def _profile_name(config) -> str:
    if config.getoption("--quick"):
        return "tiny"
    return os.environ.get("REPRO_BENCH_PROFILE", "tiny").lower()


def _profile(config) -> ExperimentSettings:
    name = _profile_name(config)
    if name == "paper":
        return ExperimentSettings.paper_scale()
    if name == "fast":
        return ExperimentSettings.fast()
    return ExperimentSettings.tiny()


@pytest.fixture(scope="session")
def quick(request) -> bool:
    """Whether the suite runs as a CI smoke test (``--quick``)."""
    return bool(request.config.getoption("--quick"))


@pytest.fixture
def bench_check(quick):
    """Assert outside quick mode; observe-only inside it.

    Hardware-dependent claims (speedups, timing comparisons) and
    trend-quality claims (accuracy orderings on a full-size corpus) go
    through this so the quick sweep only verifies that every benchmark runs
    and emits results.
    """

    def check(condition, message=""):
        if quick:
            return bool(condition)
        assert condition, message
        return True

    return check


@pytest.fixture
def bench_record(request):
    """Record a benchmark's headline numbers for the JSON report."""

    def record(**values):
        request.config._bench_results[request.node.name] = values

    return record


@pytest.fixture(scope="session")
def settings(request) -> ExperimentSettings:
    return _profile(request.config)


@pytest.fixture(scope="session")
def dataset(settings):
    return build_dataset(settings)


@pytest.fixture(scope="session")
def typilus_variant(settings, dataset):
    """The reference Graph+Typilus model reused by consumer benchmarks."""
    return train_variant(dataset, settings, "graph", LossKind.TYPILUS, label="Typilus")
