"""Shared fixtures for the benchmark harness.

Each benchmark module regenerates one table or figure of the paper.  The
corpus, dataset and the reference Typilus model are session-scoped so the
table/figure benches that only *consume* a trained model (Tables 3 and 5,
Figures 4-7) do not retrain it.

The benchmark profile is selected with the ``REPRO_BENCH_PROFILE``
environment variable: ``tiny`` (default, a few minutes for the whole suite),
``fast`` (larger corpus, clearer trends) or ``paper`` (closest to the paper's
scale; tens of minutes).
"""

import os
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.core import LossKind  # noqa: E402
from repro.evaluation import ExperimentSettings, build_dataset, train_variant  # noqa: E402


def _profile() -> ExperimentSettings:
    name = os.environ.get("REPRO_BENCH_PROFILE", "tiny").lower()
    if name == "paper":
        return ExperimentSettings.paper_scale()
    if name == "fast":
        return ExperimentSettings.fast()
    return ExperimentSettings.tiny()


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    return _profile()


@pytest.fixture(scope="session")
def dataset(settings):
    return build_dataset(settings)


@pytest.fixture(scope="session")
def typilus_variant(settings, dataset):
    """The reference Graph+Typilus model reused by consumer benchmarks."""
    return train_variant(dataset, settings, "graph", LossKind.TYPILUS, label="Typilus")


