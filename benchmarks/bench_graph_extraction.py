"""Columnar FlatGraph persistence and end-to-end reload fidelity.

The tentpole claim of the FlatGraph refactor is that graph persistence and
consumption are array operations, not object traversals:

* **binary vs JSON shards** — saving + loading a dataset's graphs as
  fingerprint-validated ``.npz`` FlatGraph arrays must be ≥ 3× faster than
  the legacy JSON payload path on the synthesized corpus (asserted outside
  ``--quick``; recorded always);
* **reload fidelity** — a dataset saved via FlatGraph shards must reload
  with *byte-identical* compiled :class:`~repro.core.trainer.BatchPlan`
  features and an *identical* trained-pipeline fingerprint, and legacy JSON
  shards must keep loading to the same state (asserted unconditionally, on
  any hardware).
"""

import numpy as np
import pytest

from _bench_utils import run_once
from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.core.pipeline import build_encoder
from repro.core.trainer import BatchPlan
from repro.corpus import DatasetConfig, TypeAnnotationDataset
from repro.corpus.serialize import graph_to_payload
from repro.corpus.synthesis import CorpusSynthesizer, SynthesisConfig
from repro.utils.timing import Stopwatch

QUICK_FILES = 10
FULL_FILES = 72
REPEATS = 3

ENCODER = EncoderConfig(family="graph", hidden_dim=16, gnn_steps=2)
TRAINING = TrainingConfig(epochs=1, graphs_per_batch=4)


@pytest.fixture(scope="module")
def dataset(quick) -> TypeAnnotationDataset:
    num_files = QUICK_FILES if quick else FULL_FILES
    synthesizer = CorpusSynthesizer(
        SynthesisConfig(num_files=num_files, seed=41, num_user_classes=16)
    )
    files = {entry.filename: entry.source for entry in synthesizer.generate()}
    return TypeAnnotationDataset.from_sources(
        files,
        class_edges=synthesizer.class_hierarchy_edges(),
        config=DatasetConfig(rarity_threshold=4, seed=41),
    )


def _time_best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        stopwatch = Stopwatch()
        with stopwatch.measure("run"):
            fn()
        best = min(best, stopwatch.sections["run"])
    return best


def _graph_payloads(dataset: TypeAnnotationDataset) -> list[dict]:
    return [
        graph_to_payload(graph)
        for split in dataset.splits.values()
        for graph in split.graphs
    ]


def test_binary_shards_faster_than_json(benchmark, dataset, tmp_path, quick, bench_check, bench_record):
    """Binary FlatGraph shard save+load beats the JSON payload path ≥ 3×."""
    json_dir = tmp_path / "json-shards"
    binary_dir = tmp_path / "binary-shards"

    def json_round_trip():
        dataset.save(json_dir, include_features=False, shard_format="json")
        TypeAnnotationDataset.load(json_dir)

    def binary_round_trip():
        dataset.save(binary_dir, include_features=False)
        TypeAnnotationDataset.load(binary_dir)

    def measure():
        # Warm both paths once so lazily materialised views and import costs
        # don't land on either side of the comparison.
        json_round_trip()
        binary_round_trip()
        json_seconds = _time_best_of(json_round_trip)
        binary_seconds = _time_best_of(binary_round_trip)
        return {
            "json_seconds": json_seconds,
            "binary_seconds": binary_seconds,
            "speedup": json_seconds / binary_seconds,
        }

    result = run_once(benchmark, measure)
    graphs = sum(split.num_graphs for split in dataset.splits.values())
    print(
        f"\ngraph shard save+load over {graphs} graphs: "
        f"json {result['json_seconds'] * 1000:.1f}ms, "
        f"binary {result['binary_seconds'] * 1000:.1f}ms "
        f"({result['speedup']:.2f}x)"
    )
    bench_record(
        graphs=graphs,
        json_seconds=result["json_seconds"],
        binary_seconds=result["binary_seconds"],
        speedup=result["speedup"],
    )

    # Fidelity is exact, so it is asserted even in quick mode: both formats
    # reload the same graphs the dataset holds in memory.
    from_json = TypeAnnotationDataset.load(json_dir)
    from_binary = TypeAnnotationDataset.load(binary_dir)
    original_payloads = _graph_payloads(dataset)
    assert _graph_payloads(from_binary) == original_payloads
    assert _graph_payloads(from_json) == original_payloads

    bench_check(
        result["speedup"] >= 3.0,
        f"binary shards only {result['speedup']:.2f}x over the JSON payload path",
    )


def test_flatgraph_reload_preserves_features_and_fingerprint(dataset, tmp_path, bench_record):
    """Binary reload replays byte-identical BatchPlan features and pipeline
    fingerprints; legacy JSON shards still load to the same state."""
    binary_dir = tmp_path / "dataset-binary"
    json_dir = tmp_path / "dataset-json"
    dataset.save(binary_dir)
    dataset.save(json_dir, shard_format="json")
    from_binary = TypeAnnotationDataset.load(binary_dir)
    from_json = TypeAnnotationDataset.load(json_dir)

    def train_plan(candidate: TypeAnnotationDataset) -> BatchPlan:
        return BatchPlan(build_encoder(candidate, ENCODER), candidate.train)

    reference_plan = train_plan(dataset)
    features_identical = True
    for candidate in (from_binary, from_json):
        plan = train_plan(candidate)
        features_identical = features_identical and set(plan._graph_entries) == set(
            reference_plan._graph_entries
        )
        for graph_index, entry in reference_plan._graph_entries.items():
            loaded = plan._graph_entries[graph_index]
            features_identical = (
                features_identical
                and entry.features.ids.tobytes() == loaded.features.ids.tobytes()
                and entry.features.row_splits.tobytes() == loaded.features.row_splits.tobytes()
                and entry.node_texts == loaded.node_texts
                and set(entry.edges) == set(loaded.edges)
                and all(np.array_equal(entry.edges[kind], loaded.edges[kind]) for kind in entry.edges)
                and np.array_equal(entry.target_nodes, loaded.target_nodes)
            )
    assert features_identical, "reloaded BatchPlan arrays diverged from the reference"

    def fingerprint_of(candidate: TypeAnnotationDataset) -> str:
        pipeline = TypilusPipeline.fit(
            candidate, encoder_config=ENCODER, loss_kind=LossKind.TYPILUS, training_config=TRAINING
        )
        return pipeline.fingerprint()

    reference_fingerprint = fingerprint_of(dataset)
    binary_fingerprint = fingerprint_of(from_binary)
    json_fingerprint = fingerprint_of(from_json)
    assert binary_fingerprint == reference_fingerprint, "binary reload changed the trained pipeline"
    assert json_fingerprint == reference_fingerprint, "legacy JSON reload changed the trained pipeline"

    bench_record(
        features_identical=features_identical,
        fingerprint_identical=binary_fingerprint == reference_fingerprint,
        legacy_json_loads=json_fingerprint == reference_fingerprint,
        pipeline_fingerprint=reference_fingerprint[:16],
    )
