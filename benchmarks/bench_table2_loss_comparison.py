"""Table 2: {Seq, Path, Graph} x {Class, Space, Typilus} comparison.

The absolute numbers differ from the paper (synthetic corpus, CPU-sized
models) but the comparisons the paper draws should hold:

* similarity-learning losses (Space / Typilus) beat pure classification on
  *rare* types by a wide margin;
* the combined Typilus loss is the best overall graph model;
* graph models are at least competitive with sequence and path models.
"""

from _bench_utils import run_once

from repro.evaluation import format_table2, run_table2


def test_table2_model_loss_comparison(benchmark, settings, dataset, bench_check, bench_record):
    result = run_once(benchmark, lambda: run_table2(settings, dataset=dataset))
    print("\n" + format_table2(result))

    typilus = result.row("Typilus").breakdown
    graph_class = result.row("Graph2Class").breakdown
    graph_space = result.row("Graph2Space").breakdown
    bench_record(
        typilus_all_exact=typilus["all"].exact_match,
        typilus_rare_exact=typilus["rare"].exact_match,
        graph_class_all_exact=graph_class["all"].exact_match,
        graph_class_rare_exact=graph_class["rare"].exact_match,
    )

    # Rare types: the open-vocabulary losses must beat the closed classifier
    # (the paper's 4.1% -> 22.4% headline improvement).
    bench_check(
        max(graph_space["rare"].exact_match, typilus["rare"].exact_match) >= graph_class["rare"].exact_match
    )

    # The combined loss should not lose to plain classification overall.
    bench_check(typilus["all"].exact_match >= graph_class["all"].exact_match - 0.05)

    # Every variant produced predictions for the full test set.
    counts = {row.breakdown["all"].count for row in result.rows}
    assert len(counts) == 1
