"""Figure 7: precision-recall of checker-correct predictions vs confidence."""

from _bench_utils import run_once

from repro.evaluation import format_figure7, run_figure7


def test_fig7_typecheck_precision_recall(benchmark, settings, dataset, typilus_variant, bench_check, bench_record):
    result = run_once(
        benchmark,
        lambda: run_figure7(settings, dataset=dataset, variant=typilus_variant, max_predictions=100),
    )
    print("\n" + format_figure7(result))

    assert set(result.curves) == {"strict", "lenient"}
    bench_record(
        strict_full_recall_precision=result.curves["strict"][0].precision,
        lenient_full_recall_precision=result.curves["lenient"][0].precision,
    )
    for mode, points in result.curves.items():
        recalls = [point.recall for point in points]
        assert recalls == sorted(recalls, reverse=True), mode
        assert all(0.0 <= point.precision <= 1.0 for point in points)
        # Restricting to confident predictions should not hurt checker-precision.
        bench_check(points[-2].precision >= points[0].precision - 0.1, mode)
