"""Cost of extending a live TypeSpace vs. rebuilding it from scratch.

The tentpole claim of the incremental-indexing refactor is that the open
type vocabulary (Sec. 4.2) is cheap to *use*: adding a handful of markers to
a large, already-indexed TypeSpace extends the columnar storage and the kNN
index in place, instead of invalidating everything and paying an O(markers)
rebuild on the next query — which is what the pre-refactor list-of-dataclass
space did on **every** ``add_marker``.

This benchmark adds ``M`` markers (M ≪ N) one at a time to an ``N``-marker
space, bringing the index fully query-ready after every addition (the
serving pattern: adapt, then answer), for

* the **legacy** rebuild-from-scratch baseline — a faithful inline
  reproduction of the old behaviour: a Python list of per-marker embedding
  rows that is re-stacked into a matrix, re-interned into type codes and
  re-indexed after every addition;
* the **incremental** path — one live :class:`TypeSpace` whose storage and
  index extend in place.

The incremental path must be ≥ 5× faster; a grown space's ``nearest_batch``
answers must be **byte-identical** to a space rebuilt from scratch over the
same markers (asserted unconditionally, on any hardware).
"""

import numpy as np
import pytest

from _bench_utils import run_once
from repro.core import TypeSpace
from repro.core.knn import ExactL1Index
from repro.utils.timing import Stopwatch

NUM_BASE_MARKERS = 4000
NUM_ADDED = 40
NUM_TYPES = 60
DIM = 32
K = 10


@pytest.fixture(scope="module")
def marker_data():
    rng = np.random.default_rng(51)
    base_names = [f"type_{index % NUM_TYPES}" for index in range(NUM_BASE_MARKERS)]
    base = rng.normal(size=(NUM_BASE_MARKERS, DIM))
    added = rng.normal(size=(NUM_ADDED, DIM))
    added_names = [f"rare_{index % 4}" for index in range(NUM_ADDED)]
    queries = rng.normal(size=(8, DIM))
    return base_names, base, added_names, added, queries


def _time(fn) -> float:
    stopwatch = Stopwatch()
    with stopwatch.measure("run"):
        fn()
    return stopwatch.sections["run"]


class _LegacyTypeSpace:
    """The pre-refactor space: per-marker rows, wholesale cache invalidation."""

    def __init__(self) -> None:
        self.rows: list[np.ndarray] = []
        self.names: list[str] = []

    def add_marker(self, name: str, row: np.ndarray) -> None:
        self.rows.append(np.asarray(row, dtype=np.float64).reshape(-1))
        self.names.append(name)
        # every add invalidated the matrix, the codes and the index ...

    def make_query_ready(self) -> tuple[np.ndarray, ExactL1Index]:
        # ... so the first query after an add paid the full O(N) rebuild:
        matrix = np.stack(self.rows)
        vocabulary: dict[str, int] = {}
        codes = np.empty(len(self.names), dtype=np.int64)
        for position, name in enumerate(self.names):
            codes[position] = vocabulary.setdefault(name, len(vocabulary))
        return codes, ExactL1Index(matrix)

    def nearest_codes(self, queries: np.ndarray, k: int) -> np.ndarray:
        codes, index = self.make_query_ready()
        return codes[index.query_batch_arrays(queries, k).indices]


def test_incremental_adaptation_speedup(benchmark, marker_data, bench_check, bench_record):
    """Adding M ≪ N markers must be ≥ 5× cheaper than rebuild-from-scratch."""
    base_names, base, added_names, added, queries = marker_data

    def measure():
        legacy = _LegacyTypeSpace()
        for name, row in zip(base_names, base):
            legacy.rows.append(row)
            legacy.names.append(name)
        legacy.make_query_ready()  # build once before the adaptation loop

        def run_legacy():
            for name, row in zip(added_names, added):
                legacy.add_marker(name, row)
                legacy.make_query_ready()  # what the next query had to pay

        space = TypeSpace(dim=DIM)
        space.add_markers(base_names, base, source="train")
        space.nearest_batch(queries, K)  # build once before the adaptation loop

        def run_incremental():
            for name, row in zip(added_names, added):
                space.add_marker(name, row, source="adapt")  # extends storage + index
                space.index()  # already up to date: the next query pays nothing
                space.marker_type_codes()

        legacy_seconds = _time(run_legacy)
        incremental_seconds = _time(run_incremental)
        return {
            "added_markers": NUM_ADDED,
            "base_markers": NUM_BASE_MARKERS,
            "legacy_seconds": legacy_seconds,
            "incremental_seconds": incremental_seconds,
            "speedup": legacy_seconds / incremental_seconds,
        }

    result = run_once(benchmark, measure)
    print(
        f"\nadaptation of {NUM_ADDED} markers on {NUM_BASE_MARKERS}: "
        f"legacy rebuild {result['legacy_seconds'] * 1000:.1f}ms, "
        f"incremental {result['incremental_seconds'] * 1000:.1f}ms "
        f"({result['speedup']:.1f}x)"
    )
    bench_record(
        speedup=result["speedup"],
        legacy_seconds=result["legacy_seconds"],
        incremental_seconds=result["incremental_seconds"],
    )
    bench_check(result["speedup"] >= 5.0, "incremental adaptation must beat rebuild-from-scratch 5x")


def test_extended_space_byte_identical_to_rebuilt(marker_data):
    """A space grown by extension answers exactly like one built from scratch."""
    base_names, base, added_names, added, queries = marker_data

    grown = TypeSpace(dim=DIM)
    grown.add_markers(base_names, base, source="train")
    grown.nearest_batch(queries, K)  # force the index, then extend it
    for name, row in zip(added_names, added):
        grown.add_marker(name, row, source="adapt")

    rebuilt = TypeSpace(dim=DIM)
    rebuilt.add_markers(base_names, base, source="train")
    rebuilt.add_markers(added_names, added, source="adapt")

    one = grown.nearest_batch(queries, K)
    other = rebuilt.nearest_batch(queries, K)
    assert one.type_vocabulary == other.type_vocabulary
    assert one.type_codes.tobytes() == other.type_codes.tobytes()
    assert one.distances.tobytes() == other.distances.tobytes()
    assert one.counts.tobytes() == other.counts.tobytes()
