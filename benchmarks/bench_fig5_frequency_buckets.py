"""Figure 5: accuracy bucketed by how often the ground-truth type is annotated."""

from _bench_utils import run_once

from repro.evaluation import format_figure5, run_figure5


def test_fig5_accuracy_by_annotation_count(benchmark, settings, dataset, typilus_variant, bench_check, bench_record):
    result = run_once(benchmark, lambda: run_figure5(settings, dataset=dataset, variant=typilus_variant))
    print("\n" + format_figure5(result))

    populated = [bucket for bucket in result.buckets if bucket.count > 0]
    assert populated, "no test predictions were bucketed"
    assert sum(bucket.count for bucket in result.buckets) == len(typilus_variant.evaluated)

    # The paper's trend: frequently annotated types are predicted (weakly)
    # better than the rarest bucket.
    rarest = populated[0]
    most_common = populated[-1]
    bench_record(
        populated_buckets=len(populated),
        rarest_exact_match=rarest.exact_match,
        most_common_exact_match=most_common.exact_match,
    )
    bench_check(most_common.exact_match >= rarest.exact_match)
