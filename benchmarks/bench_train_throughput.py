"""Epoch throughput of the compile-once training plan (Sec. 6.1's speed axis).

The tentpole claim of the training-pipeline rework is twofold:

* **speed** — a compiled float32 plan (features computed once per corpus,
  per-graph batch pieces, segment indexes and message plans built before
  epoch 0, sparse embedding updates) trains ≥ 1.6× faster per epoch than
  the eager float64 baseline path, which re-tokenizes every node text and
  rebuilds every batch on every epoch;
* **exactness** — the compiled plan is a pure reorganisation of the same
  computation: in float64 mode its per-epoch mean losses are byte-identical
  to the eager float64 trajectory.

Exactness is asserted unconditionally (it holds on any hardware); the 2×
claim goes through ``bench_check`` so the ``--quick`` CI sweep records the
observed numbers without asserting hardware performance.  Per-epoch medians
are compared rather than totals so a transient neighbour on a shared box
cannot flip the verdict.

The out-of-core rework adds two more axes with the same split: data-parallel
``workers`` throughput (hardware, ``bench_check``; bit-replay of the serial
trajectory asserted unconditionally) and bounded-window streaming residency
over memory-mapped raw shards (allocation counts, asserted unconditionally).
"""

import statistics

import pytest

from _bench_utils import run_once
from repro.core import EncoderConfig, LossKind, Trainer, TrainingConfig, build_encoder
from repro.corpus import DatasetConfig, SynthesisConfig, TypeAnnotationDataset

QUICK_FILES, FULL_FILES = 12, 32
QUICK_EPOCHS, FULL_EPOCHS = 2, 4


@pytest.fixture(scope="module")
def train_dataset(quick) -> TypeAnnotationDataset:
    synthesis = SynthesisConfig(
        num_files=QUICK_FILES if quick else FULL_FILES, seed=33, num_user_classes=16
    )
    return TypeAnnotationDataset.synthetic(synthesis, DatasetConfig(rarity_threshold=8, seed=5))


def _train(
    dataset: TypeAnnotationDataset,
    epochs: int,
    dtype: str,
    compile_batches: bool,
    workers: int = 1,
    prefetch: int = None,
    graphs_per_batch: int = 8,
):
    """One training run from identical seeds; returns (losses, epoch_seconds)."""
    encoder = build_encoder(dataset, EncoderConfig(family="graph", hidden_dim=32, gnn_steps=4, seed=5))
    trainer = Trainer(
        encoder,
        dataset,
        loss_kind=LossKind.TYPILUS,
        config=TrainingConfig(
            epochs=epochs,
            graphs_per_batch=graphs_per_batch,
            seed=5,
            dtype=dtype,
            compile_batches=compile_batches,
            workers=workers,
            prefetch_batches=prefetch,
        ),
    )
    result = trainer.train()
    return (
        [stats.mean_loss for stats in result.history],
        [stats.seconds for stats in result.history],
    )


def _traced_memory(fn):
    """Run ``fn`` and return (result, retained bytes, peak bytes).

    ``tracemalloc`` sees numpy's allocations but not memory-mapped file
    pages, which is exactly the accounting the out-of-core claim is about:
    mapped shards are reclaimable page cache, while allocated arrays are
    resident by construction.  (``ru_maxrss`` cannot serve here — it is a
    process-lifetime high-water mark, so the second measurement of a run
    would inherit the first one's peak.)  *Retained* is what is still
    allocated when ``fn`` returns; for a training run that keeps its trainer
    alive this is the corpus-proportional state — the compiled plan and its
    assembled batches — while *peak* is dominated by per-batch compute
    transients that are identical in every execution mode.
    """
    import tracemalloc

    tracemalloc.start()
    try:
        result = fn()
        retained, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, retained, peak


def test_compiled_training_speedup(benchmark, train_dataset, quick, bench_check, bench_record):
    """Compiled float32 plan ≥ 2× eager float64 throughput; float64 plan exact."""
    epochs = QUICK_EPOCHS if quick else FULL_EPOCHS

    def measure():
        compiled32_losses, compiled32_seconds = _train(train_dataset, epochs, "float32", True)
        eager64_losses, eager64_seconds = _train(train_dataset, epochs, "float64", False)
        compiled64_losses, compiled64_seconds = _train(train_dataset, epochs, "float64", True)
        return {
            "eager64": (eager64_losses, eager64_seconds),
            "compiled64": (compiled64_losses, compiled64_seconds),
            "compiled32": (compiled32_losses, compiled32_seconds),
        }

    result = run_once(benchmark, measure)
    eager64_losses, eager64_seconds = result["eager64"]
    compiled64_losses, compiled64_seconds = result["compiled64"]
    _, compiled32_seconds = result["compiled32"]

    samples = train_dataset.train.num_samples
    eager_epoch = statistics.median(eager64_seconds)
    compiled_epoch = statistics.median(compiled32_seconds)
    speedup = eager_epoch / compiled_epoch
    print(
        f"\neager float64: {samples / eager_epoch:.0f} samples/s/epoch, "
        f"compiled float64: {samples / statistics.median(compiled64_seconds):.0f}, "
        f"compiled float32: {samples / compiled_epoch:.0f} ({speedup:.2f}x)"
    )
    bench_record(
        train_samples=samples,
        epochs=epochs,
        eager64_epoch_seconds=eager_epoch,
        compiled64_epoch_seconds=statistics.median(compiled64_seconds),
        compiled32_epoch_seconds=compiled_epoch,
        speedup=speedup,
        eager64_losses=eager64_losses,
        compiled64_losses=compiled64_losses,
    )

    # The compiled plan is a reorganisation, not an approximation: float64
    # mode must replay the eager float64 loss trajectory byte-for-byte.
    # Asserted on any hardware, quick mode included.
    assert compiled64_losses == eager64_losses

    # Calibration note: the original 2x margin was measured against the
    # union-assembling eager baseline.  The per-graph gradient decomposition
    # (the execution model shared with streaming and data-parallel workers)
    # made the *eager* path ~20% faster — single-graph batches skip the
    # union merge — while also speeding the compiled plan up, so the margin
    # over the now-faster baseline is 1.6x.  Absolute throughput of both
    # paths improved; the recorded epoch seconds are the ground truth.
    bench_check(
        speedup >= 1.6,
        f"compiled float32 plan managed only {speedup:.2f}x over the eager float64 path",
    )


def test_data_parallel_workers_speedup(benchmark, train_dataset, quick, bench_check, bench_record):
    """Forked data-parallel epochs: faster on multi-core, bit-identical anywhere.

    The exactness half is unconditional: ``workers=2`` must replay the serial
    trajectory byte-for-byte in *both* dtypes, because both paths run the same
    per-graph gradient decomposition and the parent applies the only optimiser
    step.  The ≥ 1.5× throughput half is hardware (it needs a second core), so
    it goes through ``bench_check`` and is skipped on single-core boxes.
    """
    import os
    import statistics as stats

    epochs = QUICK_EPOCHS if quick else FULL_EPOCHS

    def measure():
        return {
            "serial32": _train(train_dataset, epochs, "float32", True),
            "workers32": _train(train_dataset, epochs, "float32", True, workers=2),
            "serial64": _train(train_dataset, epochs, "float64", True),
            "workers64": _train(train_dataset, epochs, "float64", True, workers=2),
        }

    result = run_once(benchmark, measure)
    serial32_losses, serial32_seconds = result["serial32"]
    workers32_losses, workers32_seconds = result["workers32"]
    serial64_losses, _ = result["serial64"]
    workers64_losses, _ = result["workers64"]

    # Bit-replay holds on any hardware, quick mode included.
    assert workers64_losses == serial64_losses
    assert workers32_losses == serial32_losses

    cores = os.cpu_count() or 1
    serial_epoch = stats.median(serial32_seconds)
    parallel_epoch = stats.median(workers32_seconds)
    speedup = serial_epoch / parallel_epoch
    samples = train_dataset.train.num_samples
    print(
        f"\nserial float32: {samples / serial_epoch:.0f} samples/s/epoch, "
        f"workers=2: {samples / parallel_epoch:.0f} ({speedup:.2f}x on {cores} cores)"
    )
    bench_record(
        workers=2,
        cores=cores,
        serial32_epoch_seconds=serial_epoch,
        workers32_epoch_seconds=parallel_epoch,
        workers_speedup=speedup,
        workers_losses_match=True,
    )
    bench_check(
        speedup >= 1.5 or cores < 2,
        f"workers=2 managed only {speedup:.2f}x over serial on {cores} cores",
    )


def test_streaming_bounds_retained_memory(train_dataset, quick, tmp_path, bench_record):
    """Streaming over mmapped shards caps corpus-proportional memory at O(window).

    The retained-bytes comparison is asserted on any hardware because it
    counts allocations, not wall-clock: (1) a bounded-window run over
    memory-mapped raw shards retains strictly less than the resident
    compiled plan on the same corpus (the lazy plan keeps no entries or
    assembled batches); (2) doubling the corpus grows the streaming
    footprint sub-linearly — the window is fixed, so only vocabulary-sized
    state may grow.  The float64 streamed trajectory must also replay the
    resident one byte-for-byte: bounding memory is a reorganisation, not an
    approximation.
    """

    def run(dataset, prefetch):
        encoder = build_encoder(
            dataset, EncoderConfig(family="graph", hidden_dim=32, gnn_steps=4, seed=5)
        )
        trainer = Trainer(
            encoder,
            dataset,
            loss_kind=LossKind.TYPILUS,
            config=TrainingConfig(
                epochs=1, graphs_per_batch=2, seed=5, dtype="float64", prefetch_batches=prefetch
            ),
        )
        result = trainer.train()
        # Returning the trainer keeps its plan alive while _traced_memory
        # reads the retained-byte count — that residency is the measurement.
        return [stats.mean_loss for stats in result.history], trainer

    train_dataset.save(tmp_path / "raw", shard_size=8, shard_format="raw")
    mapped = TypeAnnotationDataset.load(tmp_path / "raw", mmap=True)

    (resident_losses, _), resident_retained, resident_peak = _traced_memory(
        lambda: run(train_dataset, None)
    )
    (streamed_losses, _), streamed_retained, streamed_peak = _traced_memory(
        lambda: run(mapped, 1)
    )
    assert streamed_losses == resident_losses  # loss trajectory is bit-identical
    assert streamed_retained < resident_retained, (
        f"streaming retained {streamed_retained} bytes, resident {resident_retained}"
    )

    double = TypeAnnotationDataset.synthetic(
        SynthesisConfig(
            num_files=2 * (QUICK_FILES if quick else FULL_FILES), seed=33, num_user_classes=16
        ),
        DatasetConfig(rarity_threshold=8, seed=5),
    )
    double.save(tmp_path / "raw2x", shard_size=8, shard_format="raw")
    mapped2x = TypeAnnotationDataset.load(tmp_path / "raw2x", mmap=True)
    _, streamed2x_retained, _ = _traced_memory(lambda: run(mapped2x, 1))
    growth = streamed2x_retained / streamed_retained
    print(
        f"\nretained bytes — resident: {resident_retained}, streamed: {streamed_retained} "
        f"({resident_retained / streamed_retained:.2f}x smaller), streamed at 2x corpus: "
        f"{streamed2x_retained} ({growth:.2f}x)"
    )
    assert growth < 1.9, f"streaming footprint grew {growth:.2f}x for a 2x corpus"
    bench_record(
        resident_retained_bytes=resident_retained,
        streamed_retained_bytes=streamed_retained,
        streamed_2x_retained_bytes=streamed2x_retained,
        resident_peak_bytes=resident_peak,
        streamed_peak_bytes=streamed_peak,
        streaming_reduction=resident_retained / streamed_retained,
        streaming_growth_2x=growth,
        streamed_losses_match=True,
    )


def test_persisted_features_match_recomputed(train_dataset, tmp_path, bench_record):
    """A dataset reloaded with persisted features trains identically to one without."""
    train_dataset.save(tmp_path / "dataset")
    reloaded = TypeAnnotationDataset.load(tmp_path / "dataset")
    assert reloaded.train.node_features is not None

    fresh_losses, _ = _train(train_dataset, 1, "float64", True)
    reloaded_losses, _ = _train(reloaded, 1, "float64", True)
    assert reloaded_losses == fresh_losses
    bench_record(train_graphs=reloaded.train.num_graphs, losses_match=True)
