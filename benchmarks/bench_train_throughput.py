"""Epoch throughput of the compile-once training plan (Sec. 6.1's speed axis).

The tentpole claim of the training-pipeline rework is twofold:

* **speed** — a compiled float32 plan (features computed once per corpus,
  per-batch disjoint-union arrays, segment indexes and message plans built
  before epoch 0, sparse embedding updates) trains ≥ 2× faster per epoch
  than the eager float64 baseline path, which re-tokenizes every node text
  and re-merges every batch on every epoch;
* **exactness** — the compiled plan is a pure reorganisation of the same
  computation: in float64 mode its per-epoch mean losses are byte-identical
  to the eager float64 trajectory.

Exactness is asserted unconditionally (it holds on any hardware); the 2×
claim goes through ``bench_check`` so the ``--quick`` CI sweep records the
observed numbers without asserting hardware performance.  Per-epoch medians
are compared rather than totals so a transient neighbour on a shared box
cannot flip the verdict.
"""

import statistics

import pytest

from _bench_utils import run_once
from repro.core import EncoderConfig, LossKind, Trainer, TrainingConfig, build_encoder
from repro.corpus import DatasetConfig, SynthesisConfig, TypeAnnotationDataset

QUICK_FILES, FULL_FILES = 12, 32
QUICK_EPOCHS, FULL_EPOCHS = 2, 4


@pytest.fixture(scope="module")
def train_dataset(quick) -> TypeAnnotationDataset:
    synthesis = SynthesisConfig(
        num_files=QUICK_FILES if quick else FULL_FILES, seed=33, num_user_classes=16
    )
    return TypeAnnotationDataset.synthetic(synthesis, DatasetConfig(rarity_threshold=8, seed=5))


def _train(dataset: TypeAnnotationDataset, epochs: int, dtype: str, compile_batches: bool):
    """One training run from identical seeds; returns (losses, epoch_seconds)."""
    encoder = build_encoder(dataset, EncoderConfig(family="graph", hidden_dim=32, gnn_steps=4, seed=5))
    trainer = Trainer(
        encoder,
        dataset,
        loss_kind=LossKind.TYPILUS,
        config=TrainingConfig(
            epochs=epochs,
            graphs_per_batch=8,
            seed=5,
            dtype=dtype,
            compile_batches=compile_batches,
        ),
    )
    result = trainer.train()
    return (
        [stats.mean_loss for stats in result.history],
        [stats.seconds for stats in result.history],
    )


def test_compiled_training_speedup(benchmark, train_dataset, quick, bench_check, bench_record):
    """Compiled float32 plan ≥ 2× eager float64 throughput; float64 plan exact."""
    epochs = QUICK_EPOCHS if quick else FULL_EPOCHS

    def measure():
        compiled32_losses, compiled32_seconds = _train(train_dataset, epochs, "float32", True)
        eager64_losses, eager64_seconds = _train(train_dataset, epochs, "float64", False)
        compiled64_losses, compiled64_seconds = _train(train_dataset, epochs, "float64", True)
        return {
            "eager64": (eager64_losses, eager64_seconds),
            "compiled64": (compiled64_losses, compiled64_seconds),
            "compiled32": (compiled32_losses, compiled32_seconds),
        }

    result = run_once(benchmark, measure)
    eager64_losses, eager64_seconds = result["eager64"]
    compiled64_losses, compiled64_seconds = result["compiled64"]
    _, compiled32_seconds = result["compiled32"]

    samples = train_dataset.train.num_samples
    eager_epoch = statistics.median(eager64_seconds)
    compiled_epoch = statistics.median(compiled32_seconds)
    speedup = eager_epoch / compiled_epoch
    print(
        f"\neager float64: {samples / eager_epoch:.0f} samples/s/epoch, "
        f"compiled float64: {samples / statistics.median(compiled64_seconds):.0f}, "
        f"compiled float32: {samples / compiled_epoch:.0f} ({speedup:.2f}x)"
    )
    bench_record(
        train_samples=samples,
        epochs=epochs,
        eager64_epoch_seconds=eager_epoch,
        compiled64_epoch_seconds=statistics.median(compiled64_seconds),
        compiled32_epoch_seconds=compiled_epoch,
        speedup=speedup,
        eager64_losses=eager64_losses,
        compiled64_losses=compiled64_losses,
    )

    # The compiled plan is a reorganisation, not an approximation: float64
    # mode must replay the eager float64 loss trajectory byte-for-byte.
    # Asserted on any hardware, quick mode included.
    assert compiled64_losses == eager64_losses

    bench_check(
        speedup >= 2.0,
        f"compiled float32 plan managed only {speedup:.2f}x over the eager float64 path",
    )


def test_persisted_features_match_recomputed(train_dataset, tmp_path, bench_record):
    """A dataset reloaded with persisted features trains identically to one without."""
    train_dataset.save(tmp_path / "dataset")
    reloaded = TypeAnnotationDataset.load(tmp_path / "dataset")
    assert reloaded.train.node_features is not None

    fresh_losses, _ = _train(train_dataset, 1, "float64", True)
    reloaded_losses, _ = _train(reloaded, 1, "float64", True)
    assert reloaded_losses == fresh_losses
    bench_record(train_graphs=reloaded.train.num_graphs, losses_match=True)
