"""Infrastructure micro-benchmarks: graph construction and kNN index queries.

These are not paper tables, but they back two engineering claims the paper
relies on: graph extraction is cheap enough to run per file, and a spatial
index keeps kNN queries fast as the type map grows (the role Annoy plays in
the original system).
"""

import numpy as np

from repro.core import ExactL1Index, RandomProjectionIndex
from repro.corpus import CorpusSynthesizer, SynthesisConfig
from repro.graph import GraphBuilder


def test_graph_construction_throughput(benchmark, bench_record):
    files = CorpusSynthesizer(SynthesisConfig(num_files=10, seed=21, duplicate_fraction=0.0)).generate()
    builder = GraphBuilder()

    def build_all():
        return [builder.build(entry.source, entry.filename) for entry in files]

    graphs = benchmark(build_all)
    bench_record(files=len(files), total_nodes=sum(graph.num_nodes for graph in graphs))
    assert len(graphs) == len(files)
    assert all(graph.num_nodes > 0 for graph in graphs)


def test_exact_knn_query_speed(benchmark, bench_record):
    rng = np.random.default_rng(0)
    index = ExactL1Index(rng.normal(size=(2000, 32)))
    queries = rng.normal(size=(50, 32))

    results = benchmark(lambda: index.query_batch(queries, k=10))
    bench_record(queries=len(queries), k=10, points=2000)
    assert len(results) == 50 and len(results[0].indices) == 10


def test_approximate_knn_query_speed(benchmark, bench_record):
    rng = np.random.default_rng(0)
    points = rng.normal(size=(2000, 32))
    index = RandomProjectionIndex(points, num_bits=10, probe_radius=1, seed=3)
    queries = rng.normal(size=(50, 32))

    results = benchmark(lambda: index.query_batch(queries, k=10))
    bench_record(queries=len(queries), k=10, points=2000, num_bits=10)
    assert len(results) == 50
    assert all(len(result.indices) == 10 for result in results)
