"""Table 5: correctness of predictions modulo the optional type checker."""

from _bench_utils import run_once

from repro.evaluation import format_table5, run_table5


def test_table5_typecheck_accuracy(benchmark, settings, dataset, typilus_variant, bench_check, bench_record):
    result = run_once(
        benchmark,
        lambda: run_table5(settings, dataset=dataset, variant=typilus_variant, max_predictions_per_mode=120),
    )
    print("\n" + format_table5(result))
    bench_record(overall_accuracy={mode: value for mode, value in result.overall_accuracy.items()})

    for mode, cells in result.by_mode.items():
        assert abs(sum(cell.proportion for cell in cells) - 1.0) < 1e-6
        # The majority of top-1 predictions should not introduce type errors
        # (the paper reports 89% for mypy and 83% for pytype).
        bench_check(result.overall_accuracy[mode] > 0.5, mode)
        assert result.total_checked[mode] > 0

    # The identical-annotation row (tau -> tau) is a sanity check: re-inserting
    # the original annotation can never introduce an error.
    for cells in result.by_mode.values():
        unchanged = [cell for cell in cells if cell.category.value == "tau_to_tau"]
        if unchanged and unchanged[0].checked:
            assert unchanged[0].accuracy == 1.0
