"""Figure 4: precision-recall curves for Graph2Class, Graph2Space and Typilus."""

from _bench_utils import run_once

from repro.core import LossKind
from repro.core.metrics import precision_at_recall
from repro.evaluation import format_figure4, run_figure4, train_variant


def test_fig4_precision_recall_curves(benchmark, settings, dataset, typilus_variant, bench_check, bench_record):
    def build():
        variants = [
            train_variant(dataset, settings, "graph", LossKind.CLASSIFICATION, label="Graph2Class"),
            train_variant(dataset, settings, "graph", LossKind.SPACE, label="Graph2Space"),
            typilus_variant,
        ]
        return run_figure4(settings, dataset=dataset, variants=variants)

    result = run_once(benchmark, build)
    print("\n" + format_figure4(result))

    for label, points in result.curves.items():
        recalls = [point.recall for point in points]
        assert recalls == sorted(recalls, reverse=True), label
        # Precision at reduced recall should not be worse than at full recall
        # (thresholding trades recall for precision, the mechanism behind the
        # paper's 95%-at-70%-recall headline).
        assert points[0].recall == 1.0

    typilus_points = result.curves["Typilus"]
    precision_high_recall = precision_at_recall(typilus_points, 0.7, criterion="neutral")
    precision_full = typilus_points[0].precision_neutral
    bench_record(
        curves=sorted(result.curves),
        typilus_precision_at_70_recall=precision_high_recall,
        typilus_precision_full_recall=precision_full,
    )
    bench_check(precision_high_recall >= precision_full - 1e-9)
