"""Table 3: Typilus performance by symbol kind (variable / parameter / return)."""

from _bench_utils import run_once

from repro.evaluation import format_table3, run_table3


def test_table3_symbol_kind_breakdown(benchmark, settings, dataset, typilus_variant, bench_check, bench_record):
    result = run_once(benchmark, lambda: run_table3(settings, variant=typilus_variant, dataset=dataset))
    print("\n" + format_table3(result))
    bench_record(proportions=dict(result.proportions))

    assert abs(sum(result.proportions.values()) - 1.0) < 1e-6
    # Parameters and returns dominate the annotated symbols, as in the paper
    # (Table 3 reports 41.5% + 49.1% for them).
    bench_check(result.proportions["parameter"] + result.proportions["function_return"] > 0.5)
    for summary in result.by_kind.values():
        if summary.count:
            assert 0.0 <= summary.exact_match <= 1.0
