"""Table 4: ablations of the graph (edge groups) and the node initialiser."""

from _bench_utils import run_once

from repro.evaluation import format_table4, run_table4


def test_table4_ablations(benchmark, settings, dataset, bench_check, bench_record):
    result = run_once(benchmark, lambda: run_table4(settings, dataset=dataset))
    print("\n" + format_table4(result))

    by_label = {row.label: row for row in result.rows}
    full = by_label["Full Model - Subtokens"]
    names_only = by_label["Only Names (No GNN)"]
    bench_record(
        full_exact_match=full.exact_match,
        names_only_exact_match=names_only.exact_match,
        rows=len(result.rows),
    )

    # The paper's key ablation finding: names alone carry a lot of signal but
    # the full graph model does at least as well.
    bench_check(full.exact_match >= names_only.exact_match - 0.05)
    assert len(result.rows) == 8
    for row in result.rows:
        assert 0.0 <= row.exact_match <= 1.0 and 0.0 <= row.type_neutral <= 1.0
