"""Helpers shared by the benchmark modules."""

import numpy as np


def latency_percentiles(seconds, prefix=""):
    """p50/p95/p99 of a latency sample, in milliseconds, as bench-record keys.

    Every serving benchmark reports the same three percentiles so the bench
    JSON carries tail latency (p99), not just means — the quick CI sweep
    asserts these keys exist.
    """
    if not seconds:
        return {f"{prefix}p50_ms": None, f"{prefix}p95_ms": None, f"{prefix}p99_ms": None}
    p50, p95, p99 = np.percentile(np.asarray(seconds, dtype=np.float64), [50.0, 95.0, 99.0])
    return {
        f"{prefix}p50_ms": 1000.0 * float(p50),
        f"{prefix}p95_ms": 1000.0 * float(p95),
        f"{prefix}p99_ms": 1000.0 * float(p99),
    }


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiment runners train models, so repeating them for statistical
    timing stability would multiply the suite's runtime without changing the
    regenerated tables; a single timed round is what we want.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
