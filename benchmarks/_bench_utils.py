"""Helpers shared by the benchmark modules."""


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiment runners train models, so repeating them for statistical
    timing stability would multiply the suite's runtime without changing the
    regenerated tables; a single timed round is what we want.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
