"""Latency and micro-batching behaviour of the annotation daemon.

The serving claim of the refactor is twofold: a long-lived daemon answers
annotation requests without ever reloading the model, and **concurrent**
requests are coalesced into micro-batches that share one embedding pass
through the engine's batched suggestion path — without changing a single
answer.

This benchmark trains a small pipeline once, serves it over a Unix socket
and measures

* **serial latency** — one request at a time, per-request round trip;
* **concurrent wall time** — the same requests fired from parallel client
  threads, which the daemon's batching window coalesces.

Parity (daemon answers == one-shot :class:`ProjectAnnotator` answers,
suggestion for suggestion) is asserted unconditionally; the
timing/coalescing claims (concurrent ≤ serial total, batches actually
merged) go through ``bench_check`` like every hardware-dependent claim.
"""

import os
import shutil
import tempfile
from concurrent.futures import ThreadPoolExecutor

import pytest

from _bench_utils import run_once
from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import CorpusSynthesizer, DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.engine import AnnotatorConfig, ProjectAnnotator
from repro.serve import AnnotationClient, AnnotationServer, ServeConfig
from repro.utils.timing import Stopwatch

NUM_REQUESTS = 6


@pytest.fixture(scope="module")
def serving_pipeline():
    dataset = TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=16, seed=61, num_user_classes=10),
        DatasetConfig(rarity_threshold=8, seed=61),
    )
    return TypilusPipeline.fit(
        dataset,
        EncoderConfig(family="graph", hidden_dim=24, gnn_steps=2, seed=61),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=3, graphs_per_batch=6, seed=61),
    )


@pytest.fixture(scope="module")
def request_payloads():
    """One small single-file project per simulated client."""
    entries = CorpusSynthesizer(SynthesisConfig(num_files=NUM_REQUESTS, seed=404)).generate()
    return [{entry.filename: entry.source} for entry in entries]


def _suggestion_key(suggestion):
    return (suggestion.scope, suggestion.name, suggestion.kind, suggestion.prediction.candidates)


def _report_keys(report):
    return {
        file_report.filename: [_suggestion_key(s) for s in file_report.suggestions]
        for file_report in report.files
    }


def _time(fn) -> float:
    stopwatch = Stopwatch()
    with stopwatch.measure("run"):
        fn()
    return stopwatch.sections["run"]


def test_serve_latency(benchmark, serving_pipeline, request_payloads, bench_check, bench_record):
    """Daemon answers match the one-shot engine; concurrency coalesces work."""
    workdir = tempfile.mkdtemp(prefix="typilus-bench-serve-")
    socket_path = os.path.join(workdir, "daemon.sock")
    annotator_config = AnnotatorConfig(use_type_checker=False)
    server = AnnotationServer(
        serving_pipeline,
        socket_path,
        annotator_config=annotator_config,
        serve_config=ServeConfig(batch_window_seconds=0.1),
    ).start()
    client = AnnotationClient(socket_path)
    try:
        client.wait_until_ready(timeout=10.0)
        direct = ProjectAnnotator(serving_pipeline, annotator_config)

        def measure():
            client.annotate_sources(request_payloads[0])  # warm-up round trip
            serial_seconds = _time(
                lambda: [client.annotate_sources(payload) for payload in request_payloads]
            )
            with ThreadPoolExecutor(max_workers=NUM_REQUESTS) as pool:
                concurrent_reports: list = []
                concurrent_seconds = _time(
                    lambda: concurrent_reports.extend(
                        pool.map(client.annotate_sources, request_payloads)
                    )
                )
            # Parity: every concurrent (micro-batched) answer equals the
            # one-shot engine's answer for the same sources.
            for payload, report in zip(request_payloads, concurrent_reports):
                assert _report_keys(report) == _report_keys(direct.annotate_sources(payload))
            stats = client.stats()
            return {
                "requests": NUM_REQUESTS,
                "serial_seconds": serial_seconds,
                "serial_latency_ms": 1000.0 * serial_seconds / NUM_REQUESTS,
                "concurrent_seconds": concurrent_seconds,
                "largest_batch": stats["largest_batch"],
                "micro_batches": stats["micro_batches"],
                "speedup_concurrent": serial_seconds / concurrent_seconds,
            }

        result = run_once(benchmark, measure)
    finally:
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)
    print(
        f"\nserve: serial {result['serial_latency_ms']:.1f}ms/request, "
        f"{NUM_REQUESTS} concurrent in {result['concurrent_seconds'] * 1000:.0f}ms "
        f"({result['speedup_concurrent']:.1f}x, largest micro-batch {result['largest_batch']})"
    )
    bench_record(
        serial_latency_ms=result["serial_latency_ms"],
        concurrent_seconds=result["concurrent_seconds"],
        largest_batch=result["largest_batch"],
        speedup_concurrent=result["speedup_concurrent"],
    )
    bench_check(result["largest_batch"] >= 2, "concurrent requests must coalesce into micro-batches")
    bench_check(
        result["speedup_concurrent"] >= 1.0,
        "micro-batched concurrent serving must not be slower than serial round trips",
    )
