"""Latency and micro-batching behaviour of the annotation daemon.

The serving claim of the refactor is twofold: a long-lived daemon answers
annotation requests without ever reloading the model, and **concurrent**
requests are coalesced into micro-batches that share one embedding pass
through the engine's batched suggestion path — without changing a single
answer.

This benchmark trains a small pipeline once, serves it over a Unix socket
and measures

* **serial latency** — one request at a time, per-request round trip;
* **concurrent wall time** — the same requests fired from parallel client
  threads, which the daemon's batching window coalesces.

Parity (daemon answers == one-shot :class:`ProjectAnnotator` answers,
suggestion for suggestion) is asserted unconditionally; the
timing/coalescing claims (concurrent ≤ serial total, batches actually
merged) go through ``bench_check`` like every hardware-dependent claim.
"""

import os
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from _bench_utils import latency_percentiles, run_once
from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import CorpusSynthesizer, DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.engine import AnnotatorConfig, ProjectAnnotator
from repro.serve import (
    AnnotationClient,
    AnnotationServer,
    FaultInjector,
    RetryPolicy,
    ServeConfig,
    ServeError,
    WorkerPool,
)
from repro.utils.timing import Stopwatch

NUM_REQUESTS = 6

#: Admission capacity for the overload axis; the flood sends twice this.
OVERLOAD_CAPACITY = 4

#: Requests per cell of the fleet worker-count x client-concurrency grid.
FLEET_REQUESTS = 16

#: The fleet scaling gate only binds where the hardware can parallelise.
FLEET_GATE_CORES = 4


@pytest.fixture(scope="module")
def serving_pipeline():
    dataset = TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=16, seed=61, num_user_classes=10),
        DatasetConfig(rarity_threshold=8, seed=61),
    )
    return TypilusPipeline.fit(
        dataset,
        EncoderConfig(family="graph", hidden_dim=24, gnn_steps=2, seed=61),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=3, graphs_per_batch=6, seed=61),
    )


@pytest.fixture(scope="module")
def request_payloads():
    """One small single-file project per simulated client."""
    entries = CorpusSynthesizer(SynthesisConfig(num_files=NUM_REQUESTS, seed=404)).generate()
    return [{entry.filename: entry.source} for entry in entries]


def _suggestion_key(suggestion):
    return (suggestion.scope, suggestion.name, suggestion.kind, suggestion.prediction.candidates)


def _report_keys(report):
    return {
        file_report.filename: [_suggestion_key(s) for s in file_report.suggestions]
        for file_report in report.files
    }


def _time(fn) -> float:
    stopwatch = Stopwatch()
    with stopwatch.measure("run"):
        fn()
    return stopwatch.sections["run"]


def _timed_call(fn, *args):
    """Run ``fn(*args)`` and return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - start


def test_serve_latency(benchmark, serving_pipeline, request_payloads, bench_check, bench_record):
    """Daemon answers match the one-shot engine; concurrency coalesces work."""
    workdir = tempfile.mkdtemp(prefix="typilus-bench-serve-")
    socket_path = os.path.join(workdir, "daemon.sock")
    annotator_config = AnnotatorConfig(use_type_checker=False)
    server = AnnotationServer(
        serving_pipeline,
        socket_path,
        annotator_config=annotator_config,
        serve_config=ServeConfig(batch_window_seconds=0.1),
    ).start()
    client = AnnotationClient(socket_path)
    try:
        client.wait_until_ready(timeout=10.0)
        direct = ProjectAnnotator(serving_pipeline, annotator_config)

        def measure():
            client.annotate_sources(request_payloads[0])  # warm-up round trip
            serial_latencies = []
            serial_seconds = _time(
                lambda: serial_latencies.extend(
                    _timed_call(client.annotate_sources, payload)[1]
                    for payload in request_payloads
                )
            )
            with ThreadPoolExecutor(max_workers=NUM_REQUESTS) as pool:
                concurrent_timed: list = []
                concurrent_seconds = _time(
                    lambda: concurrent_timed.extend(
                        pool.map(lambda p: _timed_call(client.annotate_sources, p), request_payloads)
                    )
                )
            concurrent_reports = [report for report, _ in concurrent_timed]
            concurrent_latencies = [seconds for _, seconds in concurrent_timed]
            # Parity: every concurrent (micro-batched) answer equals the
            # one-shot engine's answer for the same sources.
            for payload, report in zip(request_payloads, concurrent_reports):
                assert _report_keys(report) == _report_keys(direct.annotate_sources(payload))
            stats = client.stats()
            return {
                "requests": NUM_REQUESTS,
                "serial_seconds": serial_seconds,
                "serial_latency_ms": 1000.0 * serial_seconds / NUM_REQUESTS,
                "concurrent_seconds": concurrent_seconds,
                "largest_batch": stats["largest_batch"],
                "micro_batches": stats["micro_batches"],
                "speedup_concurrent": serial_seconds / concurrent_seconds,
                **latency_percentiles(serial_latencies, prefix="serial_"),
                **latency_percentiles(concurrent_latencies, prefix="concurrent_"),
            }

        result = run_once(benchmark, measure)
    finally:
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)
    print(
        f"\nserve: serial {result['serial_latency_ms']:.1f}ms/request "
        f"(p50 {result['serial_p50_ms']:.1f} / p99 {result['serial_p99_ms']:.1f}ms), "
        f"{NUM_REQUESTS} concurrent in {result['concurrent_seconds'] * 1000:.0f}ms "
        f"({result['speedup_concurrent']:.1f}x, largest micro-batch {result['largest_batch']})"
    )
    bench_record(
        serial_latency_ms=result["serial_latency_ms"],
        concurrent_seconds=result["concurrent_seconds"],
        largest_batch=result["largest_batch"],
        speedup_concurrent=result["speedup_concurrent"],
        serial_p50_ms=result["serial_p50_ms"],
        serial_p95_ms=result["serial_p95_ms"],
        serial_p99_ms=result["serial_p99_ms"],
        concurrent_p50_ms=result["concurrent_p50_ms"],
        concurrent_p95_ms=result["concurrent_p95_ms"],
        concurrent_p99_ms=result["concurrent_p99_ms"],
    )
    bench_check(result["largest_batch"] >= 2, "concurrent requests must coalesce into micro-batches")
    bench_check(
        result["speedup_concurrent"] >= 1.0,
        "micro-batched concurrent serving must not be slower than serial round trips",
    )


def test_serve_overload_axis(benchmark, serving_pipeline, request_payloads, bench_check, bench_record):
    """Behaviour at 2x admission capacity: sheds are immediate and definitive,
    admitted requests all complete (goodput), nothing hangs.

    A fault-injection gate pins the batcher so the flood deterministically
    overfills admission; the drain is then timed from gate release.
    """
    workdir = tempfile.mkdtemp(prefix="typilus-bench-overload-")
    socket_path = os.path.join(workdir, "daemon.sock")
    gate = threading.Event()
    injector = FaultInjector().arm("slow_batch", times=None, gate=gate)
    server = AnnotationServer(
        serving_pipeline,
        socket_path,
        annotator_config=AnnotatorConfig(use_type_checker=False),
        serve_config=ServeConfig(
            batch_window_seconds=0.01,
            max_batch_requests=2,
            max_queue_depth=OVERLOAD_CAPACITY,
        ),
        fault_injector=injector,
    ).start()
    client = AnnotationClient(socket_path)
    flood_size = 2 * OVERLOAD_CAPACITY
    payloads = [request_payloads[i % len(request_payloads)] for i in range(flood_size)]
    try:
        client.wait_until_ready(timeout=10.0)

        def attempt(payload):
            start = time.perf_counter()
            try:
                report = AnnotationClient(socket_path).annotate_sources(payload)
                return ("ok", report, time.perf_counter() - start)
            except ServeError as error:
                return (error.kind, error, time.perf_counter() - start)

        def measure():
            # pin the batcher on a sacrificial request, then flood past capacity
            pool = ThreadPoolExecutor(max_workers=flood_size + 1)
            sacrificial = pool.submit(client.annotate_sources, request_payloads[0])
            assert injector.wait_for("slow_batch"), "batcher never reached the gate"
            futures = [pool.submit(attempt, payload) for payload in payloads]
            # sheds return immediately; wait until every flood request is
            # either shed or admitted before timing the drain
            deadline_probe = AnnotationClient(socket_path)

            def settled() -> bool:
                shed = deadline_probe.stats()["shed_requests"]
                admitted = deadline_probe.ping()["queue_depth"] - 1  # minus the pinned request
                return shed + admitted >= flood_size

            settle_deadline = time.monotonic() + 60.0
            while not settled():
                assert time.monotonic() < settle_deadline, "flood never settled"
                time.sleep(0.005)
            drain_seconds = _time(lambda: (gate.set(), [f.result(timeout=120) for f in futures]))
            outcomes = [future.result() for future in futures]
            assert sacrificial.result(timeout=120).num_files >= 1
            pool.shutdown()
            oks = sum(1 for kind, _, _ in outcomes if kind == "ok")
            sheds = sum(1 for kind, _, _ in outcomes if kind == "overloaded")
            hints = [
                error.retry_after_seconds for kind, error, _ in outcomes if kind == "overloaded"
            ]
            admitted_latencies = [seconds for kind, _, seconds in outcomes if kind == "ok"]
            shed_latencies = [seconds for kind, _, seconds in outcomes if kind == "overloaded"]
            # a client that backs off and retries wins through once load clears
            retrying = AnnotationClient(
                socket_path, retry_policy=RetryPolicy(max_attempts=6, base_delay_seconds=0.02)
            )
            assert retrying.annotate_sources(request_payloads[0]).num_files >= 1
            stats = client.stats()
            return {
                "overload_requests": flood_size,
                "overload_capacity": OVERLOAD_CAPACITY,
                "completed": oks,
                "shed": sheds,
                "shed_ratio": sheds / flood_size,
                "goodput_rps": oks / drain_seconds if drain_seconds > 0 else 0.0,
                "drain_seconds": drain_seconds,
                "retry_hints": hints,
                "stats_shed_requests": stats["shed_requests"],
                "outcome_kinds": sorted({kind for kind, _, _ in outcomes}),
                **latency_percentiles(admitted_latencies, prefix="admitted_"),
                **latency_percentiles(shed_latencies, prefix="shed_"),
            }

        result = run_once(benchmark, measure)
    finally:
        gate.set()
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)
    print(
        f"\noverload: {result['overload_requests']} requests at capacity "
        f"{result['overload_capacity']}: {result['completed']} completed, {result['shed']} shed "
        f"(ratio {result['shed_ratio']:.2f}), goodput {result['goodput_rps']:.1f} req/s"
    )
    bench_record(
        overload_requests=result["overload_requests"],
        overload_capacity=result["overload_capacity"],
        overload_completed=result["completed"],
        overload_shed=result["shed"],
        overload_shed_ratio=result["shed_ratio"],
        overload_goodput_rps=result["goodput_rps"],
        admitted_p50_ms=result["admitted_p50_ms"],
        admitted_p95_ms=result["admitted_p95_ms"],
        admitted_p99_ms=result["admitted_p99_ms"],
        shed_p50_ms=result["shed_p50_ms"],
        shed_p95_ms=result["shed_p95_ms"],
        shed_p99_ms=result["shed_p99_ms"],
    )
    bench_check(result["shed"] >= 1, "a 2x-capacity flood must shed at least one request")
    bench_check(
        result["completed"] + result["shed"] == result["overload_requests"],
        "every flood request must get a definitive outcome (completed or shed), never a hang",
    )
    bench_check(
        set(result["outcome_kinds"]) <= {"ok", "overloaded"},
        "flood outcomes must be success or an overloaded shed, nothing else",
    )
    bench_check(
        all(hint > 0 for hint in result["retry_hints"]),
        "every shed must carry a positive retry_after_seconds hint",
    )


# ---------------------------------------------------------------------------
# Fleet tier: worker-count x client-concurrency scaling, flat per-worker RSS
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def raw_model_dir(serving_pipeline, tmp_path_factory):
    """The serving pipeline saved in the raw (memory-mappable) layout."""
    path = tmp_path_factory.mktemp("fleet-model") / "pipeline"
    serving_pipeline.save(path, typespace_layout="raw")
    return path


def _run_fleet_cell(model_dir, workers, concurrency, payloads):
    """One grid cell: serve with N worker processes, fire requests at a
    fixed client concurrency, return goodput and per-request latencies."""
    workdir = tempfile.mkdtemp(prefix="typilus-bench-fleet-")
    socket_path = os.path.join(workdir, "daemon.sock")
    pool = WorkerPool(
        model_dir, workers, annotator_config=AnnotatorConfig(use_type_checker=False)
    )
    server = AnnotationServer(
        None,
        socket_path,
        serve_config=ServeConfig(batch_window_seconds=0.01, max_batch_requests=2),
        worker_pool=pool,
    )
    try:
        server.start()
        client = AnnotationClient(socket_path)
        client.wait_until_ready(timeout=120.0)
        client.annotate_sources(payloads[0])  # warm-up round trip
        with ThreadPoolExecutor(max_workers=concurrency) as executor:
            timed: list = []
            wall = _time(
                lambda: timed.extend(
                    executor.map(lambda p: _timed_call(client.annotate_sources, p), payloads)
                )
            )
        assert all(report.num_files >= 1 for report, _ in timed)
        stats = client.stats()
        return {
            "wall_seconds": wall,
            "goodput_rps": len(payloads) / wall,
            "latencies": [seconds for _, seconds in timed],
            "worker_batches": [row["batches"] for row in stats.get("workers", [])],
        }
    finally:
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)


def test_serve_fleet_scaling(benchmark, raw_model_dir, request_payloads, bench_check, bench_record):
    """Throughput across the worker-count x client-concurrency grid.

    The fleet claim: with the annotation work moved into N processes, a
    concurrent client load sees close-to-linear goodput scaling — gated at
    >=2x for workers=4 wherever the hardware has >=4 cores.
    """
    payloads = [request_payloads[i % len(request_payloads)] for i in range(FLEET_REQUESTS)]
    cells = [(1, 1), (1, 8), (4, 8)]

    def measure():
        return {
            (workers, concurrency): _run_fleet_cell(raw_model_dir, workers, concurrency, payloads)
            for workers, concurrency in cells
        }

    grid = run_once(benchmark, measure)
    speedup = grid[(4, 8)]["goodput_rps"] / grid[(1, 8)]["goodput_rps"]
    cores = os.cpu_count() or 1
    recorded = {"fleet_requests": FLEET_REQUESTS, "fleet_speedup_w4": speedup, "fleet_cores": cores}
    for (workers, concurrency), cell in grid.items():
        prefix = f"fleet_w{workers}_c{concurrency}_"
        recorded[f"{prefix}goodput_rps"] = cell["goodput_rps"]
        recorded[f"{prefix}wall_seconds"] = cell["wall_seconds"]
        recorded.update(latency_percentiles(cell["latencies"], prefix=prefix))
    bench_record(**recorded)
    for (workers, concurrency), cell in sorted(grid.items()):
        print(
            f"\nfleet w{workers} c{concurrency}: {cell['goodput_rps']:.1f} req/s, "
            f"p50 {1000 * np.percentile(cell['latencies'], 50):.0f}ms / "
            f"p99 {1000 * np.percentile(cell['latencies'], 99):.0f}ms, "
            f"batches per worker {cell['worker_batches']}"
        )
    print(f"fleet speedup at workers=4: {speedup:.2f}x on {cores} cores")
    bench_check(
        sum(1 for batches in grid[(4, 8)]["worker_batches"] if batches > 0) >= 2,
        "a concurrent load on 4 workers must actually spread across workers",
    )
    bench_check(
        speedup >= 2.0 or cores < FLEET_GATE_CORES,
        f"4 workers must deliver >=2x the goodput of 1 worker on >= "
        f"{FLEET_GATE_CORES} cores (got {speedup:.2f}x on {cores})",
    )


def test_serve_fleet_worker_rss_flat(
    benchmark, raw_model_dir, request_payloads, bench_record, tmp_path_factory
):
    """Per-worker private RSS must not scale with the marker matrix.

    Workers map the raw-layout ``embeddings.npy`` read-only, so the matrix
    occupies physical memory once for the whole fleet.  This is asserted
    **hard** (not `bench_check`): grow the marker matrix by tens of
    megabytes, serve with the same worker count, and the per-worker private
    RSS delta must stay well under the matrix delta.
    """
    from repro.core import TypilusPipeline

    big_dir = tmp_path_factory.mktemp("fleet-model-big") / "pipeline"
    grown = TypilusPipeline.load(raw_model_dir, mmap_typespace=False)
    space = grown.type_space
    extra = 150_000
    rng = np.random.default_rng(17)
    space.add_markers(
        [f"Synthetic{position % 64}" for position in range(extra)],
        rng.normal(size=(extra, space.dim)).astype(space.dtype),
        source="bench:rss",
    )
    grown.save(big_dir, typespace_layout="raw")

    def probe(model_dir):
        """Per-worker RSS of a 2-worker fleet, after load and after serving.

        The *loaded* footprint carries the hard claim (the mapped matrix is
        shared, only the columnar metadata is private).  The *serving*
        footprint additionally holds query-time temporaries, which the
        engine's query chunking bounds at a constant (~32MB of distance
        matrix) independent of marker count — recorded for observability.
        """
        pool = WorkerPool(
            model_dir, 2, annotator_config=AnnotatorConfig(use_type_checker=False)
        ).start()
        try:
            loaded, serving = [], []
            handles = [pool.lease(timeout=60.0) for _ in range(2)]
            for handle in handles:
                loaded.append(handle.request({"op": "ping"}))
                pool.annotate(handle, request_payloads[0])  # build the query index
                serving.append(handle.request({"op": "ping"}))
            for handle in handles:
                pool.release(handle)
            return {"loaded": loaded, "serving": serving}
        finally:
            pool.close()

    def measure():
        return {"small": probe(raw_model_dir), "big": probe(big_dir)}

    rows = run_once(benchmark, measure)
    small, big = rows["small"], rows["big"]
    all_rows = small["loaded"] + small["serving"] + big["loaded"] + big["serving"]
    if any(row.get("private_rss_bytes") is None for row in all_rows):
        pytest.skip("per-process private RSS unavailable (no /proc/self/smaps_rollup)")
    assert all(row["mmap"] for row in all_rows), (
        "raw-layout workers must serve from a memory-mapped marker matrix"
    )
    matrix_delta = big["loaded"][0]["marker_bytes"] - small["loaded"][0]["marker_bytes"]
    assert matrix_delta >= 8 * 1024 * 1024, "the grown matrix must dwarf measurement noise"

    def worst(rows_list):
        return max(row["private_rss_bytes"] for row in rows_list)

    loaded_delta = worst(big["loaded"]) - worst(small["loaded"])
    serving_delta = worst(big["serving"]) - worst(small["serving"])
    print(
        f"\nfleet RSS: matrix +{matrix_delta / 1e6:.1f}MB, per-worker private RSS "
        f"+{loaded_delta / 1e6:.1f}MB loaded / +{serving_delta / 1e6:.1f}MB serving "
        f"(loaded small {worst(small['loaded']) / 1e6:.1f}MB, big {worst(big['loaded']) / 1e6:.1f}MB)"
    )
    bench_record(
        rss_matrix_delta_bytes=matrix_delta,
        rss_worker_loaded_delta_bytes=loaded_delta,
        rss_worker_serving_delta_bytes=serving_delta,
        rss_worker_loaded_small_bytes=worst(small["loaded"]),
        rss_worker_loaded_big_bytes=worst(big["loaded"]),
        rss_worker_serving_small_bytes=worst(small["serving"]),
        rss_worker_serving_big_bytes=worst(big["serving"]),
    )
    # The hard fleet-memory claim: the mapped matrix is shared, so a worker's
    # private RSS may grow only with the columnar metadata (codes + sources),
    # never with the matrix itself.
    assert loaded_delta < matrix_delta / 2, (
        f"per-worker private RSS grew {loaded_delta} bytes against a "
        f"{matrix_delta}-byte matrix growth — the marker matrix is being copied "
        f"into worker memory instead of memory-mapped"
    )
