"""Latency and micro-batching behaviour of the annotation daemon.

The serving claim of the refactor is twofold: a long-lived daemon answers
annotation requests without ever reloading the model, and **concurrent**
requests are coalesced into micro-batches that share one embedding pass
through the engine's batched suggestion path — without changing a single
answer.

This benchmark trains a small pipeline once, serves it over a Unix socket
and measures

* **serial latency** — one request at a time, per-request round trip;
* **concurrent wall time** — the same requests fired from parallel client
  threads, which the daemon's batching window coalesces.

Parity (daemon answers == one-shot :class:`ProjectAnnotator` answers,
suggestion for suggestion) is asserted unconditionally; the
timing/coalescing claims (concurrent ≤ serial total, batches actually
merged) go through ``bench_check`` like every hardware-dependent claim.
"""

import os
import shutil
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from _bench_utils import run_once
from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import CorpusSynthesizer, DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.engine import AnnotatorConfig, ProjectAnnotator
from repro.serve import AnnotationClient, AnnotationServer, FaultInjector, RetryPolicy, ServeConfig, ServeError
from repro.utils.timing import Stopwatch

NUM_REQUESTS = 6

#: Admission capacity for the overload axis; the flood sends twice this.
OVERLOAD_CAPACITY = 4


@pytest.fixture(scope="module")
def serving_pipeline():
    dataset = TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=16, seed=61, num_user_classes=10),
        DatasetConfig(rarity_threshold=8, seed=61),
    )
    return TypilusPipeline.fit(
        dataset,
        EncoderConfig(family="graph", hidden_dim=24, gnn_steps=2, seed=61),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=3, graphs_per_batch=6, seed=61),
    )


@pytest.fixture(scope="module")
def request_payloads():
    """One small single-file project per simulated client."""
    entries = CorpusSynthesizer(SynthesisConfig(num_files=NUM_REQUESTS, seed=404)).generate()
    return [{entry.filename: entry.source} for entry in entries]


def _suggestion_key(suggestion):
    return (suggestion.scope, suggestion.name, suggestion.kind, suggestion.prediction.candidates)


def _report_keys(report):
    return {
        file_report.filename: [_suggestion_key(s) for s in file_report.suggestions]
        for file_report in report.files
    }


def _time(fn) -> float:
    stopwatch = Stopwatch()
    with stopwatch.measure("run"):
        fn()
    return stopwatch.sections["run"]


def test_serve_latency(benchmark, serving_pipeline, request_payloads, bench_check, bench_record):
    """Daemon answers match the one-shot engine; concurrency coalesces work."""
    workdir = tempfile.mkdtemp(prefix="typilus-bench-serve-")
    socket_path = os.path.join(workdir, "daemon.sock")
    annotator_config = AnnotatorConfig(use_type_checker=False)
    server = AnnotationServer(
        serving_pipeline,
        socket_path,
        annotator_config=annotator_config,
        serve_config=ServeConfig(batch_window_seconds=0.1),
    ).start()
    client = AnnotationClient(socket_path)
    try:
        client.wait_until_ready(timeout=10.0)
        direct = ProjectAnnotator(serving_pipeline, annotator_config)

        def measure():
            client.annotate_sources(request_payloads[0])  # warm-up round trip
            serial_seconds = _time(
                lambda: [client.annotate_sources(payload) for payload in request_payloads]
            )
            with ThreadPoolExecutor(max_workers=NUM_REQUESTS) as pool:
                concurrent_reports: list = []
                concurrent_seconds = _time(
                    lambda: concurrent_reports.extend(
                        pool.map(client.annotate_sources, request_payloads)
                    )
                )
            # Parity: every concurrent (micro-batched) answer equals the
            # one-shot engine's answer for the same sources.
            for payload, report in zip(request_payloads, concurrent_reports):
                assert _report_keys(report) == _report_keys(direct.annotate_sources(payload))
            stats = client.stats()
            return {
                "requests": NUM_REQUESTS,
                "serial_seconds": serial_seconds,
                "serial_latency_ms": 1000.0 * serial_seconds / NUM_REQUESTS,
                "concurrent_seconds": concurrent_seconds,
                "largest_batch": stats["largest_batch"],
                "micro_batches": stats["micro_batches"],
                "speedup_concurrent": serial_seconds / concurrent_seconds,
            }

        result = run_once(benchmark, measure)
    finally:
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)
    print(
        f"\nserve: serial {result['serial_latency_ms']:.1f}ms/request, "
        f"{NUM_REQUESTS} concurrent in {result['concurrent_seconds'] * 1000:.0f}ms "
        f"({result['speedup_concurrent']:.1f}x, largest micro-batch {result['largest_batch']})"
    )
    bench_record(
        serial_latency_ms=result["serial_latency_ms"],
        concurrent_seconds=result["concurrent_seconds"],
        largest_batch=result["largest_batch"],
        speedup_concurrent=result["speedup_concurrent"],
    )
    bench_check(result["largest_batch"] >= 2, "concurrent requests must coalesce into micro-batches")
    bench_check(
        result["speedup_concurrent"] >= 1.0,
        "micro-batched concurrent serving must not be slower than serial round trips",
    )


def test_serve_overload_axis(benchmark, serving_pipeline, request_payloads, bench_check, bench_record):
    """Behaviour at 2x admission capacity: sheds are immediate and definitive,
    admitted requests all complete (goodput), nothing hangs.

    A fault-injection gate pins the batcher so the flood deterministically
    overfills admission; the drain is then timed from gate release.
    """
    workdir = tempfile.mkdtemp(prefix="typilus-bench-overload-")
    socket_path = os.path.join(workdir, "daemon.sock")
    gate = threading.Event()
    injector = FaultInjector().arm("slow_batch", times=None, gate=gate)
    server = AnnotationServer(
        serving_pipeline,
        socket_path,
        annotator_config=AnnotatorConfig(use_type_checker=False),
        serve_config=ServeConfig(
            batch_window_seconds=0.01,
            max_batch_requests=2,
            max_queue_depth=OVERLOAD_CAPACITY,
        ),
        fault_injector=injector,
    ).start()
    client = AnnotationClient(socket_path)
    flood_size = 2 * OVERLOAD_CAPACITY
    payloads = [request_payloads[i % len(request_payloads)] for i in range(flood_size)]
    try:
        client.wait_until_ready(timeout=10.0)

        def attempt(payload):
            try:
                return ("ok", AnnotationClient(socket_path).annotate_sources(payload))
            except ServeError as error:
                return (error.kind, error)

        def measure():
            # pin the batcher on a sacrificial request, then flood past capacity
            pool = ThreadPoolExecutor(max_workers=flood_size + 1)
            sacrificial = pool.submit(client.annotate_sources, request_payloads[0])
            assert injector.wait_for("slow_batch"), "batcher never reached the gate"
            futures = [pool.submit(attempt, payload) for payload in payloads]
            # sheds return immediately; wait until every flood request is
            # either shed or admitted before timing the drain
            deadline_probe = AnnotationClient(socket_path)

            def settled() -> bool:
                shed = deadline_probe.stats()["shed_requests"]
                admitted = deadline_probe.ping()["queue_depth"] - 1  # minus the pinned request
                return shed + admitted >= flood_size

            settle_deadline = time.monotonic() + 60.0
            while not settled():
                assert time.monotonic() < settle_deadline, "flood never settled"
                time.sleep(0.005)
            drain_seconds = _time(lambda: (gate.set(), [f.result(timeout=120) for f in futures]))
            outcomes = [future.result() for future in futures]
            assert sacrificial.result(timeout=120).num_files >= 1
            pool.shutdown()
            oks = sum(1 for kind, _ in outcomes if kind == "ok")
            sheds = sum(1 for kind, _ in outcomes if kind == "overloaded")
            hints = [
                error.retry_after_seconds for kind, error in outcomes if kind == "overloaded"
            ]
            # a client that backs off and retries wins through once load clears
            retrying = AnnotationClient(
                socket_path, retry_policy=RetryPolicy(max_attempts=6, base_delay_seconds=0.02)
            )
            assert retrying.annotate_sources(request_payloads[0]).num_files >= 1
            stats = client.stats()
            return {
                "overload_requests": flood_size,
                "overload_capacity": OVERLOAD_CAPACITY,
                "completed": oks,
                "shed": sheds,
                "shed_ratio": sheds / flood_size,
                "goodput_rps": oks / drain_seconds if drain_seconds > 0 else 0.0,
                "drain_seconds": drain_seconds,
                "retry_hints": hints,
                "stats_shed_requests": stats["shed_requests"],
                "outcome_kinds": sorted({kind for kind, _ in outcomes}),
            }

        result = run_once(benchmark, measure)
    finally:
        gate.set()
        server.close()
        shutil.rmtree(workdir, ignore_errors=True)
    print(
        f"\noverload: {result['overload_requests']} requests at capacity "
        f"{result['overload_capacity']}: {result['completed']} completed, {result['shed']} shed "
        f"(ratio {result['shed_ratio']:.2f}), goodput {result['goodput_rps']:.1f} req/s"
    )
    bench_record(
        overload_requests=result["overload_requests"],
        overload_capacity=result["overload_capacity"],
        overload_completed=result["completed"],
        overload_shed=result["shed"],
        overload_shed_ratio=result["shed_ratio"],
        overload_goodput_rps=result["goodput_rps"],
    )
    bench_check(result["shed"] >= 1, "a 2x-capacity flood must shed at least one request")
    bench_check(
        result["completed"] + result["shed"] == result["overload_requests"],
        "every flood request must get a definitive outcome (completed or shed), never a hang",
    )
    bench_check(
        set(result["outcome_kinds"]) <= {"ok", "overloaded"},
        "flood outcomes must be success or an overloaded shed, nothing else",
    )
    bench_check(
        all(hint > 0 for hint in result["retry_hints"]),
        "every shed must carry a positive retry_after_seconds hint",
    )
