"""Throughput of parallel, cache-backed corpus ingestion.

The tentpole claim of the ingest subsystem is that dataset preparation is no
longer serial-once-per-run: graph extraction fans out over a process pool
(pure workers, deterministic order) and a content-addressed cache makes
re-ingestion ~O(changed files).  This benchmark measures three regimes over
a multi-file synthetic corpus:

* **cold serial** — ``jobs=1``, no cache: the pre-refactor behaviour;
* **cold parallel** — ``jobs=4``: must be ≥ 2× faster than cold serial on
  hardware with at least four cores (the assertion is skipped on smaller
  machines and under ``--quick``, where the numbers are recorded instead);
* **warm cache** — a second ingestion with one file edited: only the edited
  file may be re-extracted, everything else must be served from the cache.

Parallel and serial ingestion must also agree byte-for-byte — that part is
asserted unconditionally, on any hardware.
"""

import os

import pytest

from _bench_utils import run_once
from repro.corpus import IngestConfig, ingest_sources
from repro.corpus.serialize import graph_to_payload
from repro.corpus.synthesis import CorpusSynthesizer, SynthesisConfig
from repro.utils.timing import Stopwatch

PARALLEL_JOBS = 4
QUICK_FILES = 12
# Large enough that per-file extraction dominates the fixed pool start-up
# cost, so the 4-worker speedup reflects parallelism, not overhead.
FULL_FILES = 160


@pytest.fixture(scope="module")
def corpus(quick) -> dict[str, str]:
    num_files = QUICK_FILES if quick else FULL_FILES
    synthesizer = CorpusSynthesizer(
        SynthesisConfig(num_files=num_files, seed=33, duplicate_fraction=0.0, num_user_classes=24)
    )
    return {entry.filename: entry.source for entry in synthesizer.generate()}


def _time(fn) -> float:
    stopwatch = Stopwatch()
    with stopwatch.measure("run"):
        fn()
    return stopwatch.sections["run"]


def test_parallel_ingestion_speedup(benchmark, corpus, quick, bench_check, bench_record):
    """Cold-cache parallel ingestion beats serial ≥ 2× on ≥ 4 cores."""

    def measure():
        serial_holder: list = []
        parallel_holder: list = []
        serial_seconds = _time(
            lambda: serial_holder.extend(ingest_sources(corpus, IngestConfig(jobs=1))[0])
        )
        parallel_seconds = _time(
            lambda: parallel_holder.extend(ingest_sources(corpus, IngestConfig(jobs=PARALLEL_JOBS))[0])
        )
        return {
            "files": len(corpus),
            "serial_seconds": serial_seconds,
            "parallel_seconds": parallel_seconds,
            "speedup": serial_seconds / parallel_seconds,
            "serial": serial_holder,
            "parallel": parallel_holder,
        }

    result = run_once(benchmark, measure)
    print(
        f"\ncold serial: {result['files'] / result['serial_seconds']:.0f} files/s, "
        f"cold parallel (jobs={PARALLEL_JOBS}): {result['files'] / result['parallel_seconds']:.0f} files/s "
        f"({result['speedup']:.2f}x)"
    )
    bench_record(
        files=result["files"],
        jobs=PARALLEL_JOBS,
        serial_seconds=result["serial_seconds"],
        parallel_seconds=result["parallel_seconds"],
        speedup=result["speedup"],
        cores=os.cpu_count(),
    )

    # Determinism is asserted on any hardware: the parallel dataset is
    # byte-for-byte the serial one.
    assert [extracted.filename for extracted in result["serial"]] == [
        extracted.filename for extracted in result["parallel"]
    ]
    assert [graph_to_payload(extracted.graph) for extracted in result["serial"]] == [
        graph_to_payload(extracted.graph) for extracted in result["parallel"]
    ]

    # The speed claim needs the cores to exist.
    if (os.cpu_count() or 1) >= PARALLEL_JOBS:
        bench_check(
            result["speedup"] >= 2.0,
            f"parallel ingestion managed only {result['speedup']:.2f}x over serial",
        )


def test_warm_cache_is_incremental(benchmark, corpus, tmp_path, bench_check, bench_record):
    """Re-ingestion after one edit re-extracts exactly the changed file."""
    cache_dir = tmp_path / "graph-cache"
    edited_name = sorted(corpus)[0]
    edited = dict(corpus)
    edited[edited_name] = corpus[edited_name] + "\n\nEXTRA_SENTINEL: int = 1\n"

    def measure():
        reports = {}
        cold_seconds = _time(
            lambda: reports.__setitem__("cold", ingest_sources(corpus, IngestConfig(jobs=1, cache_dir=cache_dir))[1])
        )
        warm_seconds = _time(
            lambda: reports.__setitem__("warm", ingest_sources(corpus, IngestConfig(jobs=1, cache_dir=cache_dir))[1])
        )
        incremental_seconds = _time(
            lambda: reports.__setitem__(
                "incremental", ingest_sources(edited, IngestConfig(jobs=1, cache_dir=cache_dir))[1]
            )
        )
        return {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "incremental_seconds": incremental_seconds,
            "reports": reports,
        }

    result = run_once(benchmark, measure)
    reports = result["reports"]
    print(
        f"\ncold: {result['cold_seconds'] * 1000:.0f}ms, warm: {result['warm_seconds'] * 1000:.0f}ms, "
        f"warm+1 edit: {result['incremental_seconds'] * 1000:.0f}ms over {len(corpus)} files"
    )
    bench_record(
        files=len(corpus),
        cold_seconds=result["cold_seconds"],
        warm_seconds=result["warm_seconds"],
        incremental_seconds=result["incremental_seconds"],
    )

    # Cache behaviour is exact, so it is asserted even in quick mode.
    assert reports["cold"].extracted == len(corpus) and reports["cold"].cache_hits == 0
    assert reports["warm"].extracted == 0 and reports["warm"].cache_hits == len(corpus)
    assert reports["incremental"].extracted == 1
    assert reports["incremental"].cache_hits == len(corpus) - 1

    # The timing side of "~O(changed files)": skipping all parses must beat
    # doing all of them.
    bench_check(result["warm_seconds"] < result["cold_seconds"], "warm cache slower than cold ingestion")
    bench_check(
        result["incremental_seconds"] < result["cold_seconds"],
        "incremental re-ingestion slower than a full cold run",
    )
