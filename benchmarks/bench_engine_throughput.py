"""Throughput of the batched annotation engine vs. the legacy per-symbol path.

The tentpole claim of the engine refactor is that project-scale annotation is
batch-shaped end to end: one vectorized kNN query plus one numpy
scatter-accumulate for all symbols, instead of a Python-level
``nearest`` + dict-voting loop per symbol.  This benchmark measures
symbols/second over a 500-symbol corpus for

* the **legacy** per-symbol path (a faithful inline reproduction of the
  pre-refactor ``KNNTypePredictor.predict``: one index query and one Python
  scoring dict per symbol);
* the current per-symbol API (``predict`` in a loop — itself now routed
  through the batch machinery);
* the batched path (``predict_batch``).

The batched path must beat the legacy per-symbol path by at least 3×.
"""

import numpy as np
import pytest

from _bench_utils import run_once
from repro.core import KNNTypePredictor, TypePrediction, TypeSpace
from repro.utils.timing import Stopwatch

NUM_SYMBOLS = 500
NUM_MARKERS = 1000
NUM_TYPES = 40
DIM = 32
K = 10
P = 1.0
EPSILON = 1e-6


@pytest.fixture(scope="module")
def populated_space() -> TypeSpace:
    rng = np.random.default_rng(7)
    space = TypeSpace(dim=DIM)
    type_names = [f"type_{index % NUM_TYPES}" for index in range(NUM_MARKERS)]
    space.add_markers(type_names, rng.normal(size=(NUM_MARKERS, DIM)), source="bench")
    space.index()  # build once, outside the timed region
    return space


@pytest.fixture(scope="module")
def query_embeddings() -> np.ndarray:
    return np.random.default_rng(8).normal(size=(NUM_SYMBOLS, DIM))


def _legacy_nearest(space: TypeSpace, embedding: np.ndarray, k: int) -> list[tuple[str, float]]:
    """The pre-refactor single-query index path: a broadcast distance per call."""
    points = space.marker_matrix()
    vector = np.asarray(embedding, dtype=np.float64).reshape(1, -1)
    distances = np.abs(vector[:, None, :] - points[None, :, :]).sum(axis=2)
    nearest = np.argpartition(distances, k - 1, axis=1)[:, :k]
    indices = nearest[0]
    row_distances = distances[0, indices]
    order = np.argsort(row_distances, kind="stable")
    type_names = _marker_type_names(space)
    return [
        (type_names[int(index)], float(distance))
        for index, distance in zip(indices[order], row_distances[order])
    ]


_TYPE_NAME_CACHE: dict[int, list[str]] = {}


def _marker_type_names(space: TypeSpace) -> list[str]:
    """Marker type names without per-call list copies (as legacy ``_markers`` access)."""
    names = _TYPE_NAME_CACHE.get(id(space))
    if names is None:
        names = [marker.type_name for marker in space.markers]
        _TYPE_NAME_CACHE[id(space)] = names
    return names


def _legacy_predict(space: TypeSpace, embedding: np.ndarray) -> TypePrediction:
    """The pre-refactor per-symbol path: one query + one Python scoring dict."""
    neighbours = _legacy_nearest(space, embedding, K)
    if not neighbours:
        return TypePrediction()
    scores: dict[str, float] = {}
    for type_name, distance in neighbours:
        weight = (distance + EPSILON) ** (-P)
        scores[type_name] = scores.get(type_name, 0.0) + weight
    normaliser = sum(scores.values())
    ranked = sorted(
        ((type_name, score / normaliser) for type_name, score in scores.items()),
        key=lambda item: (-item[1], item[0]),
    )
    return TypePrediction(candidates=ranked)


def _time(fn) -> float:
    stopwatch = Stopwatch()
    with stopwatch.measure("run"):
        fn()
    return stopwatch.sections["run"]


def test_batched_vs_per_symbol_prediction(benchmark, populated_space, query_embeddings, bench_check, bench_record):
    """Batched prediction beats the legacy per-symbol loop by ≥ 3× on 500 symbols."""
    predictor = KNNTypePredictor(populated_space, k=K, p=P, epsilon=EPSILON)

    def measure():
        legacy_seconds = _time(
            lambda: [_legacy_predict(populated_space, embedding) for embedding in query_embeddings]
        )
        loop_seconds = _time(
            lambda: [predictor.predict(embedding) for embedding in query_embeddings]
        )
        batched_seconds = _time(lambda: predictor.predict_batch(query_embeddings))
        return {
            "symbols": NUM_SYMBOLS,
            "legacy_rate": NUM_SYMBOLS / legacy_seconds,
            "predict_loop_rate": NUM_SYMBOLS / loop_seconds,
            "batched_rate": NUM_SYMBOLS / batched_seconds,
            "speedup_vs_legacy": legacy_seconds / batched_seconds,
            "speedup_vs_loop": loop_seconds / batched_seconds,
        }

    result = run_once(benchmark, measure)
    print(
        f"\nlegacy per-symbol: {result['legacy_rate']:.0f} symbols/s, "
        f"predict loop: {result['predict_loop_rate']:.0f} symbols/s, "
        f"batched: {result['batched_rate']:.0f} symbols/s "
        f"({result['speedup_vs_legacy']:.1f}x vs legacy, {result['speedup_vs_loop']:.1f}x vs loop)"
    )
    bench_record(
        batched_rate=result["batched_rate"],
        legacy_rate=result["legacy_rate"],
        speedup_vs_legacy=result["speedup_vs_legacy"],
    )
    bench_check(result["speedup_vs_legacy"] >= 3.0, "batched path must beat the legacy loop 3x")


def test_batched_prediction_consistency(benchmark, populated_space, query_embeddings):
    """All three paths predict identical top-1 types (batching changes speed, not answers)."""
    predictor = KNNTypePredictor(populated_space, k=K, p=P, epsilon=EPSILON)

    def measure():
        batched = predictor.predict_batch(query_embeddings)
        per_symbol = [predictor.predict(embedding) for embedding in query_embeddings]
        legacy = [_legacy_predict(populated_space, embedding) for embedding in query_embeddings]
        loop_matches = sum(
            1 for one, other in zip(per_symbol, batched) if one.top_type == other.top_type
        )
        legacy_matches = sum(
            1 for one, other in zip(legacy, batched) if one.top_type == other.top_type
        )
        return {"loop_matches": loop_matches, "legacy_matches": legacy_matches, "total": NUM_SYMBOLS}

    result = run_once(benchmark, measure)
    assert result["loop_matches"] == result["total"]
    assert result["legacy_matches"] == result["total"]
