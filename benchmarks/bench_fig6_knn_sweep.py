"""Figure 6: sweep of k and p in the kNN prediction rule (Eq. 5).

Alongside the paper's k/p sweep, this module benchmarks the marker-count
scale axis the serving tier exists for: exact brute-force vs the IVF index
on growing synthetic type maps, asserting both the recall floor (always)
and the sub-linear speedup (outside ``--quick``).
"""

import numpy as np
from _bench_utils import run_once

from repro.core import ExactL1Index, IVFIndex
from repro.evaluation import format_figure6, run_figure6, summarise_heatmap
from repro.utils.timing import Stopwatch


def test_fig6_knn_parameter_sweep(benchmark, settings, dataset, typilus_variant, bench_check, bench_record):
    result = run_once(
        benchmark,
        lambda: run_figure6(settings, dataset=dataset, variant=typilus_variant),
    )
    print("\n" + format_figure6(result))
    print("\nheadline:", summarise_heatmap(result))

    assert result.scores.shape == (len(result.k_values), len(result.p_values))
    assert (result.scores >= 0).all() and (result.scores <= 100).all()

    # The paper finds k=1 never wins: a wider neighbourhood with distance
    # weighting is at least as good as pure 1-NN.
    k1_best = float(result.scores[0].max())
    overall_best = float(result.scores.max())
    bench_record(k1_best=k1_best, overall_best=overall_best)
    bench_check(overall_best >= k1_best)


DIM = 16
NUM_CLUSTERS = 64
NUM_QUERIES = 256
K = 10


def _clustered_markers(n, seed):
    """Synthetic type-map embeddings: a mixture of tight clusters, the shape
    similarity learning produces (one cluster per type neighbourhood)."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=4.0, size=(NUM_CLUSTERS, DIM))
    assignment = rng.integers(NUM_CLUSTERS, size=n)
    return centers[assignment] + rng.normal(scale=0.3, size=(n, DIM))


def _time(fn) -> float:
    stopwatch = Stopwatch()
    with stopwatch.measure("run"):
        fn()
    return stopwatch.sections["run"]


def test_fig6_index_scale_axis(benchmark, quick, bench_check, bench_record):
    """IVF vs exact on growing marker counts: sub-linear time, bounded recall loss.

    The recall floor (recall@k ≥ 0.95 against the exact oracle) is a hard
    assertion at every scale, quick mode included — it is a correctness
    property of the index, not a hardware claim.  The ≥5× speedup at the top
    scale is hardware-dependent and goes through ``bench_check``.
    """
    scales = [10_000] if quick else [10_000, 50_000, 200_000]
    queries = _clustered_markers(NUM_QUERIES, seed=1)

    def measure():
        rows = []
        for scale in scales:
            markers = _clustered_markers(scale, seed=0)
            exact = ExactL1Index(markers)
            ivf = IVFIndex(markers, nlist=max(128, scale // 500), nprobe=16, seed=0)
            exact.query_batch_arrays(queries[:8], K)  # warm both paths before timing
            ivf.query_batch_arrays(queries[:8], K)
            exact_seconds = _time(lambda: exact.query_batch_arrays(queries, K))
            ivf_seconds = _time(lambda: ivf.query_batch_arrays(queries, K))
            oracle = exact.query_batch_arrays(queries, K)
            answer = ivf.query_batch_arrays(queries, K)
            hits = sum(
                len(set(answer.indices[row]) & set(oracle.indices[row]))
                for row in range(NUM_QUERIES)
            )
            rows.append(
                {
                    "scale": scale,
                    "exact_seconds": exact_seconds,
                    "ivf_seconds": ivf_seconds,
                    "recall_at_k": hits / (NUM_QUERIES * K),
                }
            )
        return rows

    rows = run_once(benchmark, measure)
    print()
    for row in rows:
        speedup = row["exact_seconds"] / max(row["ivf_seconds"], 1e-12)
        print(
            f"scale {row['scale']:>7}: exact {row['exact_seconds']*1e3:8.1f} ms  "
            f"ivf {row['ivf_seconds']*1e3:7.1f} ms  ({speedup:4.1f}x)  "
            f"recall@{K} {row['recall_at_k']:.3f}"
        )

    top = rows[-1]
    speedup_top_scale = top["exact_seconds"] / max(top["ivf_seconds"], 1e-12)
    bench_record(
        scales=[row["scale"] for row in rows],
        exact_seconds=[row["exact_seconds"] for row in rows],
        ivf_seconds=[row["ivf_seconds"] for row in rows],
        recall_at_k=[row["recall_at_k"] for row in rows],
        speedup_top_scale=speedup_top_scale,
    )
    for row in rows:  # the recall floor is a correctness gate, even in --quick
        assert row["recall_at_k"] >= 0.95, f"recall floor broken at scale {row['scale']}: {row}"
    bench_check(
        speedup_top_scale >= 5.0,
        f"IVF not sub-linear enough: {speedup_top_scale:.1f}x at {top['scale']} markers",
    )
