"""Figure 6: sweep of k and p in the kNN prediction rule (Eq. 5)."""

from _bench_utils import run_once

from repro.evaluation import format_figure6, run_figure6, summarise_heatmap


def test_fig6_knn_parameter_sweep(benchmark, settings, dataset, typilus_variant, bench_check, bench_record):
    result = run_once(
        benchmark,
        lambda: run_figure6(settings, dataset=dataset, variant=typilus_variant),
    )
    print("\n" + format_figure6(result))
    print("\nheadline:", summarise_heatmap(result))

    assert result.scores.shape == (len(result.k_values), len(result.p_values))
    assert (result.scores >= 0).all() and (result.scores <= 100).all()

    # The paper finds k=1 never wins: a wider neighbourhood with distance
    # weighting is at least as good as pure 1-NN.
    k1_best = float(result.scores[0].max())
    overall_best = float(result.scores.max())
    bench_record(k1_best=k1_best, overall_best=overall_best)
    bench_check(overall_best >= k1_best)
