"""Sec. 6.1 "Computational Speed": GNN vs biRNN training and inference time."""

from _bench_utils import run_once

from repro.evaluation import format_speed_comparison, run_speed_comparison


def test_speed_gnn_vs_birnn(benchmark, settings, dataset, bench_check, bench_record):
    result = run_once(benchmark, lambda: run_speed_comparison(settings, dataset=dataset))
    print("\n" + format_speed_comparison(result))
    bench_record(
        gnn_train_seconds_per_epoch=result.gnn_train_seconds_per_epoch,
        rnn_train_seconds_per_epoch=result.rnn_train_seconds_per_epoch,
        gnn_inference_seconds=result.gnn_inference_seconds,
        rnn_inference_seconds=result.rnn_inference_seconds,
    )

    # The paper reports the GNN trains ~60x and infers ~29x faster than the
    # biRNN on a GPU; on our CPU substrate the gap is smaller but the GNN
    # must still win both comparisons.
    bench_check(result.gnn_train_seconds_per_epoch < result.rnn_train_seconds_per_epoch)
    bench_check(result.gnn_inference_seconds < result.rnn_inference_seconds)
