"""Sec. 6 "Data": corpus statistics (type distribution, dedup, rare fraction)."""

from _bench_utils import run_once

from repro.evaluation import format_corpus_stats, run_corpus_stats


def test_corpus_statistics(benchmark, settings, dataset):
    result = run_once(benchmark, lambda: run_corpus_stats(settings, dataset=dataset))
    print("\n" + format_corpus_stats(result))
    # The corpus must reproduce the qualitative properties of Sec. 6: a
    # Zipf-like head of builtins plus a long tail of rarer types.
    assert result.summary["distinct_types"] >= 10
    assert result.rare_annotation_fraction > 0.0
    assert result.zipf_exponent > 0.5
    assert dict(result.top_types)  # the head exists
