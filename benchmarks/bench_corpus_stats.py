"""Sec. 6 "Data": corpus statistics (type distribution, dedup, rare fraction)."""

from _bench_utils import run_once

from repro.evaluation import format_corpus_stats, run_corpus_stats


def test_corpus_statistics(benchmark, settings, dataset, bench_check, bench_record):
    result = run_once(benchmark, lambda: run_corpus_stats(settings, dataset=dataset))
    print("\n" + format_corpus_stats(result))
    bench_record(
        distinct_types=result.summary["distinct_types"],
        rare_annotation_fraction=result.rare_annotation_fraction,
        zipf_exponent=result.zipf_exponent,
    )
    # The corpus must reproduce the qualitative properties of Sec. 6: a
    # Zipf-like head of builtins plus a long tail of rarer types.
    bench_check(result.summary["distinct_types"] >= 10)
    bench_check(result.rare_annotation_fraction > 0.0)
    bench_check(result.zipf_exponent > 0.5)
    assert dict(result.top_types)  # the head exists
