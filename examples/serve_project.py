"""Serve a trained pipeline as a long-lived annotation daemon.

The ROADMAP's north star is a deployed service: a model loaded once,
answering annotation traffic from many clients.  This example runs that
whole story in one process:

1. train a pipeline and persist it with ``TypilusPipeline.save``;
2. start :class:`repro.serve.AnnotationServer` on a Unix socket — the
   daemon a deployment would run via ``python -m repro.cli serve``;
3. fire **concurrent** annotation requests from several client threads;
   the daemon coalesces whatever arrives within its batching window into
   one micro-batch through the engine's batched suggestion path, so the
   clients share a single embedding pass (the printed stats show how many
   requests were merged);
4. adapt the type map *while the daemon is running*: an ``adapt`` request
   with examples of a new type extends the columnar TypeSpace and its
   index in place — no rebuild, no restart, no retraining (Sec. 4.2's
   open vocabulary, now at serving time);
5. overload a capacity-2 daemon on purpose: sheds come back as
   ``overloaded`` errors with a retry hint, and clients armed with a
   :class:`repro.serve.RetryPolicy` back off and win through;
6. hot-reload the daemon onto the originally saved model directory,
   undoing the adaptation without dropping a single request;
7. shut the daemon down cleanly over the same protocol.
"""

import tempfile
import threading
from pathlib import Path

from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import CorpusSynthesizer, DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.engine import AnnotatorConfig
from repro.serve import AnnotationClient, AnnotationServer, RetryPolicy, ServeConfig, ServeError

#: Annotated examples of a project-specific type the model never saw in
#: training; the running daemon learns it from these via one ``adapt`` call.
ADAPTATION_EXAMPLE = '''
def parse_invoice(payload: InvoiceRecord) -> InvoiceRecord:
    return payload


def archive_invoice(record: InvoiceRecord) -> InvoiceRecord:
    return record
'''


def main() -> None:
    print("training Typilus ...")
    dataset = TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=40, seed=23),
        DatasetConfig(rarity_threshold=12),
    )
    pipeline = TypilusPipeline.fit(
        dataset,
        EncoderConfig(family="graph", hidden_dim=32, gnn_steps=3),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=5, graphs_per_batch=8),
    )

    with tempfile.TemporaryDirectory() as workdir:
        model_dir = Path(workdir) / "model"
        pipeline.save(model_dir)
        served = TypilusPipeline.load(model_dir)  # what the daemon would load

        socket_path = Path(workdir) / "typilus.sock"
        server = AnnotationServer(
            served,
            socket_path,
            annotator_config=AnnotatorConfig(use_type_checker=False),
            serve_config=ServeConfig(batch_window_seconds=0.1),
        ).start()
        print(f"daemon listening on {socket_path}")

        try:
            client = AnnotationClient(socket_path)
            info = client.wait_until_ready()
            print(f"ready: {info['markers']} markers, dim {info['dim']}")

            # A handful of "users" annotating different files at the same time.
            projects = [
                {entry.filename: entry.source}
                for entry in CorpusSynthesizer(SynthesisConfig(num_files=4, seed=777)).generate()
            ]
            reports = [None] * len(projects)

            def annotate(position: int) -> None:
                reports[position] = client.annotate_sources(projects[position])

            threads = [
                threading.Thread(target=annotate, args=(position,)) for position in range(len(projects))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            for report in reports:
                for file_report in report.files:
                    print(
                        f"  {file_report.filename}: {file_report.num_suggested}/{file_report.num_symbols} "
                        "symbols suggested"
                    )
            stats = client.stats()
            print(
                f"micro-batching: {stats['annotate_requests']} requests answered in "
                f"{stats['micro_batches']} batch(es), largest batch {stats['largest_batch']}"
            )

            # Serving-time adaptation: teach the live daemon a brand-new type.
            before = client.ping()["markers"]
            adapted = client.adapt("InvoiceRecord", {"invoices.py": ADAPTATION_EXAMPLE})
            print(
                f"adapted: +{adapted['added_markers']} markers for 'InvoiceRecord' "
                f"({before} -> {adapted['markers']}) without a restart"
            )

            # Hot reload: swap back to the pipeline as originally saved on
            # disk — the adaptation above is undone, no request is dropped.
            print(f"state before reload: {client.ping()['state']}")
            reloaded = client.reload(model_dir)
            print(
                f"hot-reloaded from {model_dir}: {reloaded['previous_markers']} -> "
                f"{reloaded['markers']} markers (state {client.ping()['state']})"
            )

            client.shutdown()
            print("daemon stopped")
        finally:
            server.close()

        # -- overload on purpose -------------------------------------------------------
        # A capacity-2 daemon floods immediately: sheds are explicit errors
        # with a retry hint, and a RetryPolicy client backs off and recovers.
        overload_socket = Path(workdir) / "overload.sock"
        server = AnnotationServer(
            TypilusPipeline.load(model_dir),
            overload_socket,
            annotator_config=AnnotatorConfig(use_type_checker=False),
            serve_config=ServeConfig(
                batch_window_seconds=0.3, max_batch_requests=1, max_queue_depth=2
            ),
        ).start()
        try:
            AnnotationClient(overload_socket).wait_until_ready()
            outcomes: list[str] = []

            def flood(position: int) -> None:
                try:
                    AnnotationClient(overload_socket).annotate_sources(projects[position % len(projects)])
                    outcomes.append("ok")
                except ServeError as error:
                    outcomes.append(error.kind)
                    if error.kind == "overloaded":
                        print(f"  shed with hint: retry in {error.retry_after_seconds}s")

            flooders = [threading.Thread(target=flood, args=(position,)) for position in range(8)]
            for thread in flooders:
                thread.start()
            for thread in flooders:
                thread.join()
            stats = AnnotationClient(overload_socket).stats()
            print(
                f"flooded 8 requests at capacity 2: {outcomes.count('ok')} completed, "
                f"{stats['shed_requests']} shed"
            )

            patient = AnnotationClient(
                overload_socket,
                retry_policy=RetryPolicy(max_attempts=8, base_delay_seconds=0.05),
            )
            patient.annotate_sources(projects[0])
            print("a RetryPolicy client backed off and got its answer")
            AnnotationClient(overload_socket).shutdown()
        finally:
            server.close()


if __name__ == "__main__":
    main()
