"""Quickstart: train Typilus on a synthetic corpus and suggest types.

This is the smallest end-to-end use of the library:

1. generate a small synthetic Python corpus (the offline stand-in for the
   paper's GitHub corpus — see DESIGN.md);
2. train the graph model with the Typilus loss (Eq. 4);
3. evaluate on the held-out test split;
4. ask for type suggestions on a brand-new, unannotated snippet.

Run with::

    python examples/quickstart.py
"""

from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import DatasetConfig, SynthesisConfig, TypeAnnotationDataset

SNIPPET = '''
def scale_price(price, factor):
    return price * factor


def format_receipt(name, total):
    return name + ": " + str(total)


def collect_labels(count, label):
    gathered = []
    for position in range(count):
        gathered.append(label + str(position))
    return gathered
'''


def main() -> None:
    print("1. generating synthetic corpus and assembling the dataset ...")
    dataset = TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=40, seed=7),
        DatasetConfig(rarity_threshold=12),
    )
    print("   ", dataset.summary())

    print("2. training the Typilus graph model ...")
    pipeline = TypilusPipeline.fit(
        dataset,
        EncoderConfig(family="graph", hidden_dim=32, gnn_steps=3),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=6, graphs_per_batch=8),
        verbose=True,
    )

    print("3. evaluating on the test split ...")
    summary, _ = pipeline.evaluate_split(dataset.test)
    print("   ", summary.as_row())

    print("4. suggesting types for an unannotated snippet ...")
    for suggestion in pipeline.suggest_for_source(SNIPPET, use_type_checker=True):
        print(
            f"   {suggestion.scope:28s} {suggestion.name:12s} {suggestion.kind:16s}"
            f" -> {suggestion.suggested_type}  (confidence {suggestion.confidence:.2f})"
        )


if __name__ == "__main__":
    main()
