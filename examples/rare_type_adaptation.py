"""Open-vocabulary adaptation: predicting a type that was never seen in training.

This exercises the meta-learning property of Sec. 4.2: the TypeSpace's type
map (``τ_map``) is data, not parameters, so adding a *single* marker for a
brand-new user-defined type lets the model predict that type for similar
symbols — no retraining involved.

The script:

1. trains Typilus normally;
2. defines a new class ``TelemetryProbe`` that does not exist anywhere in
   the training corpus, plus a few functions using it;
3. shows the prediction for a ``TelemetryProbe``-typed parameter *before*
   adaptation (necessarily wrong — the type is unknown);
4. adds one marker for ``TelemetryProbe`` from a single annotated usage
   (one-shot adaptation) and shows the prediction *after*.
"""

from repro.core import (
    EncoderConfig,
    LossKind,
    TrainingConfig,
    TypilusPipeline,
    adapt_space_with_new_type,
)
from repro.corpus import DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.graph import build_graph
from repro.graph.nodes import SymbolKind

# One annotated usage of the new type: the source of the adaptation marker.
ADAPTATION_EXAMPLE = '''
class TelemetryProbe:
    def __init__(self, name: str, interval: float) -> None:
        self.name = name
        self.interval = interval

    def describe(self) -> str:
        return "probe:" + self.name


def register_probe(telemetryprobe: TelemetryProbe) -> str:
    return telemetryprobe.describe()
'''

# The query: an unannotated function over the same new type.
QUERY_SNIPPET = '''
class TelemetryProbe:
    def __init__(self, name: str, interval: float) -> None:
        self.name = name
        self.interval = interval

    def describe(self) -> str:
        return "probe:" + self.name


def summarise_probe(telemetryprobe, prefix):
    return prefix + telemetryprobe.describe()
'''


def main() -> None:
    print("training Typilus ...")
    dataset = TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=48, seed=11),
        DatasetConfig(rarity_threshold=12),
    )
    pipeline = TypilusPipeline.fit(
        dataset,
        EncoderConfig(family="graph", hidden_dim=32, gnn_steps=3),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=6, graphs_per_batch=8),
    )
    assert "TelemetryProbe" not in pipeline.type_space.known_types()

    def predict_for_query() -> None:
        for suggestion in pipeline.suggest_for_source(QUERY_SNIPPET, use_type_checker=False):
            if suggestion.scope == "module.summarise_probe" and suggestion.name == "telemetryprobe":
                top3 = ", ".join(f"{t} ({p:.2f})" for t, p in suggestion.prediction.top(3))
                print(f"   parameter 'telemetryprobe' -> {top3}")

    print("\nprediction BEFORE adaptation (TelemetryProbe is unknown to the type map):")
    predict_for_query()

    print("\nadapting: adding one TelemetryProbe marker from a single annotated usage ...")
    graph = build_graph(ADAPTATION_EXAMPLE, "adaptation.py")
    symbol = graph.find_symbol("telemetryprobe", kind=SymbolKind.PARAMETER)
    assert symbol is not None and symbol.annotation == "TelemetryProbe"
    embedding = pipeline.encoder.encode([graph], [[symbol.node_index]]).data[0]
    adapt_space_with_new_type(pipeline.type_space, "TelemetryProbe", [embedding])

    print("\nprediction AFTER adaptation:")
    predict_for_query()


if __name__ == "__main__":
    main()
