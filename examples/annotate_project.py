"""Gradually annotate an unannotated project with the batched annotation engine.

Sec. 6.3 frames Typilus' goal as "helping developers gradually move an
unannotated or partially annotated program to a fully annotated program by
adding a type prediction at a time".  This example runs that loop on top of
the project-scale engine:

1. train a pipeline once and persist it with ``TypilusPipeline.save``;
2. restore it with ``TypilusPipeline.load`` — no re-training — exactly as a
   deployed annotation service would;
3. hand the whole stripped project to :class:`repro.engine.ProjectAnnotator`,
   which embeds and scores every file's symbols in one batched pass;
4. accept suggestions highest-confidence first, inserting each accepted
   annotation into the source (the checker filter has already vetoed
   candidates that introduce type errors).

At the end it reports how much of the project was annotated, how often the
accepted annotations agree with the original (held-back) ones, and the
engine's throughput.
"""

import tempfile
from pathlib import Path

from repro.checker import CheckerMode, apply_annotation
from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import CorpusSynthesizer, DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.engine import AnnotatorConfig, ProjectAnnotator
from repro.graph import collect_annotations, erase_annotations
from repro.graph.builder import SymbolKey
from repro.graph.nodes import SymbolKind


def main() -> None:
    print("training Typilus ...")
    dataset = TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=48, seed=11),
        DatasetConfig(rarity_threshold=12),
    )
    pipeline = TypilusPipeline.fit(
        dataset,
        EncoderConfig(family="graph", hidden_dim=32, gnn_steps=3),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=6, graphs_per_batch=8),
    )

    with tempfile.TemporaryDirectory() as model_dir:
        # Persist and restore: the annotation pass below never retrains.
        pipeline.save(Path(model_dir) / "model")
        served = TypilusPipeline.load(Path(model_dir) / "model")

        # A "new project" the model has never seen: freshly synthesised files,
        # with their annotations stripped as the unannotated starting point.
        project = CorpusSynthesizer(SynthesisConfig(num_files=3, seed=999)).generate()
        originals = {entry.filename: collect_annotations(entry.source) for entry in project}
        working_sources = {entry.filename: erase_annotations(entry.source) for entry in project}

        annotator = ProjectAnnotator(
            served, AnnotatorConfig(use_type_checker=True, checker_mode=CheckerMode.STRICT)
        )
        report = annotator.annotate_sources(working_sources)
        print(
            f"engine pass: {report.num_symbols} symbols across {report.num_files} files "
            f"in {report.elapsed_seconds:.2f}s ({report.symbols_per_second:.0f} symbols/s)"
        )

        annotated_total = 0
        agreements = 0
        accepted_total = 0
        for file_report in report.files:
            working_source = working_sources[file_report.filename]
            suggestions = sorted(file_report.suggestions, key=lambda s: -s.confidence)
            accepted = 0
            for suggestion in suggestions:
                if suggestion.suggested_type is None or suggestion.confidence < 0.5:
                    continue
                try:
                    working_source = apply_annotation(
                        working_source,
                        suggestion.scope,
                        suggestion.name,
                        SymbolKind(suggestion.kind),
                        suggestion.suggested_type,
                    )
                except Exception:
                    continue
                accepted += 1
                key = SymbolKey(suggestion.scope, suggestion.name, SymbolKind(suggestion.kind))
                original_annotations = originals[file_report.filename]
                if key in original_annotations:
                    annotated_total += 1
                    if original_annotations[key] == suggestion.suggested_type:
                        agreements += 1
            accepted_total += accepted
            print(f"{file_report.filename}: accepted {accepted} suggestions")

    print(f"\naccepted {accepted_total} annotations across the project")
    if annotated_total:
        print(
            f"of the {annotated_total} symbols the original authors had annotated, "
            f"{agreements} ({100 * agreements / annotated_total:.0f}%) received the same type"
        )


if __name__ == "__main__":
    main()
