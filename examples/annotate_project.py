"""Gradually annotate an unannotated project, one accepted suggestion at a time.

Sec. 6.3 frames Typilus' goal as "helping developers gradually move an
unannotated or partially annotated program to a fully annotated program by
adding a type prediction at a time".  This example simulates that loop:

1. start from a project whose annotations have been stripped;
2. ask the pipeline for suggestions, highest-confidence first;
3. accept a suggestion only if the optional type checker raises no new
   errors when the annotation is inserted;
4. insert it into the source and repeat.

At the end it reports how much of the project was annotated and how often
the accepted annotations agree with the original (held-back) ones.
"""

from repro.checker import CheckerMode, apply_annotation
from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import CorpusSynthesizer, DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.graph import collect_annotations, erase_annotations
from repro.graph.builder import SymbolKey
from repro.graph.nodes import SymbolKind


def main() -> None:
    print("training Typilus ...")
    dataset = TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=48, seed=11),
        DatasetConfig(rarity_threshold=12),
    )
    pipeline = TypilusPipeline.fit(
        dataset,
        EncoderConfig(family="graph", hidden_dim=32, gnn_steps=3),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=6, graphs_per_batch=8),
    )

    # A "new project" the model has never seen: freshly synthesised files.
    project = CorpusSynthesizer(SynthesisConfig(num_files=3, seed=999)).generate()
    annotated_total = 0
    agreements = 0
    accepted_total = 0

    for entry in project:
        original_annotations = collect_annotations(entry.source)
        working_source = erase_annotations(entry.source)  # the unannotated starting point
        suggestions = pipeline.suggest_for_source(
            working_source, use_type_checker=True, checker_mode=CheckerMode.STRICT
        )
        suggestions.sort(key=lambda s: -s.confidence)

        accepted = 0
        for suggestion in suggestions:
            if suggestion.suggested_type is None or suggestion.confidence < 0.5:
                continue
            try:
                working_source = apply_annotation(
                    working_source,
                    suggestion.scope,
                    suggestion.name,
                    SymbolKind(suggestion.kind),
                    suggestion.suggested_type,
                )
            except Exception:
                continue
            accepted += 1
            key = SymbolKey(suggestion.scope, suggestion.name, SymbolKind(suggestion.kind))
            if key in original_annotations:
                annotated_total += 1
                if original_annotations[key] == suggestion.suggested_type:
                    agreements += 1
        accepted_total += accepted
        print(f"{entry.filename}: accepted {accepted} suggestions")

    print(f"\naccepted {accepted_total} annotations across the project")
    if annotated_total:
        print(
            f"of the {annotated_total} symbols the original authors had annotated, "
            f"{agreements} ({100 * agreements / annotated_total:.0f}%) received the same type"
        )


if __name__ == "__main__":
    main()
