"""Find incorrect human-written annotations, as in Sec. 7 of the paper.

The paper's qualitative evaluation found real annotation bugs in fairseq and
allennlp: parameters documented as ``float`` that the surrounding code (and
every similarly named variable in the corpus) treats as ``int``.  This
example reproduces the workflow on a file with deliberately wrong
annotations: the model predicts types with high confidence, the pipeline
flags confident disagreements with the existing annotations, and the optional
type checker confirms the suggestions do not introduce type errors.

Run with::

    python examples/find_annotation_errors.py
"""

from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import DatasetConfig, SynthesisConfig, TypeAnnotationDataset

# A module in the style of the fairseq bug: `num_layers`, `batch_size` and
# `embedding_dim` are dimensions (ints) but someone annotated them as float;
# `label` is a str annotated as int.
SUSPICIOUS_MODULE = '''
def build_encoder(num_layers: float, batch_size: float, scale: float) -> str:
    description = "layers=" + str(num_layers) + " batch=" + str(batch_size)
    return description


def format_label(label: int, count: int) -> str:
    return label + ":" + str(count)


def mean_scores(values, count: int) -> float:
    total = 0.0
    for value in values:
        total = total + value
    return total / count
'''


def main() -> None:
    print("training Typilus on the synthetic corpus ...")
    dataset = TypeAnnotationDataset.synthetic(
        SynthesisConfig(num_files=48, seed=11),
        DatasetConfig(rarity_threshold=12),
    )
    pipeline = TypilusPipeline.fit(
        dataset,
        EncoderConfig(family="graph", hidden_dim=32, gnn_steps=3),
        loss_kind=LossKind.TYPILUS,
        training_config=TrainingConfig(epochs=8, graphs_per_batch=8),
    )

    print("\nsuggestions that disagree with the existing annotations:")
    disagreements = pipeline.find_annotation_disagreements(SUSPICIOUS_MODULE, confidence_threshold=0.5)
    if not disagreements:
        print("  (none found at this confidence threshold)")
    for suggestion in disagreements:
        print(
            f"  {suggestion.scope:28s} {suggestion.name:14s} annotated as "
            f"{suggestion.existing_annotation!r} but predicted {suggestion.suggested_type!r}"
            f" (confidence {suggestion.confidence:.2f})"
        )

    print("\nall suggestions for the module (after type-checker filtering):")
    for suggestion in pipeline.suggest_for_source(SUSPICIOUS_MODULE, use_type_checker=True):
        marker = "  <-- disagreement" if suggestion.disagrees_with_existing else ""
        print(
            f"  {suggestion.scope:28s} {suggestion.name:14s} -> {suggestion.suggested_type}"
            f" (confidence {suggestion.confidence:.2f}){marker}"
        )


if __name__ == "__main__":
    main()
