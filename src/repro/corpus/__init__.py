"""Corpus: synthetic project generation, deduplication and dataset assembly."""

from repro.corpus.dataset import (
    AnnotatedSymbol,
    DatasetConfig,
    DatasetSplit,
    TypeAnnotationDataset,
)
from repro.corpus.dedup import (
    DeduplicationReport,
    Deduplicator,
    DuplicateCluster,
    deduplicate_sources,
    file_token_fingerprint,
    jaccard_similarity,
)
from repro.corpus.synthesis import (
    ClassSpec,
    CorpusSynthesizer,
    SynthesisConfig,
    SynthesisedFile,
    generate_corpus,
)

__all__ = [
    "AnnotatedSymbol",
    "DatasetConfig",
    "DatasetSplit",
    "TypeAnnotationDataset",
    "Deduplicator",
    "DeduplicationReport",
    "DuplicateCluster",
    "deduplicate_sources",
    "file_token_fingerprint",
    "jaccard_similarity",
    "CorpusSynthesizer",
    "SynthesisConfig",
    "SynthesisedFile",
    "ClassSpec",
    "generate_corpus",
]
