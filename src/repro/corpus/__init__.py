"""Corpus: synthesis, deduplication, parallel ingestion and dataset assembly."""

from repro.corpus.dataset import (
    DATASET_FORMAT_VERSION,
    AnnotatedSymbol,
    DatasetConfig,
    DatasetSplit,
    TypeAnnotationDataset,
)
from repro.corpus.dedup import (
    DeduplicationReport,
    Deduplicator,
    DuplicateCluster,
    deduplicate_sources,
    file_token_fingerprint,
    jaccard_similarity,
)
from repro.corpus.ingest import (
    EXTRACTOR_VERSION,
    ExtractedFile,
    GraphCache,
    IngestConfig,
    IngestReport,
    extract_file,
    ingest_sources,
    parallel_map,
)
from repro.corpus.synthesis import (
    ClassSpec,
    CorpusSynthesizer,
    SynthesisConfig,
    SynthesisedFile,
    generate_corpus,
)

__all__ = [
    "AnnotatedSymbol",
    "DATASET_FORMAT_VERSION",
    "DatasetConfig",
    "DatasetSplit",
    "TypeAnnotationDataset",
    "EXTRACTOR_VERSION",
    "ExtractedFile",
    "GraphCache",
    "IngestConfig",
    "IngestReport",
    "extract_file",
    "ingest_sources",
    "parallel_map",
    "Deduplicator",
    "DeduplicationReport",
    "DuplicateCluster",
    "deduplicate_sources",
    "file_token_fingerprint",
    "jaccard_similarity",
    "CorpusSynthesizer",
    "SynthesisConfig",
    "SynthesisedFile",
    "ClassSpec",
    "generate_corpus",
]
