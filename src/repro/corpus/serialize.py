"""Graph and dataset serialization: binary FlatGraph shards + JSON payloads.

Two consumers share these helpers:

* the content-addressed :class:`~repro.corpus.ingest.GraphCache`, which
  persists one extracted :class:`~repro.graph.codegraph.CodeGraph` per
  source file so unchanged files are never re-parsed;
* sharded dataset persistence (:meth:`TypeAnnotationDataset.save` /
  :meth:`~repro.corpus.dataset.TypeAnnotationDataset.load`), which writes a
  whole assembled dataset — splits, samples, registry, vocabulary, lattice —
  to a directory that reloads in milliseconds.

**Binary graph shards (the default).**  Graphs persist as ``.npz`` archives
of their columnar :class:`~repro.graph.flatgraph.FlatGraph` arrays — per
graph: the interned string table, a ``(4, N) int32`` node block (kind code,
text id, line, column), one ``(2, E_k) int32`` array per
:class:`~repro.graph.edges.EdgeKind`, a ``(6, S) int32`` symbol block and
the occurrence CSR pair.  Each shard carries a SHA-256 **fingerprint** over
every array's bytes; :func:`flat_graphs_from_arrays` recomputes and
compares it on load, so a truncated or bit-flipped shard raises
:class:`PayloadError` (which the graph cache treats as a miss) instead of
silently mis-indexing.  Loading never materialises per-node objects — the
arrays are handed straight to featurization and batch assembly.

**Legacy JSON payloads.**  The original dict-of-lists layout remains fully
readable *and* writable (``shard_format="json"``): corruption surfaces as a
decode/validation error, and the format stays diffable and
language-neutral.  Dataset directories written before the binary format
load unchanged.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.corpus.dedup import DeduplicationReport, DuplicateCluster
from repro.graph.codegraph import CodeGraph
from repro.graph.edges import ALL_EDGE_KINDS, EdgeKind
from repro.graph.flatgraph import FlatGraph
from repro.graph.nodes import GraphNode, NodeKind, SymbolInfo, SymbolKind
from repro.graph.subtokens import SubtokenVocabulary
from repro.models.featurize import SUBTOKEN, TextFeatures
from repro.types.lattice import TypeLattice
from repro.types.registry import TypeRegistry

#: Version of the graph payload layout; part of every cache key, so bumping
#: it (or :data:`repro.corpus.ingest.EXTRACTOR_VERSION`) invalidates caches.
GRAPH_PAYLOAD_VERSION = 1

#: Version of the binary ``.npz`` graph-shard layout.
GRAPH_SHARD_FORMAT_VERSION = 1

#: Version of the ``features.npz`` companion file written next to dataset
#: shards; unknown versions are ignored (features are recomputed instead).
FEATURES_FORMAT_VERSION = 1


class PayloadError(ValueError):
    """Raised when a payload cannot be decoded back into an object."""


# ---------------------------------------------------------------------------
# CodeGraph
# ---------------------------------------------------------------------------


def graph_to_payload(graph: CodeGraph) -> dict[str, Any]:
    """Encode a graph as a JSON-compatible dictionary.

    Flat-backed graphs are encoded straight from their arrays — touching
    ``graph.nodes``/``graph.edges`` would materialise the object views and
    drop the columnar backing, degrading every later consumer of the same
    in-memory graph.
    """
    flat = graph.flat
    if flat is not None:
        from repro.graph.flatgraph import NODE_KIND_ORDER

        strings = flat.strings
        kinds = flat.node_kind.tolist()
        texts = flat.node_text.tolist()
        lines = flat.node_line.tolist()
        cols = flat.node_col.tolist()
        nodes = [
            [NODE_KIND_ORDER[kinds[i]].value, strings[texts[i]], lines[i], cols[i]]
            for i in range(len(kinds))
        ]
        edges = {kind.value: pairs.T.tolist() for kind, pairs in flat.edges.items()}
    else:
        nodes = [[node.kind.value, node.text, node.lineno, node.col] for node in graph.nodes]
        edges = {kind.value: [list(pair) for pair in pairs] for kind, pairs in graph.edges.items()}
    return {
        "version": GRAPH_PAYLOAD_VERSION,
        "filename": graph.filename,
        "source": graph.source,
        "nodes": nodes,
        "edges": edges,
        "symbols": [
            [
                symbol.node_index,
                symbol.name,
                symbol.kind.value,
                symbol.scope,
                symbol.annotation,
                symbol.lineno,
                list(symbol.occurrence_indices),
            ]
            for symbol in graph.symbols
        ],
    }


def graph_from_payload(payload: dict[str, Any], filename: Optional[str] = None) -> CodeGraph:
    """Decode a graph payload; ``filename`` overrides the stored name.

    The override is what makes graph caching content-addressed: a file moved
    or copied to a new path reuses the cached graph under its new name.
    """
    try:
        if payload["version"] != GRAPH_PAYLOAD_VERSION:
            raise PayloadError(f"unsupported graph payload version {payload['version']!r}")
        graph = CodeGraph(
            filename=filename if filename is not None else payload["filename"],
            source=payload["source"],
        )
        graph.nodes = [
            GraphNode(index=index, kind=NodeKind(kind), text=text, lineno=lineno, col=col)
            for index, (kind, text, lineno, col) in enumerate(payload["nodes"])
        ]
        graph.edges = {
            EdgeKind(kind): [(int(source), int(target)) for source, target in pairs]
            for kind, pairs in payload["edges"].items()
        }
        graph.symbols = [
            SymbolInfo(
                node_index=node_index,
                name=name,
                kind=SymbolKind(kind),
                scope=scope,
                annotation=annotation,
                lineno=lineno,
                occurrence_indices=list(occurrences),
            )
            for node_index, name, kind, scope, annotation, lineno, occurrences in payload["symbols"]
        ]
        graph.validate()
    except PayloadError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise PayloadError(f"malformed graph payload: {error}") from error
    return graph


# ---------------------------------------------------------------------------
# Binary FlatGraph shards
# ---------------------------------------------------------------------------


def _string_array(strings: Sequence[str]) -> np.ndarray:
    """Unicode array of ``strings`` (empty sequences need an explicit dtype)."""
    if not strings:
        return np.zeros(0, dtype="<U1")
    return np.asarray(list(strings))


def _shard_fingerprint(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's dtype-tagged bytes, in sorted key order.

    ``x:``-prefixed keys are ancillary (callers may attach them after the
    fingerprint is computed, e.g. the graph cache's extractor version) and
    are excluded, as is the fingerprint itself.
    """
    digest = hashlib.sha256()
    for key in sorted(arrays):
        if key == "fingerprint" or key.startswith("x:"):
            continue
        value = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8") + b"\x00")
        digest.update(str(value.dtype).encode("utf-8") + b"\x00")
        digest.update(value.tobytes())
    return digest.hexdigest()


def _pack_strings(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Pack strings into a ``uint8`` UTF-8 blob + ``int64`` offset array."""
    parts = [text.encode("utf-8") for text in strings]
    splits = np.zeros(len(parts) + 1, dtype=np.int64)
    np.cumsum([len(part) for part in parts], out=splits[1:])
    blob = b"".join(parts)
    return np.frombuffer(blob, dtype=np.uint8).copy(), splits


def _unpack_strings(blob: np.ndarray, splits: np.ndarray) -> list[str]:
    raw = blob.tobytes()
    offsets = splits.tolist()
    return [raw[offsets[i] : offsets[i + 1]].decode("utf-8") for i in range(len(offsets) - 1)]


def _counts_splits(counts: Sequence[int]) -> np.ndarray:
    splits = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=splits[1:])
    return splits


def flat_graphs_to_arrays(graphs: Sequence[FlatGraph]) -> dict[str, np.ndarray]:
    """Encode columnar graphs as one ``np.savez``-ready array dictionary.

    The shard itself is columnar: every graph's columns are concatenated
    into one array per column, with ``(G + 1)``-length split arrays
    recording per-graph boundaries — the archive holds a couple of dozen
    arrays total regardless of how many graphs it contains (per-entry zip
    and header costs dominate ``.npz`` handling of many small arrays).

    Columns: ``strbytes``/``strsplits``/``strgraph`` (all intern tables as
    one UTF-8 blob + per-string and per-graph offsets), ``metabytes``/
    ``metasplits`` (filename and source per graph, interleaved), ``nodes``
    ``(4, ΣN)`` + ``nodesplits``, one ``edges:<kind>`` ``(2, ΣE_k)`` +
    ``edgesplits:<kind>`` pair per edge kind present anywhere in the shard,
    ``symbols`` ``(6, ΣS)`` + ``symsplits``, and the occurrence values
    ``occ`` with per-symbol counts ``occcounts`` (per-graph CSR splits are
    rebuilt from the counts on load).  A shard-level ``fingerprint`` array
    holds the SHA-256 of all content arrays.
    """
    num_graphs = len(graphs)
    all_strings: list[str] = []
    meta: list[str] = []
    strings_per_graph: list[int] = []
    for flat in graphs:
        all_strings.extend(flat.strings)
        strings_per_graph.append(len(flat.strings))
        meta.extend((flat.filename, flat.source))
    strbytes, strsplits = _pack_strings(all_strings)
    metabytes, metasplits = _pack_strings(meta)

    def concat32(pieces: list[np.ndarray], axis: int, empty_shape: tuple) -> np.ndarray:
        if not pieces:
            return np.zeros(empty_shape, dtype=np.int32)
        return np.concatenate(pieces, axis=axis).astype(np.int32, copy=False)

    arrays: dict[str, np.ndarray] = {
        "format": np.asarray([GRAPH_SHARD_FORMAT_VERSION], dtype=np.int64),
        "num_graphs": np.asarray([num_graphs], dtype=np.int64),
        "strbytes": strbytes,
        "strsplits": strsplits,
        "strgraph": _counts_splits(strings_per_graph),
        "metabytes": metabytes,
        "metasplits": metasplits,
        "nodes": concat32(
            [
                np.stack([flat.node_kind, flat.node_text, flat.node_line, flat.node_col])
                for flat in graphs
            ],
            axis=1,
            empty_shape=(4, 0),
        ),
        "nodesplits": _counts_splits([flat.num_nodes for flat in graphs]),
        "symbols": concat32(
            [
                np.stack(
                    [
                        flat.symbol_node,
                        flat.symbol_name,
                        flat.symbol_kind,
                        flat.symbol_scope,
                        flat.symbol_annotation,
                        flat.symbol_line,
                    ]
                )
                for flat in graphs
            ],
            axis=1,
            empty_shape=(6, 0),
        ),
        "symsplits": _counts_splits([flat.num_symbols for flat in graphs]),
        "occ": concat32([flat.occurrence_ids for flat in graphs], axis=0, empty_shape=(0,)),
        "occcounts": concat32(
            [np.diff(flat.occurrence_splits) for flat in graphs], axis=0, empty_shape=(0,)
        ),
    }
    for kind in ALL_EDGE_KINDS:
        pieces = [flat.edges[kind] for flat in graphs if kind in flat.edges]
        if not pieces:
            continue
        arrays[f"edges:{kind.value}"] = concat32(pieces, axis=1, empty_shape=(2, 0))
        arrays[f"edgesplits:{kind.value}"] = _counts_splits(
            [flat.edge_array(kind).shape[1] for flat in graphs]
        )
    arrays["fingerprint"] = _string_array([_shard_fingerprint(arrays)])
    return arrays


def flat_graphs_from_arrays(archive) -> list[FlatGraph]:
    """Decode :func:`flat_graphs_to_arrays` output, validating the fingerprint.

    ``archive`` is anything mapping keys to arrays (an ``np.load`` result or
    a plain dict).  Raises :class:`PayloadError` on unknown versions, missing
    arrays or fingerprint mismatches — never returns a partially decoded
    shard.  Per-graph arrays are zero-copy slices of the shard columns.
    """
    try:
        loaded = {key: np.asarray(archive[key]) for key in _archive_keys(archive)}
        if int(loaded["format"][0]) != GRAPH_SHARD_FORMAT_VERSION:
            raise PayloadError(
                f"unsupported graph shard version {int(loaded['format'][0])!r}"
            )
        stored = str(loaded["fingerprint"][0])
        expected = _shard_fingerprint(loaded)
        if stored != expected:
            raise PayloadError("graph shard fingerprint mismatch (corrupted shard?)")

        num_graphs = int(loaded["num_graphs"][0])
        all_strings = _unpack_strings(loaded["strbytes"], loaded["strsplits"])
        meta = _unpack_strings(loaded["metabytes"], loaded["metasplits"])
        strgraph = loaded["strgraph"].tolist()
        nodesplits = loaded["nodesplits"].tolist()
        symsplits = loaded["symsplits"].tolist()
        nodes = loaded["nodes"]
        symbols = loaded["symbols"]
        occ = loaded["occ"]
        occcounts = loaded["occcounts"]
        edge_columns = [
            (kind, loaded[f"edges:{kind.value}"], loaded[f"edgesplits:{kind.value}"].tolist())
            for kind in ALL_EDGE_KINDS
            if f"edges:{kind.value}" in loaded
        ]

        graphs: list[FlatGraph] = []
        occ_cursor = 0
        for i in range(num_graphs):
            node_lo, node_hi = nodesplits[i], nodesplits[i + 1]
            sym_lo, sym_hi = symsplits[i], symsplits[i + 1]
            edges: dict[EdgeKind, np.ndarray] = {}
            for kind, column, splits in edge_columns:
                lo, hi = splits[i], splits[i + 1]
                if hi > lo:
                    edges[kind] = column[:, lo:hi]
            counts = occcounts[sym_lo:sym_hi]
            occurrence_splits = np.zeros(counts.shape[0] + 1, dtype=np.int32)
            np.cumsum(counts, out=occurrence_splits[1:])
            num_occurrences = int(occurrence_splits[-1]) if counts.size else 0
            graphs.append(
                FlatGraph(
                    filename=meta[2 * i],
                    source=meta[2 * i + 1],
                    strings=tuple(all_strings[strgraph[i] : strgraph[i + 1]]),
                    node_kind=nodes[0, node_lo:node_hi],
                    node_text=nodes[1, node_lo:node_hi],
                    node_line=nodes[2, node_lo:node_hi],
                    node_col=nodes[3, node_lo:node_hi],
                    edges=edges,
                    symbol_node=symbols[0, sym_lo:sym_hi],
                    symbol_name=symbols[1, sym_lo:sym_hi],
                    symbol_kind=symbols[2, sym_lo:sym_hi],
                    symbol_scope=symbols[3, sym_lo:sym_hi],
                    symbol_annotation=symbols[4, sym_lo:sym_hi],
                    symbol_line=symbols[5, sym_lo:sym_hi],
                    occurrence_ids=occ[occ_cursor : occ_cursor + num_occurrences],
                    occurrence_splits=occurrence_splits,
                )
            )
            occ_cursor += num_occurrences
    except PayloadError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError) as error:
        raise PayloadError(f"malformed graph shard: {error}") from error
    return graphs


def _archive_keys(archive) -> Sequence[str]:
    files = getattr(archive, "files", None)
    if files is not None:
        return files
    return list(archive.keys())


def write_graph_shard(path, graphs: Sequence[CodeGraph]) -> None:
    """Write graphs to a binary ``.npz`` shard at ``path``."""
    arrays = flat_graphs_to_arrays([graph.to_flat() for graph in graphs])
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def read_graph_shard(path) -> list[CodeGraph]:
    """Read a binary shard back as (lazily materialised) :class:`CodeGraph`\\ s."""
    with np.load(path, allow_pickle=False) as archive:
        flats = flat_graphs_from_arrays(archive)
    return [CodeGraph.from_flat(flat) for flat in flats]


# ---------------------------------------------------------------------------
# Raw graph shards (zero-copy, memory-mappable)
# ---------------------------------------------------------------------------

#: Commit marker and index of a raw shard/feature directory; written last, so
#: a directory without it is an aborted write, not a corrupt dataset.
RAW_META_NAME = "meta.json"

#: Keys every raw graph shard must provide (edge columns vary per shard).
_RAW_REQUIRED_COLUMNS = (
    "strbytes",
    "strsplits",
    "strgraph",
    "metabytes",
    "metasplits",
    "nodes",
    "nodesplits",
    "symbols",
    "symsplits",
    "occ",
    "occcounts",
)


def _read_raw_meta(path: Path, expected_version: int, what: str) -> dict[str, Any]:
    try:
        meta = json.loads((path / RAW_META_NAME).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as error:
        raise PayloadError(f"cannot read raw {what} metadata at {path}: {error}") from error
    version = int(meta.get("format", -1))
    if version != expected_version:
        raise PayloadError(f"unsupported raw {what} version {version!r} at {path}")
    return meta


def write_graph_shard_raw(path, graphs: Sequence[CodeGraph]) -> None:
    """Write graphs as a raw shard *directory*: one ``.npy`` file per column.

    Same columnar arrays as the ``.npz`` shard (see
    :func:`flat_graphs_to_arrays`), but each stored as a plain ``.npy`` so
    loaders can ``np.load(..., mmap_mode="r")`` them — pages stream in on
    access instead of the whole archive inflating into every process.
    ``meta.json`` (version, graph count, fingerprint, column index) is
    written last as the commit marker.
    """
    arrays = flat_graphs_to_arrays([graph.to_flat() for graph in graphs])
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    names: dict[str, str] = {}
    for key, value in arrays.items():
        if key in ("format", "num_graphs", "fingerprint"):
            continue
        name = key.replace(":", "__") + ".npy"
        np.save(directory / name, np.ascontiguousarray(value))
        names[key] = name
    meta = {
        "format": int(arrays["format"][0]),
        "num_graphs": int(arrays["num_graphs"][0]),
        "fingerprint": str(arrays["fingerprint"][0]),
        "arrays": names,
    }
    (directory / RAW_META_NAME).write_text(json.dumps(meta, indent=1), encoding="utf-8")


def read_graph_shard_raw(path) -> list[CodeGraph]:
    """Eagerly read a raw shard directory, validating its fingerprint.

    The resident counterpart of :class:`RawGraphShard`: all columns are
    loaded into memory and pass through the same fingerprint check and
    decode as an ``.npz`` shard.
    """
    directory = Path(path)
    meta = _read_raw_meta(directory, GRAPH_SHARD_FORMAT_VERSION, "graph shard")
    try:
        arrays = {
            key: np.load(directory / name, allow_pickle=False)
            for key, name in meta["arrays"].items()
        }
    except (OSError, ValueError, KeyError) as error:
        raise PayloadError(f"malformed raw graph shard at {path}: {error}") from error
    arrays["format"] = np.asarray([int(meta["format"])], dtype=np.int64)
    arrays["num_graphs"] = np.asarray([int(meta["num_graphs"])], dtype=np.int64)
    arrays["fingerprint"] = _string_array([str(meta["fingerprint"])])
    flats = flat_graphs_from_arrays(arrays)
    return [CodeGraph.from_flat(flat) for flat in flats]


class RawGraphShard:
    """Zero-copy view over a raw shard directory.

    The big content columns (strings blob, node/symbol/edge blocks,
    occurrences) stay memory-mapped read-only; only the O(graphs) split
    arrays are materialised up front.  :meth:`flat_graph` slices one graph's
    columns without touching any other graph's pages, and decodes only that
    graph's strings.

    Content fingerprints are *not* verified on open — doing so would page in
    the entire shard, defeating the layout.  Structural shape checks still
    reject mismatched columns; callers wanting full verification use
    :func:`read_graph_shard_raw`.
    """

    def __init__(self, path, mmap: bool = True) -> None:
        directory = Path(path)
        meta = _read_raw_meta(directory, GRAPH_SHARD_FORMAT_VERSION, "graph shard")
        self.path = directory
        self.num_graphs = int(meta["num_graphs"])
        self.fingerprint = str(meta.get("fingerprint", ""))
        mode = "r" if mmap else None
        try:
            self._arrays = {
                key: np.load(directory / name, mmap_mode=mode, allow_pickle=False)
                for key, name in meta["arrays"].items()
            }
        except (OSError, ValueError, KeyError) as error:
            raise PayloadError(f"malformed raw graph shard at {path}: {error}") from error
        missing = [key for key in _RAW_REQUIRED_COLUMNS if key not in self._arrays]
        if missing:
            raise PayloadError(f"raw graph shard at {path} is missing columns {missing}")
        arrays = self._arrays
        self._strsplits = np.array(arrays["strsplits"], dtype=np.int64)
        self._strgraph = np.array(arrays["strgraph"], dtype=np.int64)
        self._metasplits = np.array(arrays["metasplits"], dtype=np.int64)
        self._nodesplits = np.array(arrays["nodesplits"], dtype=np.int64)
        self._symsplits = np.array(arrays["symsplits"], dtype=np.int64)
        occcounts = arrays["occcounts"]
        self._occ_prefix = np.zeros(occcounts.shape[0] + 1, dtype=np.int64)
        np.cumsum(occcounts, out=self._occ_prefix[1:])
        self._edge_columns = [
            (kind, arrays[f"edges:{kind.value}"], np.array(arrays[f"edgesplits:{kind.value}"], dtype=np.int64))
            for kind in ALL_EDGE_KINDS
            if f"edges:{kind.value}" in arrays
        ]
        expected = self.num_graphs + 1
        for name, splits in (
            ("strgraph", self._strgraph),
            ("nodesplits", self._nodesplits),
            ("symsplits", self._symsplits),
        ):
            if splits.shape[0] != expected:
                raise PayloadError(
                    f"raw graph shard at {path}: column {name!r} has {splits.shape[0]} splits, "
                    f"expected {expected}"
                )

    def _strings(self, index: int) -> tuple[str, ...]:
        lo, hi = int(self._strgraph[index]), int(self._strgraph[index + 1])
        byte_lo = int(self._strsplits[lo])
        blob = np.asarray(self._arrays["strbytes"][byte_lo : int(self._strsplits[hi])])
        return tuple(_unpack_strings(blob, self._strsplits[lo : hi + 1] - byte_lo))

    def _meta_strings(self, index: int) -> list[str]:
        lo = int(self._metasplits[2 * index])
        hi = int(self._metasplits[2 * index + 2])
        blob = np.asarray(self._arrays["metabytes"][lo:hi])
        return _unpack_strings(blob, self._metasplits[2 * index : 2 * index + 3] - lo)

    def flat_graph(self, index: int) -> FlatGraph:
        """One graph's columnar view; array fields are slices of the maps."""
        if not 0 <= index < self.num_graphs:
            raise IndexError(f"graph index {index} out of range for shard of {self.num_graphs}")
        arrays = self._arrays
        filename, source = self._meta_strings(index)
        node_lo, node_hi = int(self._nodesplits[index]), int(self._nodesplits[index + 1])
        sym_lo, sym_hi = int(self._symsplits[index]), int(self._symsplits[index + 1])
        edges: dict[EdgeKind, np.ndarray] = {}
        for kind, column, splits in self._edge_columns:
            lo, hi = int(splits[index]), int(splits[index + 1])
            if hi > lo:
                edges[kind] = column[:, lo:hi]
        counts = np.asarray(arrays["occcounts"][sym_lo:sym_hi])
        occurrence_splits = np.zeros(counts.shape[0] + 1, dtype=np.int32)
        np.cumsum(counts, out=occurrence_splits[1:])
        nodes = arrays["nodes"]
        symbols = arrays["symbols"]
        return FlatGraph(
            filename=filename,
            source=source,
            strings=self._strings(index),
            node_kind=nodes[0, node_lo:node_hi],
            node_text=nodes[1, node_lo:node_hi],
            node_line=nodes[2, node_lo:node_hi],
            node_col=nodes[3, node_lo:node_hi],
            edges=edges,
            symbol_node=symbols[0, sym_lo:sym_hi],
            symbol_name=symbols[1, sym_lo:sym_hi],
            symbol_kind=symbols[2, sym_lo:sym_hi],
            symbol_scope=symbols[3, sym_lo:sym_hi],
            symbol_annotation=symbols[4, sym_lo:sym_hi],
            symbol_line=symbols[5, sym_lo:sym_hi],
            occurrence_ids=arrays["occ"][int(self._occ_prefix[sym_lo]) : int(self._occ_prefix[sym_hi])],
            occurrence_splits=occurrence_splits,
        )

    def graph(self, index: int) -> CodeGraph:
        return CodeGraph.from_flat(self.flat_graph(index))


class LazyGraphStore:
    """Materialises :class:`CodeGraph` objects on demand across raw shards.

    An LRU bounded **by bytes**, not entry count, keeps recently used graphs
    (one training batch touches each graph once, so the working set is the
    batch, not the corpus); everything else lives only as mapped pages until
    asked for again.  An entry-count bound lets a run over unusually large
    files blow past any memory budget — counting decoded bytes
    (:attr:`FlatGraph.nbytes`) keeps the cache's footprint fixed whatever
    the file-size distribution, and a single graph larger than the whole
    budget is returned uncached rather than evicting everything else.
    """

    #: Default decode-cache budget; comfortably holds a training batch of
    #: typical graphs while staying small next to the mapped shards.
    DEFAULT_CACHE_BYTES = 64 * 1024 * 1024

    def __init__(self, shards: Sequence[RawGraphShard], cache_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if cache_bytes < 0:
            raise ValueError("cache_bytes must be non-negative")
        self._shards = list(shards)
        self._starts = _counts_splits([shard.num_graphs for shard in self._shards])
        self._cache: OrderedDict[int, tuple[CodeGraph, int]] = OrderedDict()
        self._cache_bytes = cache_bytes
        self._cached_bytes = 0
        self._evictions = 0

    def __len__(self) -> int:
        return int(self._starts[-1]) if len(self._starts) else 0

    @property
    def cache_bytes(self) -> int:
        """The configured decode-cache budget in bytes."""
        return self._cache_bytes

    @property
    def cached_bytes(self) -> int:
        """Decoded bytes currently held by the cache (always ≤ the budget)."""
        return self._cached_bytes

    @property
    def evictions(self) -> int:
        """How many cached graphs the byte bound has evicted."""
        return self._evictions

    @staticmethod
    def _cost(graph: CodeGraph) -> int:
        flat = graph.flat
        if flat is not None:
            return flat.nbytes
        return len(graph.source)  # object-backed fallback; never hit for raw shards

    def graph(self, index: int) -> CodeGraph:
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached[0]
        shard_index = int(np.searchsorted(self._starts, index, side="right")) - 1
        local = index - int(self._starts[shard_index])
        graph = self._shards[shard_index].graph(local)
        cost = self._cost(graph)
        if cost > self._cache_bytes:
            # Caching this graph would evict the entire working set for one
            # entry; hand it out uncached instead.
            return graph
        self._cache[index] = (graph, cost)
        self._cached_bytes += cost
        while self._cached_bytes > self._cache_bytes:
            _, (_, evicted_cost) = self._cache.popitem(last=False)
            self._cached_bytes -= evicted_cost
            self._evictions += 1
        return graph


class LazyView:
    """A list-like window over an item provider.

    Stands in for the eager ``list`` a :class:`DatasetSplit` historically
    held: supports ``len``, integer indexing (negative included), iteration
    and step-1 slicing (which returns another window, not a copy) — the full
    API surface the trainer, embedder and evaluation code use.
    """

    def __init__(self, provider: Callable[[int], Any], start: int, stop: int) -> None:
        self._provider = provider
        self._start = start
        self._stop = max(start, stop)

    def __len__(self) -> int:
        return self._stop - self._start

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(len(self))
            if step != 1:
                return [self[i] for i in range(start, stop, step)]
            return LazyView(self._provider, self._start + start, self._start + stop)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"index {index} out of range for view of {len(self)}")
        return self._provider(self._start + index)

    def __iter__(self):
        for index in range(self._start, self._stop):
            yield self._provider(index)


# ---------------------------------------------------------------------------
# Precomputed node features (the compile-once featurization layer)
# ---------------------------------------------------------------------------


def features_to_arrays(features: list[TextFeatures], fingerprint: str) -> dict[str, np.ndarray]:
    """Flatten per-graph subtoken features into ``np.savez``-ready arrays.

    Layout: one CSR id/row-split array pair per graph, plus the vocabulary
    fingerprint that ties the ids to the subtoken table they index.
    """
    arrays: dict[str, np.ndarray] = {
        "version": np.asarray([FEATURES_FORMAT_VERSION], dtype=np.int64),
        "num_graphs": np.asarray([len(features)], dtype=np.int64),
        "fingerprint": np.asarray([fingerprint]),
    }
    for index, feature in enumerate(features):
        if feature.kind != SUBTOKEN:
            raise ValueError(f"only subtoken features persist with the dataset, got {feature.kind!r}")
        arrays[f"ids_{index}"] = feature.ids
        arrays[f"splits_{index}"] = feature.row_splits
    return arrays


def features_from_arrays(archive) -> Optional[tuple[list[TextFeatures], str]]:
    """Rebuild per-graph features from a ``features.npz`` archive.

    Returns ``None`` for unknown versions or malformed archives — callers
    fall back to recomputing features, never fail the dataset load.
    """
    try:
        if int(archive["version"][0]) != FEATURES_FORMAT_VERSION:
            return None
        num_graphs = int(archive["num_graphs"][0])
        fingerprint = str(archive["fingerprint"][0])
        features = []
        for index in range(num_graphs):
            ids = np.asarray(archive[f"ids_{index}"], dtype=np.int64)
            row_splits = np.asarray(archive[f"splits_{index}"], dtype=np.int64)
            features.append(
                TextFeatures(
                    kind=SUBTOKEN, num_texts=row_splits.size - 1, ids=ids, row_splits=row_splits
                )
            )
    except (KeyError, ValueError, IndexError):
        return None
    return features, fingerprint


def write_features_raw(path, features: list[TextFeatures], fingerprint: str) -> None:
    """Write per-graph subtoken features as a raw ``.npy``-column directory.

    All graphs' CSR ids and (graph-relative) row splits are concatenated
    into two flat columns with per-graph boundary arrays, so a mapped loader
    can hand out one graph's features as pure slices.
    """
    for feature in features:
        if feature.kind != SUBTOKEN:
            raise ValueError(f"only subtoken features persist with the dataset, got {feature.kind!r}")
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    columns = {
        "ids": np.concatenate([np.asarray(f.ids, dtype=np.int64) for f in features])
        if features
        else np.zeros(0, dtype=np.int64),
        "idsplits": _counts_splits([np.asarray(f.ids).shape[0] for f in features]),
        "rowsplits": np.concatenate([np.asarray(f.row_splits, dtype=np.int64) for f in features])
        if features
        else np.zeros(0, dtype=np.int64),
        "rowgraph": _counts_splits([np.asarray(f.row_splits).shape[0] for f in features]),
    }
    names = {}
    for key, value in columns.items():
        name = key + ".npy"
        np.save(directory / name, np.ascontiguousarray(value))
        names[key] = name
    meta = {
        "format": FEATURES_FORMAT_VERSION,
        "num_graphs": len(features),
        "fingerprint": fingerprint,
        "arrays": names,
    }
    (directory / RAW_META_NAME).write_text(json.dumps(meta, indent=1), encoding="utf-8")


class RawFeatureStore:
    """Per-graph :class:`TextFeatures` views over a raw features directory."""

    def __init__(self, path, mmap: bool = True) -> None:
        directory = Path(path)
        meta = _read_raw_meta(directory, FEATURES_FORMAT_VERSION, "features")
        self.num_graphs = int(meta["num_graphs"])
        self.fingerprint = str(meta.get("fingerprint", ""))
        mode = "r" if mmap else None
        try:
            arrays = {
                key: np.load(directory / name, mmap_mode=mode, allow_pickle=False)
                for key, name in meta["arrays"].items()
            }
            self._ids = arrays["ids"]
            self._rowsplits = arrays["rowsplits"]
            self._idsplits = np.array(arrays["idsplits"], dtype=np.int64)
            self._rowgraph = np.array(arrays["rowgraph"], dtype=np.int64)
        except (OSError, ValueError, KeyError) as error:
            raise PayloadError(f"malformed raw features at {path}: {error}") from error
        if self._idsplits.shape[0] != self.num_graphs + 1 or self._rowgraph.shape[0] != self.num_graphs + 1:
            raise PayloadError(f"raw features at {path} have inconsistent split columns")

    def __len__(self) -> int:
        return self.num_graphs

    def feature(self, index: int) -> TextFeatures:
        if not 0 <= index < self.num_graphs:
            raise IndexError(f"feature index {index} out of range for {self.num_graphs}")
        id_lo, id_hi = int(self._idsplits[index]), int(self._idsplits[index + 1])
        row_lo, row_hi = int(self._rowgraph[index]), int(self._rowgraph[index + 1])
        row_splits = np.asarray(self._rowsplits[row_lo:row_hi])
        return TextFeatures(
            kind=SUBTOKEN,
            num_texts=row_splits.shape[0] - 1,
            ids=np.asarray(self._ids[id_lo:id_hi]),
            row_splits=row_splits,
        )


def read_features_raw(path, mmap: bool = True) -> Optional[tuple[LazyView, str]]:
    """Open a raw features directory as a lazy per-graph view.

    Mirrors :func:`features_from_arrays`' contract: ``None`` on anything
    unreadable or version-mismatched, so callers recompute instead of fail.
    """
    try:
        store = RawFeatureStore(path, mmap=mmap)
    except PayloadError:
        return None
    return LazyView(store.feature, 0, len(store)), store.fingerprint


# ---------------------------------------------------------------------------
# Registry / vocabulary / lattice / dedup report
# ---------------------------------------------------------------------------


def registry_to_payload(registry: TypeRegistry) -> dict[str, Any]:
    """Encode a registry preserving id order *and* frequency counts."""
    return {
        "rarity_threshold": registry.rarity_threshold,
        "types": [[type_name, registry.count_of(type_name)] for type_name in registry],
    }


def registry_from_payload(payload: dict[str, Any]) -> TypeRegistry:
    registry = TypeRegistry(rarity_threshold=int(payload["rarity_threshold"]))
    # Restore by direct assignment (not ``add``): ids and Counter insertion
    # order must match the original exactly so ``classification_vocabulary``
    # breaks frequency ties identically after a round trip.
    for type_name, count in payload["types"]:
        registry._counts[type_name] = int(count)
        registry._type_to_id[type_name] = len(registry._id_to_type)
        registry._id_to_type.append(type_name)
    return registry


def subtokens_to_payload(vocabulary: SubtokenVocabulary) -> dict[str, Any]:
    return {
        "max_size": vocabulary.max_size,
        "min_count": vocabulary.min_count,
        "tokens": list(vocabulary.tokens),
    }


def subtokens_from_payload(payload: dict[str, Any]) -> SubtokenVocabulary:
    vocabulary = SubtokenVocabulary.from_tokens(payload["tokens"])
    vocabulary.max_size = max(int(payload["max_size"]), len(vocabulary.tokens))
    vocabulary.min_count = int(payload["min_count"])
    return vocabulary


def lattice_to_payload(lattice: TypeLattice) -> list[list[str]]:
    """All nominal edges of a lattice (defaults included; re-adding is idempotent)."""
    return sorted(
        [subtype, supertype]
        for subtype, supertypes in lattice._supertypes.items()
        for supertype in supertypes
    )


def lattice_from_payload(edges: list[list[str]]) -> TypeLattice:
    lattice = TypeLattice()
    lattice.add_class_hierarchy((subtype, supertype) for subtype, supertype in edges)
    return lattice


def dedup_report_to_payload(report: Optional[DeduplicationReport]) -> Optional[dict[str, Any]]:
    if report is None:
        return None
    return {
        "total_files": report.total_files,
        "removed_files": report.removed_files,
        "clusters": [[cluster.kept, list(cluster.removed)] for cluster in report.clusters],
    }


def dedup_report_from_payload(payload: Optional[dict[str, Any]]) -> Optional[DeduplicationReport]:
    if payload is None:
        return None
    return DeduplicationReport(
        total_files=int(payload["total_files"]),
        removed_files=int(payload["removed_files"]),
        clusters=[DuplicateCluster(kept=kept, removed=list(removed)) for kept, removed in payload["clusters"]],
    )
