"""Graph and dataset serialization: binary FlatGraph shards + JSON payloads.

Two consumers share these helpers:

* the content-addressed :class:`~repro.corpus.ingest.GraphCache`, which
  persists one extracted :class:`~repro.graph.codegraph.CodeGraph` per
  source file so unchanged files are never re-parsed;
* sharded dataset persistence (:meth:`TypeAnnotationDataset.save` /
  :meth:`~repro.corpus.dataset.TypeAnnotationDataset.load`), which writes a
  whole assembled dataset — splits, samples, registry, vocabulary, lattice —
  to a directory that reloads in milliseconds.

**Binary graph shards (the default).**  Graphs persist as ``.npz`` archives
of their columnar :class:`~repro.graph.flatgraph.FlatGraph` arrays — per
graph: the interned string table, a ``(4, N) int32`` node block (kind code,
text id, line, column), one ``(2, E_k) int32`` array per
:class:`~repro.graph.edges.EdgeKind`, a ``(6, S) int32`` symbol block and
the occurrence CSR pair.  Each shard carries a SHA-256 **fingerprint** over
every array's bytes; :func:`flat_graphs_from_arrays` recomputes and
compares it on load, so a truncated or bit-flipped shard raises
:class:`PayloadError` (which the graph cache treats as a miss) instead of
silently mis-indexing.  Loading never materialises per-node objects — the
arrays are handed straight to featurization and batch assembly.

**Legacy JSON payloads.**  The original dict-of-lists layout remains fully
readable *and* writable (``shard_format="json"``): corruption surfaces as a
decode/validation error, and the format stays diffable and
language-neutral.  Dataset directories written before the binary format
load unchanged.
"""

from __future__ import annotations

import hashlib
from typing import Any, Optional, Sequence

import numpy as np

from repro.corpus.dedup import DeduplicationReport, DuplicateCluster
from repro.graph.codegraph import CodeGraph
from repro.graph.edges import ALL_EDGE_KINDS, EdgeKind
from repro.graph.flatgraph import FlatGraph
from repro.graph.nodes import GraphNode, NodeKind, SymbolInfo, SymbolKind
from repro.graph.subtokens import SubtokenVocabulary
from repro.models.featurize import SUBTOKEN, TextFeatures
from repro.types.lattice import TypeLattice
from repro.types.registry import TypeRegistry

#: Version of the graph payload layout; part of every cache key, so bumping
#: it (or :data:`repro.corpus.ingest.EXTRACTOR_VERSION`) invalidates caches.
GRAPH_PAYLOAD_VERSION = 1

#: Version of the binary ``.npz`` graph-shard layout.
GRAPH_SHARD_FORMAT_VERSION = 1

#: Version of the ``features.npz`` companion file written next to dataset
#: shards; unknown versions are ignored (features are recomputed instead).
FEATURES_FORMAT_VERSION = 1


class PayloadError(ValueError):
    """Raised when a payload cannot be decoded back into an object."""


# ---------------------------------------------------------------------------
# CodeGraph
# ---------------------------------------------------------------------------


def graph_to_payload(graph: CodeGraph) -> dict[str, Any]:
    """Encode a graph as a JSON-compatible dictionary.

    Flat-backed graphs are encoded straight from their arrays — touching
    ``graph.nodes``/``graph.edges`` would materialise the object views and
    drop the columnar backing, degrading every later consumer of the same
    in-memory graph.
    """
    flat = graph.flat
    if flat is not None:
        from repro.graph.flatgraph import NODE_KIND_ORDER

        strings = flat.strings
        kinds = flat.node_kind.tolist()
        texts = flat.node_text.tolist()
        lines = flat.node_line.tolist()
        cols = flat.node_col.tolist()
        nodes = [
            [NODE_KIND_ORDER[kinds[i]].value, strings[texts[i]], lines[i], cols[i]]
            for i in range(len(kinds))
        ]
        edges = {kind.value: pairs.T.tolist() for kind, pairs in flat.edges.items()}
    else:
        nodes = [[node.kind.value, node.text, node.lineno, node.col] for node in graph.nodes]
        edges = {kind.value: [list(pair) for pair in pairs] for kind, pairs in graph.edges.items()}
    return {
        "version": GRAPH_PAYLOAD_VERSION,
        "filename": graph.filename,
        "source": graph.source,
        "nodes": nodes,
        "edges": edges,
        "symbols": [
            [
                symbol.node_index,
                symbol.name,
                symbol.kind.value,
                symbol.scope,
                symbol.annotation,
                symbol.lineno,
                list(symbol.occurrence_indices),
            ]
            for symbol in graph.symbols
        ],
    }


def graph_from_payload(payload: dict[str, Any], filename: Optional[str] = None) -> CodeGraph:
    """Decode a graph payload; ``filename`` overrides the stored name.

    The override is what makes graph caching content-addressed: a file moved
    or copied to a new path reuses the cached graph under its new name.
    """
    try:
        if payload["version"] != GRAPH_PAYLOAD_VERSION:
            raise PayloadError(f"unsupported graph payload version {payload['version']!r}")
        graph = CodeGraph(
            filename=filename if filename is not None else payload["filename"],
            source=payload["source"],
        )
        graph.nodes = [
            GraphNode(index=index, kind=NodeKind(kind), text=text, lineno=lineno, col=col)
            for index, (kind, text, lineno, col) in enumerate(payload["nodes"])
        ]
        graph.edges = {
            EdgeKind(kind): [(int(source), int(target)) for source, target in pairs]
            for kind, pairs in payload["edges"].items()
        }
        graph.symbols = [
            SymbolInfo(
                node_index=node_index,
                name=name,
                kind=SymbolKind(kind),
                scope=scope,
                annotation=annotation,
                lineno=lineno,
                occurrence_indices=list(occurrences),
            )
            for node_index, name, kind, scope, annotation, lineno, occurrences in payload["symbols"]
        ]
        graph.validate()
    except PayloadError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise PayloadError(f"malformed graph payload: {error}") from error
    return graph


# ---------------------------------------------------------------------------
# Binary FlatGraph shards
# ---------------------------------------------------------------------------


def _string_array(strings: Sequence[str]) -> np.ndarray:
    """Unicode array of ``strings`` (empty sequences need an explicit dtype)."""
    if not strings:
        return np.zeros(0, dtype="<U1")
    return np.asarray(list(strings))


def _shard_fingerprint(arrays: dict[str, np.ndarray]) -> str:
    """SHA-256 over every array's dtype-tagged bytes, in sorted key order.

    ``x:``-prefixed keys are ancillary (callers may attach them after the
    fingerprint is computed, e.g. the graph cache's extractor version) and
    are excluded, as is the fingerprint itself.
    """
    digest = hashlib.sha256()
    for key in sorted(arrays):
        if key == "fingerprint" or key.startswith("x:"):
            continue
        value = np.ascontiguousarray(arrays[key])
        digest.update(key.encode("utf-8") + b"\x00")
        digest.update(str(value.dtype).encode("utf-8") + b"\x00")
        digest.update(value.tobytes())
    return digest.hexdigest()


def _pack_strings(strings: Sequence[str]) -> tuple[np.ndarray, np.ndarray]:
    """Pack strings into a ``uint8`` UTF-8 blob + ``int64`` offset array."""
    parts = [text.encode("utf-8") for text in strings]
    splits = np.zeros(len(parts) + 1, dtype=np.int64)
    np.cumsum([len(part) for part in parts], out=splits[1:])
    blob = b"".join(parts)
    return np.frombuffer(blob, dtype=np.uint8).copy(), splits


def _unpack_strings(blob: np.ndarray, splits: np.ndarray) -> list[str]:
    raw = blob.tobytes()
    offsets = splits.tolist()
    return [raw[offsets[i] : offsets[i + 1]].decode("utf-8") for i in range(len(offsets) - 1)]


def _counts_splits(counts: Sequence[int]) -> np.ndarray:
    splits = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=splits[1:])
    return splits


def flat_graphs_to_arrays(graphs: Sequence[FlatGraph]) -> dict[str, np.ndarray]:
    """Encode columnar graphs as one ``np.savez``-ready array dictionary.

    The shard itself is columnar: every graph's columns are concatenated
    into one array per column, with ``(G + 1)``-length split arrays
    recording per-graph boundaries — the archive holds a couple of dozen
    arrays total regardless of how many graphs it contains (per-entry zip
    and header costs dominate ``.npz`` handling of many small arrays).

    Columns: ``strbytes``/``strsplits``/``strgraph`` (all intern tables as
    one UTF-8 blob + per-string and per-graph offsets), ``metabytes``/
    ``metasplits`` (filename and source per graph, interleaved), ``nodes``
    ``(4, ΣN)`` + ``nodesplits``, one ``edges:<kind>`` ``(2, ΣE_k)`` +
    ``edgesplits:<kind>`` pair per edge kind present anywhere in the shard,
    ``symbols`` ``(6, ΣS)`` + ``symsplits``, and the occurrence values
    ``occ`` with per-symbol counts ``occcounts`` (per-graph CSR splits are
    rebuilt from the counts on load).  A shard-level ``fingerprint`` array
    holds the SHA-256 of all content arrays.
    """
    num_graphs = len(graphs)
    all_strings: list[str] = []
    meta: list[str] = []
    strings_per_graph: list[int] = []
    for flat in graphs:
        all_strings.extend(flat.strings)
        strings_per_graph.append(len(flat.strings))
        meta.extend((flat.filename, flat.source))
    strbytes, strsplits = _pack_strings(all_strings)
    metabytes, metasplits = _pack_strings(meta)

    def concat32(pieces: list[np.ndarray], axis: int, empty_shape: tuple) -> np.ndarray:
        if not pieces:
            return np.zeros(empty_shape, dtype=np.int32)
        return np.concatenate(pieces, axis=axis).astype(np.int32, copy=False)

    arrays: dict[str, np.ndarray] = {
        "format": np.asarray([GRAPH_SHARD_FORMAT_VERSION], dtype=np.int64),
        "num_graphs": np.asarray([num_graphs], dtype=np.int64),
        "strbytes": strbytes,
        "strsplits": strsplits,
        "strgraph": _counts_splits(strings_per_graph),
        "metabytes": metabytes,
        "metasplits": metasplits,
        "nodes": concat32(
            [
                np.stack([flat.node_kind, flat.node_text, flat.node_line, flat.node_col])
                for flat in graphs
            ],
            axis=1,
            empty_shape=(4, 0),
        ),
        "nodesplits": _counts_splits([flat.num_nodes for flat in graphs]),
        "symbols": concat32(
            [
                np.stack(
                    [
                        flat.symbol_node,
                        flat.symbol_name,
                        flat.symbol_kind,
                        flat.symbol_scope,
                        flat.symbol_annotation,
                        flat.symbol_line,
                    ]
                )
                for flat in graphs
            ],
            axis=1,
            empty_shape=(6, 0),
        ),
        "symsplits": _counts_splits([flat.num_symbols for flat in graphs]),
        "occ": concat32([flat.occurrence_ids for flat in graphs], axis=0, empty_shape=(0,)),
        "occcounts": concat32(
            [np.diff(flat.occurrence_splits) for flat in graphs], axis=0, empty_shape=(0,)
        ),
    }
    for kind in ALL_EDGE_KINDS:
        pieces = [flat.edges[kind] for flat in graphs if kind in flat.edges]
        if not pieces:
            continue
        arrays[f"edges:{kind.value}"] = concat32(pieces, axis=1, empty_shape=(2, 0))
        arrays[f"edgesplits:{kind.value}"] = _counts_splits(
            [flat.edge_array(kind).shape[1] for flat in graphs]
        )
    arrays["fingerprint"] = _string_array([_shard_fingerprint(arrays)])
    return arrays


def flat_graphs_from_arrays(archive) -> list[FlatGraph]:
    """Decode :func:`flat_graphs_to_arrays` output, validating the fingerprint.

    ``archive`` is anything mapping keys to arrays (an ``np.load`` result or
    a plain dict).  Raises :class:`PayloadError` on unknown versions, missing
    arrays or fingerprint mismatches — never returns a partially decoded
    shard.  Per-graph arrays are zero-copy slices of the shard columns.
    """
    try:
        loaded = {key: np.asarray(archive[key]) for key in _archive_keys(archive)}
        if int(loaded["format"][0]) != GRAPH_SHARD_FORMAT_VERSION:
            raise PayloadError(
                f"unsupported graph shard version {int(loaded['format'][0])!r}"
            )
        stored = str(loaded["fingerprint"][0])
        expected = _shard_fingerprint(loaded)
        if stored != expected:
            raise PayloadError("graph shard fingerprint mismatch (corrupted shard?)")

        num_graphs = int(loaded["num_graphs"][0])
        all_strings = _unpack_strings(loaded["strbytes"], loaded["strsplits"])
        meta = _unpack_strings(loaded["metabytes"], loaded["metasplits"])
        strgraph = loaded["strgraph"].tolist()
        nodesplits = loaded["nodesplits"].tolist()
        symsplits = loaded["symsplits"].tolist()
        nodes = loaded["nodes"]
        symbols = loaded["symbols"]
        occ = loaded["occ"]
        occcounts = loaded["occcounts"]
        edge_columns = [
            (kind, loaded[f"edges:{kind.value}"], loaded[f"edgesplits:{kind.value}"].tolist())
            for kind in ALL_EDGE_KINDS
            if f"edges:{kind.value}" in loaded
        ]

        graphs: list[FlatGraph] = []
        occ_cursor = 0
        for i in range(num_graphs):
            node_lo, node_hi = nodesplits[i], nodesplits[i + 1]
            sym_lo, sym_hi = symsplits[i], symsplits[i + 1]
            edges: dict[EdgeKind, np.ndarray] = {}
            for kind, column, splits in edge_columns:
                lo, hi = splits[i], splits[i + 1]
                if hi > lo:
                    edges[kind] = column[:, lo:hi]
            counts = occcounts[sym_lo:sym_hi]
            occurrence_splits = np.zeros(counts.shape[0] + 1, dtype=np.int32)
            np.cumsum(counts, out=occurrence_splits[1:])
            num_occurrences = int(occurrence_splits[-1]) if counts.size else 0
            graphs.append(
                FlatGraph(
                    filename=meta[2 * i],
                    source=meta[2 * i + 1],
                    strings=tuple(all_strings[strgraph[i] : strgraph[i + 1]]),
                    node_kind=nodes[0, node_lo:node_hi],
                    node_text=nodes[1, node_lo:node_hi],
                    node_line=nodes[2, node_lo:node_hi],
                    node_col=nodes[3, node_lo:node_hi],
                    edges=edges,
                    symbol_node=symbols[0, sym_lo:sym_hi],
                    symbol_name=symbols[1, sym_lo:sym_hi],
                    symbol_kind=symbols[2, sym_lo:sym_hi],
                    symbol_scope=symbols[3, sym_lo:sym_hi],
                    symbol_annotation=symbols[4, sym_lo:sym_hi],
                    symbol_line=symbols[5, sym_lo:sym_hi],
                    occurrence_ids=occ[occ_cursor : occ_cursor + num_occurrences],
                    occurrence_splits=occurrence_splits,
                )
            )
            occ_cursor += num_occurrences
    except PayloadError:
        raise
    except (KeyError, TypeError, ValueError, IndexError, AttributeError) as error:
        raise PayloadError(f"malformed graph shard: {error}") from error
    return graphs


def _archive_keys(archive) -> Sequence[str]:
    files = getattr(archive, "files", None)
    if files is not None:
        return files
    return list(archive.keys())


def write_graph_shard(path, graphs: Sequence[CodeGraph]) -> None:
    """Write graphs to a binary ``.npz`` shard at ``path``."""
    arrays = flat_graphs_to_arrays([graph.to_flat() for graph in graphs])
    with open(path, "wb") as handle:
        np.savez(handle, **arrays)


def read_graph_shard(path) -> list[CodeGraph]:
    """Read a binary shard back as (lazily materialised) :class:`CodeGraph`\\ s."""
    with np.load(path, allow_pickle=False) as archive:
        flats = flat_graphs_from_arrays(archive)
    return [CodeGraph.from_flat(flat) for flat in flats]


# ---------------------------------------------------------------------------
# Precomputed node features (the compile-once featurization layer)
# ---------------------------------------------------------------------------


def features_to_arrays(features: list[TextFeatures], fingerprint: str) -> dict[str, np.ndarray]:
    """Flatten per-graph subtoken features into ``np.savez``-ready arrays.

    Layout: one CSR id/row-split array pair per graph, plus the vocabulary
    fingerprint that ties the ids to the subtoken table they index.
    """
    arrays: dict[str, np.ndarray] = {
        "version": np.asarray([FEATURES_FORMAT_VERSION], dtype=np.int64),
        "num_graphs": np.asarray([len(features)], dtype=np.int64),
        "fingerprint": np.asarray([fingerprint]),
    }
    for index, feature in enumerate(features):
        if feature.kind != SUBTOKEN:
            raise ValueError(f"only subtoken features persist with the dataset, got {feature.kind!r}")
        arrays[f"ids_{index}"] = feature.ids
        arrays[f"splits_{index}"] = feature.row_splits
    return arrays


def features_from_arrays(archive) -> Optional[tuple[list[TextFeatures], str]]:
    """Rebuild per-graph features from a ``features.npz`` archive.

    Returns ``None`` for unknown versions or malformed archives — callers
    fall back to recomputing features, never fail the dataset load.
    """
    try:
        if int(archive["version"][0]) != FEATURES_FORMAT_VERSION:
            return None
        num_graphs = int(archive["num_graphs"][0])
        fingerprint = str(archive["fingerprint"][0])
        features = []
        for index in range(num_graphs):
            ids = np.asarray(archive[f"ids_{index}"], dtype=np.int64)
            row_splits = np.asarray(archive[f"splits_{index}"], dtype=np.int64)
            features.append(
                TextFeatures(
                    kind=SUBTOKEN, num_texts=row_splits.size - 1, ids=ids, row_splits=row_splits
                )
            )
    except (KeyError, ValueError, IndexError):
        return None
    return features, fingerprint


# ---------------------------------------------------------------------------
# Registry / vocabulary / lattice / dedup report
# ---------------------------------------------------------------------------


def registry_to_payload(registry: TypeRegistry) -> dict[str, Any]:
    """Encode a registry preserving id order *and* frequency counts."""
    return {
        "rarity_threshold": registry.rarity_threshold,
        "types": [[type_name, registry.count_of(type_name)] for type_name in registry],
    }


def registry_from_payload(payload: dict[str, Any]) -> TypeRegistry:
    registry = TypeRegistry(rarity_threshold=int(payload["rarity_threshold"]))
    # Restore by direct assignment (not ``add``): ids and Counter insertion
    # order must match the original exactly so ``classification_vocabulary``
    # breaks frequency ties identically after a round trip.
    for type_name, count in payload["types"]:
        registry._counts[type_name] = int(count)
        registry._type_to_id[type_name] = len(registry._id_to_type)
        registry._id_to_type.append(type_name)
    return registry


def subtokens_to_payload(vocabulary: SubtokenVocabulary) -> dict[str, Any]:
    return {
        "max_size": vocabulary.max_size,
        "min_count": vocabulary.min_count,
        "tokens": list(vocabulary.tokens),
    }


def subtokens_from_payload(payload: dict[str, Any]) -> SubtokenVocabulary:
    vocabulary = SubtokenVocabulary.from_tokens(payload["tokens"])
    vocabulary.max_size = max(int(payload["max_size"]), len(vocabulary.tokens))
    vocabulary.min_count = int(payload["min_count"])
    return vocabulary


def lattice_to_payload(lattice: TypeLattice) -> list[list[str]]:
    """All nominal edges of a lattice (defaults included; re-adding is idempotent)."""
    return sorted(
        [subtype, supertype]
        for subtype, supertypes in lattice._supertypes.items()
        for supertype in supertypes
    )


def lattice_from_payload(edges: list[list[str]]) -> TypeLattice:
    lattice = TypeLattice()
    lattice.add_class_hierarchy((subtype, supertype) for subtype, supertype in edges)
    return lattice


def dedup_report_to_payload(report: Optional[DeduplicationReport]) -> Optional[dict[str, Any]]:
    if report is None:
        return None
    return {
        "total_files": report.total_files,
        "removed_files": report.removed_files,
        "clusters": [[cluster.kept, list(cluster.removed)] for cluster in report.clusters],
    }


def dedup_report_from_payload(payload: Optional[dict[str, Any]]) -> Optional[DeduplicationReport]:
    if payload is None:
        return None
    return DeduplicationReport(
        total_files=int(payload["total_files"]),
        removed_files=int(payload["removed_files"]),
        clusters=[DuplicateCluster(kept=kept, removed=list(removed)) for kept, removed in payload["clusters"]],
    )
