"""JSON-payload serialization of graphs and datasets.

Two consumers share these helpers:

* the content-addressed :class:`~repro.corpus.ingest.GraphCache`, which
  persists one extracted :class:`~repro.graph.codegraph.CodeGraph` per
  source file so unchanged files are never re-parsed;
* sharded dataset persistence (:meth:`TypeAnnotationDataset.save` /
  :meth:`~repro.corpus.dataset.TypeAnnotationDataset.load`), which writes a
  whole assembled dataset — splits, samples, registry, vocabulary, lattice —
  to a directory that reloads in milliseconds.

Payloads are plain JSON-compatible dictionaries: corruption surfaces as a
decode/validation error (which the cache treats as a miss) rather than
arbitrary unpickling behaviour, and the format stays diffable and
language-neutral.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Optional

import numpy as np

from repro.corpus.dedup import DeduplicationReport, DuplicateCluster
from repro.graph.codegraph import CodeGraph
from repro.graph.edges import EdgeKind
from repro.graph.nodes import GraphNode, NodeKind, SymbolInfo, SymbolKind
from repro.graph.subtokens import SubtokenVocabulary
from repro.models.featurize import SUBTOKEN, TextFeatures
from repro.types.lattice import TypeLattice
from repro.types.registry import TypeRegistry

#: Version of the graph payload layout; part of every cache key, so bumping
#: it (or :data:`repro.corpus.ingest.EXTRACTOR_VERSION`) invalidates caches.
GRAPH_PAYLOAD_VERSION = 1

#: Version of the ``features.npz`` companion file written next to dataset
#: shards; unknown versions are ignored (features are recomputed instead).
FEATURES_FORMAT_VERSION = 1


class PayloadError(ValueError):
    """Raised when a payload cannot be decoded back into an object."""


# ---------------------------------------------------------------------------
# CodeGraph
# ---------------------------------------------------------------------------


def graph_to_payload(graph: CodeGraph) -> dict[str, Any]:
    """Encode a graph as a JSON-compatible dictionary."""
    return {
        "version": GRAPH_PAYLOAD_VERSION,
        "filename": graph.filename,
        "source": graph.source,
        "nodes": [[node.kind.value, node.text, node.lineno, node.col] for node in graph.nodes],
        "edges": {kind.value: [list(pair) for pair in pairs] for kind, pairs in graph.edges.items()},
        "symbols": [
            [
                symbol.node_index,
                symbol.name,
                symbol.kind.value,
                symbol.scope,
                symbol.annotation,
                symbol.lineno,
                list(symbol.occurrence_indices),
            ]
            for symbol in graph.symbols
        ],
    }


def graph_from_payload(payload: dict[str, Any], filename: Optional[str] = None) -> CodeGraph:
    """Decode a graph payload; ``filename`` overrides the stored name.

    The override is what makes graph caching content-addressed: a file moved
    or copied to a new path reuses the cached graph under its new name.
    """
    try:
        if payload["version"] != GRAPH_PAYLOAD_VERSION:
            raise PayloadError(f"unsupported graph payload version {payload['version']!r}")
        graph = CodeGraph(
            filename=filename if filename is not None else payload["filename"],
            source=payload["source"],
        )
        graph.nodes = [
            GraphNode(index=index, kind=NodeKind(kind), text=text, lineno=lineno, col=col)
            for index, (kind, text, lineno, col) in enumerate(payload["nodes"])
        ]
        graph.edges = defaultdict(
            list,
            {
                EdgeKind(kind): [(int(source), int(target)) for source, target in pairs]
                for kind, pairs in payload["edges"].items()
            },
        )
        graph.symbols = [
            SymbolInfo(
                node_index=node_index,
                name=name,
                kind=SymbolKind(kind),
                scope=scope,
                annotation=annotation,
                lineno=lineno,
                occurrence_indices=list(occurrences),
            )
            for node_index, name, kind, scope, annotation, lineno, occurrences in payload["symbols"]
        ]
        graph.validate()
    except PayloadError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise PayloadError(f"malformed graph payload: {error}") from error
    return graph


# ---------------------------------------------------------------------------
# Precomputed node features (the compile-once featurization layer)
# ---------------------------------------------------------------------------


def features_to_arrays(features: list[TextFeatures], fingerprint: str) -> dict[str, np.ndarray]:
    """Flatten per-graph subtoken features into ``np.savez``-ready arrays.

    Layout: one CSR id/row-split array pair per graph, plus the vocabulary
    fingerprint that ties the ids to the subtoken table they index.
    """
    arrays: dict[str, np.ndarray] = {
        "version": np.asarray([FEATURES_FORMAT_VERSION], dtype=np.int64),
        "num_graphs": np.asarray([len(features)], dtype=np.int64),
        "fingerprint": np.asarray([fingerprint]),
    }
    for index, feature in enumerate(features):
        if feature.kind != SUBTOKEN:
            raise ValueError(f"only subtoken features persist with the dataset, got {feature.kind!r}")
        arrays[f"ids_{index}"] = feature.ids
        arrays[f"splits_{index}"] = feature.row_splits
    return arrays


def features_from_arrays(archive) -> Optional[tuple[list[TextFeatures], str]]:
    """Rebuild per-graph features from a ``features.npz`` archive.

    Returns ``None`` for unknown versions or malformed archives — callers
    fall back to recomputing features, never fail the dataset load.
    """
    try:
        if int(archive["version"][0]) != FEATURES_FORMAT_VERSION:
            return None
        num_graphs = int(archive["num_graphs"][0])
        fingerprint = str(archive["fingerprint"][0])
        features = []
        for index in range(num_graphs):
            ids = np.asarray(archive[f"ids_{index}"], dtype=np.int64)
            row_splits = np.asarray(archive[f"splits_{index}"], dtype=np.int64)
            features.append(
                TextFeatures(
                    kind=SUBTOKEN, num_texts=row_splits.size - 1, ids=ids, row_splits=row_splits
                )
            )
    except (KeyError, ValueError, IndexError):
        return None
    return features, fingerprint


# ---------------------------------------------------------------------------
# Registry / vocabulary / lattice / dedup report
# ---------------------------------------------------------------------------


def registry_to_payload(registry: TypeRegistry) -> dict[str, Any]:
    """Encode a registry preserving id order *and* frequency counts."""
    return {
        "rarity_threshold": registry.rarity_threshold,
        "types": [[type_name, registry.count_of(type_name)] for type_name in registry],
    }


def registry_from_payload(payload: dict[str, Any]) -> TypeRegistry:
    registry = TypeRegistry(rarity_threshold=int(payload["rarity_threshold"]))
    # Restore by direct assignment (not ``add``): ids and Counter insertion
    # order must match the original exactly so ``classification_vocabulary``
    # breaks frequency ties identically after a round trip.
    for type_name, count in payload["types"]:
        registry._counts[type_name] = int(count)
        registry._type_to_id[type_name] = len(registry._id_to_type)
        registry._id_to_type.append(type_name)
    return registry


def subtokens_to_payload(vocabulary: SubtokenVocabulary) -> dict[str, Any]:
    return {
        "max_size": vocabulary.max_size,
        "min_count": vocabulary.min_count,
        "tokens": list(vocabulary.tokens),
    }


def subtokens_from_payload(payload: dict[str, Any]) -> SubtokenVocabulary:
    vocabulary = SubtokenVocabulary.from_tokens(payload["tokens"])
    vocabulary.max_size = max(int(payload["max_size"]), len(vocabulary.tokens))
    vocabulary.min_count = int(payload["min_count"])
    return vocabulary


def lattice_to_payload(lattice: TypeLattice) -> list[list[str]]:
    """All nominal edges of a lattice (defaults included; re-adding is idempotent)."""
    return sorted(
        [subtype, supertype]
        for subtype, supertypes in lattice._supertypes.items()
        for supertype in supertypes
    )


def lattice_from_payload(edges: list[list[str]]) -> TypeLattice:
    lattice = TypeLattice()
    lattice.add_class_hierarchy((subtype, supertype) for subtype, supertype in edges)
    return lattice


def dedup_report_to_payload(report: Optional[DeduplicationReport]) -> Optional[dict[str, Any]]:
    if report is None:
        return None
    return {
        "total_files": report.total_files,
        "removed_files": report.removed_files,
        "clusters": [[cluster.kept, list(cluster.removed)] for cluster in report.clusters],
    }


def dedup_report_from_payload(payload: Optional[dict[str, Any]]) -> Optional[DeduplicationReport]:
    if payload is None:
        return None
    return DeduplicationReport(
        total_files=int(payload["total_files"]),
        removed_files=int(payload["removed_files"]),
        clusters=[DuplicateCluster(kept=kept, removed=list(removed)) for kept, removed in payload["clusters"]],
    )
