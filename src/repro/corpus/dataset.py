"""Dataset assembly: sources → graphs → supervised symbol samples → splits.

This mirrors the pipeline of Sec. 6 "Data":

1. (optionally) augment files with annotations inferred by the lenient
   checker — the role pytype plays in the paper;
2. remove near-duplicate files;
3. build one program graph per file;
4. collect every annotated symbol whose annotation is informative (not
   ``Any``/``None``) into supervised samples;
5. build the type registry (frequencies, common/rare split) and the subtoken
   vocabulary;
6. split by *file* into train/validation/test (70/10/20 by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.checker.checker import CheckerMode, OptionalTypeChecker
from repro.corpus.dedup import DeduplicationReport, deduplicate_sources
from repro.corpus.synthesis import CorpusSynthesizer, SynthesisConfig
from repro.graph.builder import GraphBuildError, GraphBuilder
from repro.graph.codegraph import CodeGraph
from repro.graph.nodes import SymbolKind
from repro.graph.subtokens import SubtokenVocabulary, split_identifier
from repro.types.lattice import TypeLattice
from repro.types.normalize import canonical_string, is_informative
from repro.types.registry import TypeRegistry
from repro.utils.rng import SeededRNG


@dataclass
class AnnotatedSymbol:
    """One supervised example: a symbol node with a ground-truth type."""

    graph_index: int
    symbol_position: int
    node_index: int
    name: str
    kind: SymbolKind
    scope: str
    annotation: str  # canonical type string
    filename: str

    @property
    def qualified_name(self) -> str:
        return f"{self.filename}:{self.scope}::{self.name}"


@dataclass
class DatasetSplit:
    """One of the train/validation/test partitions."""

    name: str
    graphs: list[CodeGraph] = field(default_factory=list)
    samples: list[AnnotatedSymbol] = field(default_factory=list)

    @property
    def num_graphs(self) -> int:
        return len(self.graphs)

    @property
    def num_samples(self) -> int:
        return len(self.samples)

    def samples_of_kind(self, kind: SymbolKind) -> list[AnnotatedSymbol]:
        return [sample for sample in self.samples if sample.kind == kind]


@dataclass
class DatasetConfig:
    """Configuration of dataset assembly."""

    deduplicate: bool = True
    dedup_threshold: float = 0.8
    augment_with_inference: bool = False
    rarity_threshold: int = 20
    split_fractions: tuple[float, float, float] = (0.7, 0.1, 0.2)
    seed: int = 5
    max_deep_parameter_depth: Optional[int] = None


class TypeAnnotationDataset:
    """The full dataset: splits, registry, lattice and subtoken vocabulary."""

    def __init__(
        self,
        train: DatasetSplit,
        valid: DatasetSplit,
        test: DatasetSplit,
        registry: TypeRegistry,
        lattice: TypeLattice,
        subtokens: SubtokenVocabulary,
        dedup_report: Optional[DeduplicationReport] = None,
        config: Optional[DatasetConfig] = None,
        sources: Optional[dict[str, str]] = None,
    ) -> None:
        self.train = train
        self.valid = valid
        self.test = test
        self.registry = registry
        self.lattice = lattice
        self.subtokens = subtokens
        self.dedup_report = dedup_report
        self.config = config or DatasetConfig()
        #: Original (annotated, post-dedup) sources, keyed by filename.  The
        #: type-checking experiments of Sec. 6.3 insert predictions into these.
        self.sources = sources or {}

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_sources(
        cls,
        files: dict[str, str],
        class_edges: Optional[Iterable[tuple[str, str]]] = None,
        config: Optional[DatasetConfig] = None,
    ) -> "TypeAnnotationDataset":
        config = config or DatasetConfig()
        rng = SeededRNG(config.seed)

        if config.augment_with_inference:
            files = {name: _augment_with_inferred_annotations(source) for name, source in files.items()}

        dedup_report: Optional[DeduplicationReport] = None
        if config.deduplicate:
            files, dedup_report = deduplicate_sources(files, threshold=config.dedup_threshold)

        builder = GraphBuilder()
        graphs: list[CodeGraph] = []
        for filename in sorted(files):
            try:
                graphs.append(builder.build(files[filename], filename=filename))
            except GraphBuildError:
                continue  # skip unparsable files, like the paper's pipeline

        registry = TypeRegistry(rarity_threshold=config.rarity_threshold)
        subtokens = SubtokenVocabulary()
        all_samples: list[AnnotatedSymbol] = []
        for graph_index, graph in enumerate(graphs):
            for node_index, node_subtokens in graph.node_subtokens():
                subtokens.observe(node_subtokens)
            for symbol_position, symbol in enumerate(graph.symbols):
                if symbol.annotation is None or not is_informative(symbol.annotation):
                    continue
                canonical = registry.add(symbol.annotation)
                if canonical is None:
                    continue
                all_samples.append(
                    AnnotatedSymbol(
                        graph_index=graph_index,
                        symbol_position=symbol_position,
                        node_index=symbol.node_index,
                        name=symbol.name,
                        kind=symbol.kind,
                        scope=symbol.scope,
                        annotation=canonical,
                        filename=graph.filename,
                    )
                )
        subtokens.finalise()

        lattice = TypeLattice()
        if class_edges is not None:
            lattice.add_class_hierarchy(class_edges)
        lattice.add_class_hierarchy(_class_edges_from_sources(files))

        train, valid, test = cls._split_by_file(graphs, all_samples, config.split_fractions, rng)
        return cls(
            train, valid, test, registry, lattice, subtokens, dedup_report, config, sources=dict(files)
        )

    @classmethod
    def synthetic(
        cls,
        synthesis: Optional[SynthesisConfig] = None,
        config: Optional[DatasetConfig] = None,
    ) -> "TypeAnnotationDataset":
        """Generate a synthetic corpus and assemble the dataset in one call."""
        synthesizer = CorpusSynthesizer(synthesis)
        files = {entry.filename: entry.source for entry in synthesizer.generate()}
        return cls.from_sources(files, class_edges=synthesizer.class_hierarchy_edges(), config=config)

    # -- splitting -----------------------------------------------------------------------

    @staticmethod
    def _split_by_file(
        graphs: list[CodeGraph],
        samples: list[AnnotatedSymbol],
        fractions: tuple[float, float, float],
        rng: SeededRNG,
    ) -> tuple[DatasetSplit, DatasetSplit, DatasetSplit]:
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError("split fractions must sum to 1")
        order = rng.shuffle(list(range(len(graphs))))
        train_count = int(round(len(order) * fractions[0]))
        valid_count = int(round(len(order) * fractions[1]))
        assignments: dict[int, str] = {}
        for position, graph_index in enumerate(order):
            if position < train_count:
                assignments[graph_index] = "train"
            elif position < train_count + valid_count:
                assignments[graph_index] = "valid"
            else:
                assignments[graph_index] = "test"

        splits = {name: DatasetSplit(name=name) for name in ("train", "valid", "test")}
        graph_positions: dict[int, tuple[str, int]] = {}
        for graph_index, graph in enumerate(graphs):
            split_name = assignments[graph_index]
            split = splits[split_name]
            graph_positions[graph_index] = (split_name, len(split.graphs))
            split.graphs.append(graph)
        for sample in samples:
            split_name, local_index = graph_positions[sample.graph_index]
            relocated = AnnotatedSymbol(
                graph_index=local_index,
                symbol_position=sample.symbol_position,
                node_index=sample.node_index,
                name=sample.name,
                kind=sample.kind,
                scope=sample.scope,
                annotation=sample.annotation,
                filename=sample.filename,
            )
            splits[split_name].samples.append(relocated)
        return splits["train"], splits["valid"], splits["test"]

    # -- reporting ------------------------------------------------------------------------

    @property
    def splits(self) -> dict[str, DatasetSplit]:
        return {"train": self.train, "valid": self.valid, "test": self.test}

    def summary(self) -> dict[str, object]:
        statistics = self.registry.statistics()
        return {
            "files": sum(split.num_graphs for split in self.splits.values()),
            "train_graphs": self.train.num_graphs,
            "valid_graphs": self.valid.num_graphs,
            "test_graphs": self.test.num_graphs,
            "train_samples": self.train.num_samples,
            "valid_samples": self.valid.num_samples,
            "test_samples": self.test.num_samples,
            "distinct_types": statistics.distinct_types,
            "rare_annotation_fraction": statistics.rare_annotation_fraction,
            "top10_fraction": statistics.top10_fraction,
            "zipf_exponent": statistics.zipf_exponent,
            "dedup_removed": self.dedup_report.removed_files if self.dedup_report else 0,
        }


def _augment_with_inferred_annotations(source: str) -> str:
    """Add lenient-checker-inferred return annotations to unannotated functions.

    This mirrors the paper's pytype augmentation.  Only function returns are
    inserted (the inference for variables would require rewriting assignment
    statements, which adds noise without changing what the experiment tests).
    """
    import ast

    inferred = OptionalTypeChecker(CheckerMode.LENIENT).infer_annotations(source)
    if not inferred:
        return source
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source

    class _ReturnAnnotator(ast.NodeTransformer):
        def __init__(self) -> None:
            self._scope = ["module"]

        def _visit_scope(self, node, name):
            self._scope.append(name)
            self.generic_visit(node)
            self._scope.pop()
            return node

        def visit_ClassDef(self, node: ast.ClassDef):
            return self._visit_scope(node, node.name)

        def visit_FunctionDef(self, node: ast.FunctionDef):
            scope_path = ".".join(self._scope + [node.name])
            key = (scope_path, "<return>", "function_return")
            if node.returns is None and key in inferred:
                try:
                    node.returns = ast.parse(inferred[key], mode="eval").body
                except SyntaxError:
                    pass
            return self._visit_scope(node, node.name)

        visit_AsyncFunctionDef = visit_FunctionDef

    new_tree = _ReturnAnnotator().visit(tree)
    ast.fix_missing_locations(new_tree)
    return ast.unparse(new_tree)


def _class_edges_from_sources(files: dict[str, str]) -> list[tuple[str, str]]:
    """Extract ``class Sub(Base)`` edges from every file for the lattice."""
    import ast

    edges: list[tuple[str, str]] = []
    for source in files.values():
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        edges.append((node.name, base.id))
    return edges
