"""Dataset assembly: sources → graphs → supervised symbol samples → splits.

This mirrors the pipeline of Sec. 6 "Data":

1. (optionally) augment files with annotations inferred by the lenient
   checker — the role pytype plays in the paper;
2. remove near-duplicate files;
3. build one program graph per file;
4. collect every annotated symbol whose annotation is informative (not
   ``Any``/``None``) into supervised samples;
5. build the type registry (frequencies, common/rare split) and the subtoken
   vocabulary;
6. split by *file* into train/validation/test (70/10/20 by default).
"""

from __future__ import annotations

import json
import math
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.checker.checker import CheckerMode, OptionalTypeChecker
from repro.corpus import serialize
from repro.corpus.dedup import DeduplicationReport, deduplicate_sources
from repro.corpus.ingest import IngestConfig, IngestReport, ingest_sources, parallel_map
from repro.corpus.synthesis import CorpusSynthesizer, SynthesisConfig
from repro.graph.codegraph import CodeGraph
from repro.graph.nodes import SymbolKind
from repro.graph.subtokens import SubtokenVocabulary
from repro.types.lattice import TypeLattice
from repro.types.registry import TypeRegistry
from repro.utils.rng import SeededRNG

#: On-disk format of :meth:`TypeAnnotationDataset.save` directories.
DATASET_FORMAT_VERSION = 1


@dataclass
class AnnotatedSymbol:
    """One supervised example: a symbol node with a ground-truth type."""

    graph_index: int
    symbol_position: int
    node_index: int
    name: str
    kind: SymbolKind
    scope: str
    annotation: str  # canonical type string
    filename: str

    @property
    def qualified_name(self) -> str:
        return f"{self.filename}:{self.scope}::{self.name}"


@dataclass
class DatasetSplit:
    """One of the train/validation/test partitions.

    ``graphs`` is list-like rather than necessarily a list: a dataset loaded
    with ``mmap=True`` hands out a :class:`~repro.corpus.serialize.LazyView`
    that materialises :class:`CodeGraph` objects on demand from the mapped
    shard columns, so indexing, iteration and slicing all work but nothing
    corpus-sized is resident.
    """

    name: str
    graphs: list[CodeGraph] = field(default_factory=list)
    samples: list[AnnotatedSymbol] = field(default_factory=list)
    #: Precomputed subtoken features per graph (parallel to ``graphs``),
    #: produced by :meth:`TypeAnnotationDataset.featurize_nodes` or restored
    #: from the dataset directory; compiled training plans consume them so
    #: node texts are tokenized exactly once per corpus.
    node_features: Optional[list] = field(default=None, repr=False, compare=False)
    #: Fingerprint of the vocabulary the features were computed against.
    features_fingerprint: Optional[str] = field(default=None, repr=False, compare=False)
    #: Lazily-built sample groupings: ``(num_samples, by_graph, by_kind)``.
    #: Rebuilt whenever the sample count changes, so batch formation and
    #: kind breakdowns stop rescanning ``samples`` once per graph/kind.
    _group_cache: Optional[tuple] = field(default=None, init=False, repr=False, compare=False)

    @property
    def num_graphs(self) -> int:
        return len(self.graphs)

    @property
    def num_samples(self) -> int:
        return len(self.samples)

    def _grouped(self) -> tuple:
        # Invalidated when the list object or its length changes.  Replacing
        # individual elements in place (same list, same length) is not
        # detected — treat ``samples`` as append-only/replace-wholesale.
        key = (id(self.samples), len(self.samples))
        cached = self._group_cache
        if cached is None or cached[0] != key:
            by_graph: dict[int, list[AnnotatedSymbol]] = {}
            by_kind: dict[SymbolKind, list[AnnotatedSymbol]] = {}
            for sample in self.samples:
                by_graph.setdefault(sample.graph_index, []).append(sample)
                by_kind.setdefault(sample.kind, []).append(sample)
            cached = (key, by_graph, by_kind)
            self._group_cache = cached
        return cached

    def samples_by_graph(self) -> dict[int, list[AnnotatedSymbol]]:
        """Samples grouped by ``graph_index``, in sample order (cached view — do not mutate)."""
        return self._grouped()[1]

    def samples_of_kind(self, kind: SymbolKind) -> list[AnnotatedSymbol]:
        return list(self._grouped()[2].get(kind, ()))


@dataclass
class DatasetConfig:
    """Configuration of dataset assembly."""

    deduplicate: bool = True
    dedup_threshold: float = 0.8
    augment_with_inference: bool = False
    rarity_threshold: int = 20
    split_fractions: tuple[float, float, float] = (0.7, 0.1, 0.2)
    seed: int = 5
    max_deep_parameter_depth: Optional[int] = None


class TypeAnnotationDataset:
    """The full dataset: splits, registry, lattice and subtoken vocabulary."""

    def __init__(
        self,
        train: DatasetSplit,
        valid: DatasetSplit,
        test: DatasetSplit,
        registry: TypeRegistry,
        lattice: TypeLattice,
        subtokens: SubtokenVocabulary,
        dedup_report: Optional[DeduplicationReport] = None,
        config: Optional[DatasetConfig] = None,
        sources: Optional[dict[str, str]] = None,
    ) -> None:
        self.train = train
        self.valid = valid
        self.test = test
        self.registry = registry
        self.lattice = lattice
        self.subtokens = subtokens
        self.dedup_report = dedup_report
        self.config = config or DatasetConfig()
        #: Original (annotated, post-dedup) sources, keyed by filename.  The
        #: type-checking experiments of Sec. 6.3 insert predictions into these.
        self.sources = sources or {}
        #: Filled by :meth:`from_sources` with the extraction statistics of
        #: the ingestion run (cache hits, parallelism, throughput).
        self.ingest_report: Optional[IngestReport] = None

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_sources(
        cls,
        files: dict[str, str],
        class_edges: Optional[Iterable[tuple[str, str]]] = None,
        config: Optional[DatasetConfig] = None,
        ingest: Optional[IngestConfig] = None,
    ) -> "TypeAnnotationDataset":
        """Assemble a dataset from sources via the ingestion pipeline.

        ``ingest`` controls parallelism and graph caching
        (:class:`~repro.corpus.ingest.IngestConfig`); the assembled dataset
        is identical for every ``jobs``/cache setting — workers are pure and
        files are processed in sorted order.
        """
        config = config or DatasetConfig()
        ingest = ingest or IngestConfig()
        rng = SeededRNG(config.seed)

        if config.augment_with_inference:
            augmented = parallel_map(_augment_item, sorted(files.items()), ingest.effective_jobs())
            files = dict(augmented)

        dedup_report: Optional[DeduplicationReport] = None
        if config.deduplicate:
            files, dedup_report = deduplicate_sources(files, threshold=config.dedup_threshold)

        # Unparsable files are skipped (report.failed_files), like the
        # paper's pipeline.
        extracted_files, ingest_report = ingest_sources(files, ingest)
        graphs: list[CodeGraph] = [extracted.graph for extracted in extracted_files]

        registry = TypeRegistry(rarity_threshold=config.rarity_threshold)
        subtokens = SubtokenVocabulary()
        all_samples: list[AnnotatedSymbol] = []
        for graph_index, extracted in enumerate(extracted_files):
            for node_index, node_subtokens in extracted.graph.node_subtokens():
                subtokens.observe(node_subtokens)
            for symbol_position, symbol in extracted.annotated_symbols:
                canonical = registry.add(symbol.annotation)
                if canonical is None:
                    continue
                all_samples.append(
                    AnnotatedSymbol(
                        graph_index=graph_index,
                        symbol_position=symbol_position,
                        node_index=symbol.node_index,
                        name=symbol.name,
                        kind=symbol.kind,
                        scope=symbol.scope,
                        annotation=canonical,
                        filename=extracted.graph.filename,
                    )
                )
        subtokens.finalise()

        lattice = TypeLattice()
        if class_edges is not None:
            lattice.add_class_hierarchy(class_edges)
        lattice.add_class_hierarchy(_class_edges_from_sources(files))

        train, valid, test = cls._split_by_file(graphs, all_samples, config.split_fractions, rng)
        dataset = cls(
            train, valid, test, registry, lattice, subtokens, dedup_report, config, sources=dict(files)
        )
        dataset.ingest_report = ingest_report
        return dataset

    @classmethod
    def synthetic(
        cls,
        synthesis: Optional[SynthesisConfig] = None,
        config: Optional[DatasetConfig] = None,
        ingest: Optional[IngestConfig] = None,
    ) -> "TypeAnnotationDataset":
        """Generate a synthetic corpus and assemble the dataset in one call."""
        synthesizer = CorpusSynthesizer(synthesis)
        files = {entry.filename: entry.source for entry in synthesizer.generate()}
        return cls.from_sources(
            files, class_edges=synthesizer.class_hierarchy_edges(), config=config, ingest=ingest
        )

    # -- featurization -------------------------------------------------------------------

    def featurize_nodes(self, force: bool = False) -> str:
        """Compute every split's per-graph subtoken features exactly once.

        Returns the vocabulary fingerprint the features are tied to.  The
        compiled training plan (:class:`repro.core.trainer.BatchPlan`) reuses
        these arrays instead of re-tokenizing node texts, and :meth:`save`
        persists them alongside the graph shards so a reloaded dataset never
        tokenizes at all.
        """
        from repro.models.featurize import SUBTOKEN, FeatureExtractor

        extractor = FeatureExtractor(SUBTOKEN, subtoken_vocabulary=self.subtokens)
        fingerprint = extractor.fingerprint()
        for split in self.splits.values():
            if not force and split.features_fingerprint == fingerprint and split.node_features is not None:
                continue
            split.node_features = [extractor.features_for_graph(graph) for graph in split.graphs]
            split.features_fingerprint = fingerprint
        return fingerprint

    # -- persistence ---------------------------------------------------------------------

    def save(
        self,
        path: Union[str, Path],
        shard_size: int = 64,
        include_features: bool = True,
        shard_format: str = "binary",
    ) -> Path:
        """Persist the assembled dataset to a directory, graphs sharded.

        Layout: ``dataset.json`` (manifest: config, splits' samples,
        registry, vocabulary, lattice, dedup report), ``sources.json``,
        graph shard files of at most ``shard_size`` graphs each and —
        unless ``include_features`` is off — ``features.npz`` with each
        graph's precomputed subtoken id arrays.  ``shard_format="binary"``
        (the default) writes fingerprint-validated ``graphs-NNNNN.npz``
        archives of the columnar :class:`~repro.graph.flatgraph.FlatGraph`
        arrays — several times faster to write and load than JSON and never
        materialising per-node objects; ``shard_format="json"`` writes the
        legacy ``graphs-NNNNN.json`` payloads.  :meth:`load` reads either
        (per shard, by extension) and restores a dataset whose splits,
        sample order, registry ids and vocabulary are identical to the
        original — so a corpus is ingested (and featurized) once and
        reloaded instantly by the trainer, the benchmarks and the engine.

        ``shard_format="raw"`` writes each shard as a ``graphs-NNNNN.raw``
        *directory* of plain ``.npy`` columns (and the features as a
        ``features.raw`` directory) — the zero-copy layout
        ``load(..., mmap=True)`` memory-maps for out-of-core training.
        """
        if shard_format not in ("binary", "json", "raw"):
            raise ValueError(f"unknown shard format {shard_format!r}")
        path = Path(path)
        path.mkdir(parents=True, exist_ok=True)
        shard_size = max(1, int(shard_size))

        splits_payload: dict[str, dict] = {}
        all_graphs: list[CodeGraph] = []
        for split_name, split in self.splits.items():
            splits_payload[split_name] = {
                "num_graphs": split.num_graphs,
                "samples": [
                    [
                        sample.graph_index,
                        sample.symbol_position,
                        sample.node_index,
                        sample.name,
                        sample.kind.value,
                        sample.scope,
                        sample.annotation,
                        sample.filename,
                    ]
                    for sample in split.samples
                ],
            }
            all_graphs.extend(split.graphs)

        num_shards = max(1, math.ceil(len(all_graphs) / shard_size))
        extension = {"binary": "npz", "json": "json", "raw": "raw"}[shard_format]
        shard_names: list[str] = []
        for shard_index in range(num_shards):
            shard_name = f"graphs-{shard_index:05d}.{extension}"
            shard_names.append(shard_name)
            chunk = all_graphs[shard_index * shard_size : (shard_index + 1) * shard_size]
            if shard_format == "binary":
                serialize.write_graph_shard(path / shard_name, chunk)
            elif shard_format == "raw":
                serialize.write_graph_shard_raw(path / shard_name, chunk)
            else:
                payloads = [serialize.graph_to_payload(graph) for graph in chunk]
                (path / shard_name).write_text(
                    json.dumps({"graphs": payloads}, separators=(",", ":")), encoding="utf-8"
                )

        manifest = {
            "format_version": DATASET_FORMAT_VERSION,
            "config": asdict(self.config),
            "splits": splits_payload,
            "graph_shards": shard_names,
            "registry": serialize.registry_to_payload(self.registry),
            "subtokens": serialize.subtokens_to_payload(self.subtokens),
            "lattice_edges": serialize.lattice_to_payload(self.lattice),
            "dedup": serialize.dedup_report_to_payload(self.dedup_report),
        }
        (path / "dataset.json").write_text(json.dumps(manifest, separators=(",", ":")), encoding="utf-8")
        (path / "sources.json").write_text(
            json.dumps(self.sources, separators=(",", ":")), encoding="utf-8"
        )
        if include_features:
            import numpy as np

            fingerprint = self.featurize_nodes()
            flat_features = [
                feature
                for split in self.splits.values()
                for feature in (split.node_features or [])
            ]
            if shard_format == "raw":
                serialize.write_features_raw(path / "features.raw", flat_features, fingerprint)
            else:
                np.savez_compressed(
                    path / "features.npz", **serialize.features_to_arrays(flat_features, fingerprint)
                )
        return path

    @classmethod
    def load(cls, path: Union[str, Path], mmap: bool = False) -> "TypeAnnotationDataset":
        """Restore a dataset saved with :meth:`save`.

        Binary ``.npz`` shards load as columnar graphs (validated against
        their stored fingerprint); legacy ``.json`` shards load through the
        original payload decoder — directories written by older versions
        keep working unchanged.  ``.raw`` shard directories load eagerly by
        default (same fingerprint validation as ``.npz``).

        ``mmap=True`` requires every shard to be ``.raw`` and memory-maps
        the columns read-only instead of materialising graphs: splits hand
        out on-demand :class:`CodeGraph` views, persisted features stay
        mapped, and multiple processes share the page cache.  Content
        fingerprints are *not* verified in this mode (verification would
        page in the whole corpus); structural shape checks still run.
        """
        path = Path(path)
        manifest = json.loads((path / "dataset.json").read_text(encoding="utf-8"))
        version = manifest.get("format_version")
        if version != DATASET_FORMAT_VERSION:
            raise ValueError(f"unsupported dataset format version {version!r}")

        if mmap:
            not_raw = [name for name in manifest["graph_shards"] if not name.endswith(".raw")]
            if not_raw:
                raise ValueError(
                    "mmap=True requires raw shard directories; "
                    f"{not_raw[0]!r} is not (re-save with shard_format='raw')"
                )
            store = serialize.LazyGraphStore(
                [serialize.RawGraphShard(path / name) for name in manifest["graph_shards"]]
            )
            all_graphs = serialize.LazyView(store.graph, 0, len(store))
        else:
            all_graphs: list[CodeGraph] = []
            for shard_name in manifest["graph_shards"]:
                if shard_name.endswith(".npz"):
                    all_graphs.extend(serialize.read_graph_shard(path / shard_name))
                elif shard_name.endswith(".raw"):
                    all_graphs.extend(serialize.read_graph_shard_raw(path / shard_name))
                else:
                    shard = json.loads((path / shard_name).read_text(encoding="utf-8"))
                    all_graphs.extend(
                        serialize.graph_from_payload(payload) for payload in shard["graphs"]
                    )

        splits: dict[str, DatasetSplit] = {}
        cursor = 0
        for split_name in ("train", "valid", "test"):
            split_payload = manifest["splits"][split_name]
            num_graphs = int(split_payload["num_graphs"])
            split = DatasetSplit(name=split_name)
            split.graphs = all_graphs[cursor : cursor + num_graphs]
            cursor += num_graphs
            split.samples = [
                AnnotatedSymbol(
                    graph_index=graph_index,
                    symbol_position=symbol_position,
                    node_index=node_index,
                    name=name,
                    kind=SymbolKind(kind),
                    scope=scope,
                    annotation=annotation,
                    filename=filename,
                )
                for graph_index, symbol_position, node_index, name, kind, scope, annotation, filename
                in split_payload["samples"]
            ]
            splits[split_name] = split
        if cursor != len(all_graphs):
            raise ValueError(
                f"dataset directory holds {len(all_graphs)} graphs but splits claim {cursor}"
            )

        config_payload = dict(manifest["config"])
        config_payload["split_fractions"] = tuple(config_payload["split_fractions"])
        sources_path = path / "sources.json"
        sources = json.loads(sources_path.read_text(encoding="utf-8")) if sources_path.exists() else {}
        dataset = cls(
            splits["train"],
            splits["valid"],
            splits["test"],
            serialize.registry_from_payload(manifest["registry"]),
            serialize.lattice_from_payload(manifest["lattice_edges"]),
            serialize.subtokens_from_payload(manifest["subtokens"]),
            serialize.dedup_report_from_payload(manifest.get("dedup")),
            DatasetConfig(**config_payload),
            sources=sources,
        )
        dataset._attach_features(path, mmap=mmap)
        return dataset

    def _attach_features(self, path: Path, mmap: bool = False) -> None:
        """Restore persisted per-graph features; silently skip stale/missing files.

        The vocabulary fingerprint is validated *before* any id arrays are
        decoded: ``np.load`` reads ``.npz`` members lazily per key, so a
        stale-vocabulary directory costs two tiny reads instead of inflating
        the whole archive just to throw it away.
        """
        from repro.models.featurize import SUBTOKEN, vocabulary_fingerprint

        expected_fingerprint = vocabulary_fingerprint(SUBTOKEN, self.subtokens.tokens)
        expected_graphs = sum(split.num_graphs for split in self.splits.values())

        raw_path = path / "features.raw"
        if raw_path.is_dir():
            restored = serialize.read_features_raw(raw_path, mmap=mmap)
            if restored is None:
                return
            features, fingerprint = restored
            if fingerprint != expected_fingerprint or len(features) != expected_graphs:
                return
            self._adopt_features(features, fingerprint)
            return

        features_path = path / "features.npz"
        if not features_path.exists():
            return
        import numpy as np

        with np.load(features_path, allow_pickle=False) as archive:
            # Features index the embedding rows of this vocabulary; a
            # mismatch (e.g. a hand-edited directory) means they must be
            # recomputed — decide that from the header entries alone.
            try:
                if int(archive["version"][0]) != serialize.FEATURES_FORMAT_VERSION:
                    return
                if str(archive["fingerprint"][0]) != expected_fingerprint:
                    return
                if int(archive["num_graphs"][0]) != expected_graphs:
                    return
            except (KeyError, ValueError, IndexError):
                return
            restored = serialize.features_from_arrays(archive)
        if restored is None:
            return
        self._adopt_features(*restored)

    def _adopt_features(self, features, fingerprint: str) -> None:
        cursor = 0
        for split in self.splits.values():
            split.node_features = features[cursor : cursor + split.num_graphs]
            split.features_fingerprint = fingerprint
            cursor += split.num_graphs

    # -- splitting -----------------------------------------------------------------------

    @staticmethod
    def _split_by_file(
        graphs: list[CodeGraph],
        samples: list[AnnotatedSymbol],
        fractions: tuple[float, float, float],
        rng: SeededRNG,
    ) -> tuple[DatasetSplit, DatasetSplit, DatasetSplit]:
        if abs(sum(fractions) - 1.0) > 1e-6:
            raise ValueError("split fractions must sum to 1")
        order = rng.shuffle(list(range(len(graphs))))
        train_count = int(round(len(order) * fractions[0]))
        valid_count = int(round(len(order) * fractions[1]))
        assignments: dict[int, str] = {}
        for position, graph_index in enumerate(order):
            if position < train_count:
                assignments[graph_index] = "train"
            elif position < train_count + valid_count:
                assignments[graph_index] = "valid"
            else:
                assignments[graph_index] = "test"

        splits = {name: DatasetSplit(name=name) for name in ("train", "valid", "test")}
        graph_positions: dict[int, tuple[str, int]] = {}
        for graph_index, graph in enumerate(graphs):
            split_name = assignments[graph_index]
            split = splits[split_name]
            graph_positions[graph_index] = (split_name, len(split.graphs))
            split.graphs.append(graph)
        for sample in samples:
            split_name, local_index = graph_positions[sample.graph_index]
            relocated = AnnotatedSymbol(
                graph_index=local_index,
                symbol_position=sample.symbol_position,
                node_index=sample.node_index,
                name=sample.name,
                kind=sample.kind,
                scope=sample.scope,
                annotation=sample.annotation,
                filename=sample.filename,
            )
            splits[split_name].samples.append(relocated)
        return splits["train"], splits["valid"], splits["test"]

    # -- reporting ------------------------------------------------------------------------

    @property
    def splits(self) -> dict[str, DatasetSplit]:
        return {"train": self.train, "valid": self.valid, "test": self.test}

    def summary(self) -> dict[str, object]:
        statistics = self.registry.statistics()
        return {
            "files": sum(split.num_graphs for split in self.splits.values()),
            "train_graphs": self.train.num_graphs,
            "valid_graphs": self.valid.num_graphs,
            "test_graphs": self.test.num_graphs,
            "train_samples": self.train.num_samples,
            "valid_samples": self.valid.num_samples,
            "test_samples": self.test.num_samples,
            "distinct_types": statistics.distinct_types,
            "rare_annotation_fraction": statistics.rare_annotation_fraction,
            "top10_fraction": statistics.top10_fraction,
            "zipf_exponent": statistics.zipf_exponent,
            "dedup_removed": self.dedup_report.removed_files if self.dedup_report else 0,
        }


def _augment_item(item: tuple[str, str]) -> tuple[str, str]:
    """Pool-friendly wrapper: one (filename, source) pair → augmented pair."""
    name, source = item
    return name, _augment_with_inferred_annotations(source)


def _augment_with_inferred_annotations(source: str) -> str:
    """Add lenient-checker-inferred return annotations to unannotated functions.

    This mirrors the paper's pytype augmentation.  Only function returns are
    inserted (the inference for variables would require rewriting assignment
    statements, which adds noise without changing what the experiment tests).
    """
    import ast

    inferred = OptionalTypeChecker(CheckerMode.LENIENT).infer_annotations(source)
    if not inferred:
        return source
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return source

    class _ReturnAnnotator(ast.NodeTransformer):
        def __init__(self) -> None:
            self._scope = ["module"]

        def _visit_scope(self, node, name):
            self._scope.append(name)
            self.generic_visit(node)
            self._scope.pop()
            return node

        def visit_ClassDef(self, node: ast.ClassDef):
            return self._visit_scope(node, node.name)

        def visit_FunctionDef(self, node: ast.FunctionDef):
            scope_path = ".".join(self._scope + [node.name])
            key = (scope_path, "<return>", "function_return")
            if node.returns is None and key in inferred:
                try:
                    node.returns = ast.parse(inferred[key], mode="eval").body
                except SyntaxError:
                    pass
            return self._visit_scope(node, node.name)

        visit_AsyncFunctionDef = visit_FunctionDef

    new_tree = _ReturnAnnotator().visit(tree)
    ast.fix_missing_locations(new_tree)
    return ast.unparse(new_tree)


def _class_edges_from_sources(files: dict[str, str]) -> list[tuple[str, str]]:
    """Extract ``class Sub(Base)`` edges from every file for the lattice."""
    import ast

    edges: list[tuple[str, str]] = []
    for source in files.values():
        try:
            tree = ast.parse(source)
        except SyntaxError:
            continue
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                for base in node.bases:
                    if isinstance(base, ast.Name):
                        edges.append((node.name, base.id))
    return edges
