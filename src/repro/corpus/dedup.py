"""Near-duplicate file detection and removal.

The paper removes more than 133k near-duplicate files before splitting its
corpus, citing Allamanis (2019): leaving duplicates in place leaks test data
into training and inflates results.  This module reimplements the essential
mechanism — token-multiset similarity with a configurable threshold and
cluster-based removal keeping a single exemplar per cluster.
"""

from __future__ import annotations

import io
import tokenize
from collections import Counter
from dataclasses import dataclass


def file_token_fingerprint(source: str) -> Counter:
    """Identifier/literal multiset of a file, ignoring comments and layout."""
    counts: Counter[str] = Counter()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type in (tokenize.NAME, tokenize.NUMBER, tokenize.STRING):
                counts[token.string] += 1
    except (tokenize.TokenError, IndentationError):
        # Unparseable files fall back to a line-based fingerprint.
        for line in source.splitlines():
            stripped = line.strip()
            if stripped:
                counts[stripped] += 1
    return counts


def jaccard_similarity(left: Counter, right: Counter) -> float:
    """Multiset Jaccard similarity of two fingerprints."""
    if not left and not right:
        return 1.0
    intersection = sum((left & right).values())
    union = sum((left | right).values())
    return intersection / union if union else 0.0


@dataclass
class DuplicateCluster:
    """A group of near-identical files; ``kept`` is the exemplar that stays."""

    kept: str
    removed: list[str]


@dataclass
class DeduplicationReport:
    """Summary of a deduplication run, mirroring the paper's data statistics."""

    total_files: int
    removed_files: int
    clusters: list[DuplicateCluster]

    @property
    def kept_files(self) -> int:
        return self.total_files - self.removed_files


class Deduplicator:
    """Greedy near-duplicate clustering over token fingerprints.

    Files are compared pairwise against existing cluster exemplars; a file
    whose similarity with an exemplar exceeds ``threshold`` joins that
    cluster, otherwise it becomes a new exemplar.  Greedy clustering is the
    standard approximation used by code-duplication tools and is exact enough
    at corpus scale.
    """

    def __init__(self, threshold: float = 0.8) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.threshold = threshold

    def deduplicate(self, files: dict[str, str]) -> tuple[dict[str, str], DeduplicationReport]:
        """Return ``(kept_files, report)`` for a mapping of filename → source."""
        exemplars: list[tuple[str, Counter]] = []
        clusters: dict[str, DuplicateCluster] = {}
        kept: dict[str, str] = {}
        removed = 0

        for filename in sorted(files):
            fingerprint = file_token_fingerprint(files[filename])
            matched_exemplar = None
            for exemplar_name, exemplar_fingerprint in exemplars:
                if jaccard_similarity(fingerprint, exemplar_fingerprint) >= self.threshold:
                    matched_exemplar = exemplar_name
                    break
            if matched_exemplar is None:
                exemplars.append((filename, fingerprint))
                clusters[filename] = DuplicateCluster(kept=filename, removed=[])
                kept[filename] = files[filename]
            else:
                clusters[matched_exemplar].removed.append(filename)
                removed += 1

        report = DeduplicationReport(
            total_files=len(files),
            removed_files=removed,
            clusters=[cluster for cluster in clusters.values() if cluster.removed],
        )
        return kept, report


def deduplicate_sources(files: dict[str, str], threshold: float = 0.8) -> tuple[dict[str, str], DeduplicationReport]:
    """Convenience wrapper around :class:`Deduplicator`."""
    return Deduplicator(threshold=threshold).deduplicate(files)
