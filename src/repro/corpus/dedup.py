"""Near-duplicate file detection and removal.

The paper removes more than 133k near-duplicate files before splitting its
corpus, citing Allamanis (2019): leaving duplicates in place leaks test data
into training and inflates results.  This module reimplements the essential
mechanism — token-multiset similarity with a configurable threshold and
cluster-based removal keeping a single exemplar per cluster.

Candidate generation is **banded MinHash** by default: each file's token
set is summarised by a fixed number of MinHash values, grouped into bands,
and only files sharing at least one band bucket with an existing exemplar
are compared exactly.  The exact multiset-Jaccard check still decides
membership, so MinHash only prunes comparisons — at corpus scale the scan
drops from O(files × exemplars) fingerprint intersections to
O(files × candidates), with candidates a small constant for non-duplicates.
``candidate_strategy="pairwise"`` retains the original exhaustive scan; the
test suite uses it as the reference oracle the banded path must match.
"""

from __future__ import annotations

import hashlib
import io
import tokenize
from collections import Counter
from dataclasses import dataclass
from typing import Optional

import numpy as np


def file_token_fingerprint(source: str) -> Counter:
    """Identifier/literal multiset of a file, ignoring comments and layout."""
    counts: Counter[str] = Counter()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type in (tokenize.NAME, tokenize.NUMBER, tokenize.STRING):
                counts[token.string] += 1
    except (tokenize.TokenError, IndentationError):
        # Unparseable files fall back to a line-based fingerprint.
        for line in source.splitlines():
            stripped = line.strip()
            if stripped:
                counts[stripped] += 1
    return counts


def jaccard_similarity(left: Counter, right: Counter) -> float:
    """Multiset Jaccard similarity of two fingerprints."""
    if not left and not right:
        return 1.0
    intersection = sum((left & right).values())
    union = sum((left | right).values())
    return intersection / union if union else 0.0


@dataclass
class DuplicateCluster:
    """A group of near-identical files; ``kept`` is the exemplar that stays."""

    kept: str
    removed: list[str]


@dataclass
class DeduplicationReport:
    """Summary of a deduplication run, mirroring the paper's data statistics."""

    total_files: int
    removed_files: int
    clusters: list[DuplicateCluster]

    @property
    def kept_files(self) -> int:
        return self.total_files - self.removed_files


class _MinHashIndex:
    """Banded MinHash index over exemplar token *multisets*.

    The clustering threshold is **multiset** Jaccard, so signatures hash the
    multiset directly: a token appearing ``c`` times contributes ``c``
    distinct elements ``(token, 0) … (token, c − 1)``.  Under that expansion
    the plain set Jaccard of two expanded files equals their multiset
    Jaccard exactly (``|A ∩ B| = Σ min`` counts, ``|A ∪ B| = Σ max``), so the
    MinHash collision probability matches the quantity being thresholded —
    repeated-token-heavy files (generated/boilerplate code) get no blind
    spot.

    ``num_permutations`` MinHash values per file, grouped into bands of
    ``band_rows`` values; two files become candidates when any band hashes
    identically.  With the default 64 permutations in 32 bands of 2, a pair
    at similarity 0.5 is recalled with probability ≈ 1 − (1 − 0.5²)³²
    > 0.9999.  :func:`for_threshold` drops to single-row bands (pure OR over
    all 64 values) below 0.7, keeping recall ≈ 1 down to similarity 0.2.
    Spurious candidates are discarded by the caller's exact multiset-Jaccard
    verification, so bands only ever prune comparisons, never fabricate
    matches.

    All hashing is seeded and content-derived (BLAKE2b token digests mixed
    with the occurrence index, fed through fixed random affine maps), so
    candidate sets — and therefore clusters — are stable across runs and
    platforms.
    """

    @classmethod
    def for_threshold(cls, threshold: float) -> "_MinHashIndex":
        return cls(band_rows=2 if threshold >= 0.7 else 1)

    def __init__(self, num_permutations: int = 64, band_rows: int = 2, seed: int = 0x7F4A91) -> None:
        if num_permutations % band_rows != 0:
            raise ValueError("band_rows must divide num_permutations")
        rng = np.random.default_rng(seed)
        self._mul = rng.integers(1, np.iinfo(np.int64).max, size=num_permutations).astype(np.uint64) | np.uint64(1)
        self._add = rng.integers(0, np.iinfo(np.int64).max, size=num_permutations).astype(np.uint64)
        self.band_rows = band_rows
        self.num_bands = num_permutations // band_rows
        self._buckets: dict[tuple[int, bytes], list[int]] = {}
        self._empty_positions: list[int] = []
        self._token_hashes: dict[str, int] = {}

    def _token_hash(self, token: str) -> int:
        cached = self._token_hashes.get(token)
        if cached is None:
            digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
            cached = int.from_bytes(digest, "little")
            self._token_hashes[token] = cached
        return cached

    #: SplitMix64 increment; spreads the occurrence index across the hash space.
    _OCCURRENCE_MIX = np.uint64(0x9E3779B97F4A7C15)
    #: Rows per chunk when reducing the signature table (bounds peak memory).
    _CHUNK_ROWS = 16384

    def signature(self, fingerprint: Counter):
        """MinHash signature of the token *multiset* (``None`` if empty).

        Each of a token's ``count`` occurrences hashes to a distinct base
        value, so the signature estimates multiset Jaccard, not set Jaccard.
        """
        if not fingerprint:
            return None
        token_hashes = np.fromiter(
            (self._token_hash(token) for token in fingerprint),
            dtype=np.uint64,
            count=len(fingerprint),
        )
        counts = np.fromiter(fingerprint.values(), dtype=np.int64, count=len(fingerprint))
        expanded = np.repeat(token_hashes, counts)
        # occurrence index within each token's run: 0 … count-1
        starts = np.repeat(np.cumsum(counts) - counts, counts)
        occurrence = (np.arange(expanded.shape[0], dtype=np.uint64)
                      - starts.astype(np.uint64)) * self._OCCURRENCE_MIX
        base = expanded + occurrence
        # Affine maps in wrap-around uint64 arithmetic: deterministic, and
        # uniform enough for banding (exact verification follows anyway).
        # The (occurrences × permutations) table is reduced in row chunks so
        # a huge generated file costs O(chunk × permutations) transient
        # memory, not half a gigabyte.
        signature: Optional[np.ndarray] = None
        for start in range(0, base.shape[0], self._CHUNK_ROWS):
            chunk = base[start : start + self._CHUNK_ROWS]
            chunk_min = (chunk[:, None] * self._mul[None, :] + self._add[None, :]).min(axis=0)
            signature = chunk_min if signature is None else np.minimum(signature, chunk_min)
        return signature

    def _band_keys(self, signature: np.ndarray):
        for band in range(self.num_bands):
            start = band * self.band_rows
            yield band, signature[start : start + self.band_rows].tobytes()

    def candidates(self, signature) -> list[int]:
        """Exemplar positions sharing a band with ``signature``, in insertion order."""
        if signature is None:
            return list(self._empty_positions)
        seen: set[int] = set()
        for key in self._band_keys(signature):
            seen.update(self._buckets.get(key, ()))
        return sorted(seen)

    def add(self, signature, position: int) -> None:
        if signature is None:
            self._empty_positions.append(position)
            return
        for key in self._band_keys(signature):
            self._buckets.setdefault(key, []).append(position)


class Deduplicator:
    """Greedy near-duplicate clustering over token fingerprints.

    Files are compared against existing cluster exemplars; a file whose
    similarity with an exemplar exceeds ``threshold`` joins that cluster,
    otherwise it becomes a new exemplar.  Greedy clustering is the standard
    approximation used by code-duplication tools and is exact enough at
    corpus scale.

    ``candidate_strategy`` selects how comparison candidates are generated:
    ``"minhash"`` (default) consults the banded MinHash index and verifies
    only bucket collisions with the exact multiset Jaccard; ``"pairwise"``
    is the original exhaustive exemplar scan, kept as the reference oracle.
    Both verify candidates in exemplar insertion order, so they produce the
    same clusters whenever MinHash recalls every matching exemplar.
    """

    def __init__(self, threshold: float = 0.8, candidate_strategy: str = "minhash") -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if candidate_strategy not in ("minhash", "pairwise"):
            raise ValueError(f"unknown candidate strategy {candidate_strategy!r}")
        self.threshold = threshold
        self.candidate_strategy = candidate_strategy

    def deduplicate(self, files: dict[str, str]) -> tuple[dict[str, str], DeduplicationReport]:
        """Return ``(kept_files, report)`` for a mapping of filename → source."""
        exemplars: list[tuple[str, Counter]] = []
        index = (
            _MinHashIndex.for_threshold(self.threshold)
            if self.candidate_strategy == "minhash"
            else None
        )
        clusters: dict[str, DuplicateCluster] = {}
        kept: dict[str, str] = {}
        removed = 0

        for filename in sorted(files):
            fingerprint = file_token_fingerprint(files[filename])
            signature = index.signature(fingerprint) if index is not None else None
            if index is not None:
                positions = index.candidates(signature)
            else:
                positions = range(len(exemplars))
            matched_exemplar = None
            for position in positions:
                exemplar_name, exemplar_fingerprint = exemplars[position]
                if jaccard_similarity(fingerprint, exemplar_fingerprint) >= self.threshold:
                    matched_exemplar = exemplar_name
                    break
            if matched_exemplar is None:
                if index is not None:
                    index.add(signature, len(exemplars))
                exemplars.append((filename, fingerprint))
                clusters[filename] = DuplicateCluster(kept=filename, removed=[])
                kept[filename] = files[filename]
            else:
                clusters[matched_exemplar].removed.append(filename)
                removed += 1

        report = DeduplicationReport(
            total_files=len(files),
            removed_files=removed,
            clusters=[cluster for cluster in clusters.values() if cluster.removed],
        )
        return kept, report


def deduplicate_sources(files: dict[str, str], threshold: float = 0.8) -> tuple[dict[str, str], DeduplicationReport]:
    """Convenience wrapper around :class:`Deduplicator`."""
    return Deduplicator(threshold=threshold).deduplicate(files)
