"""Synthetic Python-project generator.

The paper's corpus is 600 GitHub repositories whose files carry (or can be
augmented with) type annotations.  Offline we cannot clone GitHub, so this
module generates a corpus with the properties the learning problem needs
(see DESIGN.md, "Substitutions"):

* real, parseable Python files — everything downstream (graph construction,
  type checking, annotation erasure) runs on genuine source code;
* identifier names that correlate with types, per
  :mod:`repro.corpus.vocabularies`;
* a fat-tailed, Zipf-like type distribution: a handful of builtins dominate
  while many user-defined and parametric types appear only a few times;
* user-defined classes, some with inheritance, so the lattice has nominal
  edges and rare types exist;
* partially annotated code — each symbol is annotated only with a given
  probability, like real optionally-typed projects;
* optional near-duplicate files, to exercise the deduplication step the
  paper applies before splitting (Sec. 6, "Data").

The generated code type checks under :mod:`repro.checker`, so the Sec. 6.3
experiment can run on it end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.corpus import vocabularies as vocab
from repro.utils.rng import SeededRNG


@dataclass
class SynthesisConfig:
    """Knobs of the synthetic corpus.

    The defaults produce a small corpus suitable for tests; benchmarks use a
    larger configuration (see ``benchmarks/``).
    """

    num_files: int = 40
    functions_per_file: tuple[int, int] = (3, 7)
    classes_per_file: tuple[int, int] = (0, 2)
    annotation_probability: float = 0.7
    duplicate_fraction: float = 0.1
    num_user_classes: int = 25
    class_inheritance_probability: float = 0.3
    seed: int = 13


@dataclass
class ClassSpec:
    """A synthesised user-defined class."""

    name: str
    base: Optional[str]
    attributes: list[tuple[str, str]]  # (attribute name, type string)

    @property
    def constructor_parameters(self) -> list[tuple[str, str]]:
        return self.attributes


@dataclass
class SynthesisedFile:
    """One generated source file plus bookkeeping for corpus statistics."""

    filename: str
    source: str
    annotated_symbols: int = 0
    duplicate_of: Optional[str] = None


# ---------------------------------------------------------------------------
# Helpers for optional annotations
# ---------------------------------------------------------------------------


class _AnnotationCoin:
    """Decides, per symbol, whether to keep its annotation in the source."""

    def __init__(self, rng: SeededRNG, probability: float) -> None:
        self._rng = rng
        self._probability = probability
        self.annotated = 0
        self.total = 0

    def annotate(self) -> bool:
        self.total += 1
        keep = self._rng.uniform() < self._probability
        if keep:
            self.annotated += 1
        return keep


def _param(name: str, annotation: str, coin: _AnnotationCoin, default: Optional[str] = None) -> str:
    text = f"{name}: {annotation}" if coin.annotate() else name
    if default is not None:
        text += f" = {default}" if ": " in text else f"={default}"
    return text


def _returns(annotation: str, coin: _AnnotationCoin) -> str:
    return f" -> {annotation}" if coin.annotate() else ""


# ---------------------------------------------------------------------------
# Function templates
# ---------------------------------------------------------------------------

# Every template returns a list of source lines.  Templates receive the RNG,
# the annotation coin and the palette of user-defined classes available in
# the file, and must produce code that type checks.

TemplateFn = Callable[[SeededRNG, _AnnotationCoin, list[ClassSpec]], list[str]]


def _unique_name(rng: SeededRNG, stem: str, used: set[str]) -> str:
    candidate = stem
    counter = 2
    while candidate in used:
        candidate = f"{stem}_{counter}"
        counter += 1
    used.add(candidate)
    return candidate


class FunctionTemplates:
    """The library of function shapes used by the synthesiser."""

    def __init__(self) -> None:
        self._used_names: set[str] = set()

    def reset(self) -> None:
        self._used_names = set()

    # -- individual templates -----------------------------------------------------

    def count_items(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        items = rng.choice(vocab.LIST_NAMES)
        name = _unique_name(rng, f"count_{noun}s", self._used_names)
        return [
            f"def {name}({_param(items, 'List[str]', coin)}){_returns('int', coin)}:",
            f"    return len({items})",
        ]

    def total_of(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        values = rng.choice(vocab.LIST_NAMES)
        total = rng.choice(["total", "accumulated", "running_total"])
        name = _unique_name(rng, f"total_{noun}_amount", self._used_names)
        return [
            f"def {name}({_param(values, 'List[float]', coin)}){_returns('float', coin)}:",
            f"    {total} = 0.0",
            f"    for value in {values}:",
            f"        {total} = {total} + value",
            f"    return {total}",
        ]

    def format_label(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        text = rng.choice(vocab.STR_NAMES)
        count = rng.choice(vocab.INT_NAMES)
        name = _unique_name(rng, f"format_{noun}", self._used_names)
        return [
            f"def {name}({_param(text, 'str', coin)}, {_param(count, 'int', coin)}){_returns('str', coin)}:",
            f"    return {text} + ':' + str({count})",
        ]

    def predicate(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        value = rng.choice(vocab.INT_NAMES)
        threshold = rng.choice([n for n in vocab.INT_NAMES if n != value] or ["threshold"])
        name = _unique_name(rng, f"is_large_{noun}", self._used_names)
        return [
            f"def {name}({_param(value, 'int', coin)}, {_param(threshold, 'int', coin)}){_returns('bool', coin)}:",
            f"    return {value} > {threshold}",
        ]

    def scale_value(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        value = rng.choice(vocab.FLOAT_NAMES)
        factor = rng.choice([n for n in vocab.FLOAT_NAMES if n != value] or ["factor"])
        name = _unique_name(rng, f"scale_{noun}", self._used_names)
        return [
            f"def {name}({_param(value, 'float', coin)}, {_param(factor, 'float', coin)}){_returns('float', coin)}:",
            f"    scaled = {value} * {factor}",
            f"    return scaled",
        ]

    def lookup_value(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        mapping = rng.choice(vocab.DICT_NAMES)
        key = rng.choice(vocab.STR_NAMES)
        value_type = rng.choice(["int", "float", "str"])
        name = _unique_name(rng, f"find_{noun}", self._used_names)
        return [
            f"def {name}({_param(mapping, f'Dict[str, {value_type}]', coin)}, {_param(key, 'str', coin)})"
            f"{_returns(f'Optional[{value_type}]', coin)}:",
            f"    return {mapping}.get({key})",
        ]

    def collect_labels(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        count = rng.choice(vocab.INT_NAMES)
        label = rng.choice(vocab.STR_NAMES)
        name = _unique_name(rng, f"collect_{noun}_labels", self._used_names)
        return [
            f"def {name}({_param(count, 'int', coin)}, {_param(label, 'str', coin)}){_returns('List[str]', coin)}:",
            "    gathered = []",
            f"    for position in range({count}):",
            f"        gathered.append({label} + str(position))",
            "    return gathered",
        ]

    def make_instance(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        if not classes:
            return self.format_label(rng, coin, classes)
        spec = rng.choice(classes)
        name = _unique_name(rng, f"make_{spec.name.lower()}", self._used_names)
        params = ", ".join(
            _param(attribute, annotation, coin) for attribute, annotation in spec.constructor_parameters
        )
        arguments = ", ".join(attribute for attribute, _ in spec.constructor_parameters)
        return [
            f"def {name}({params}){_returns(spec.name, coin)}:",
            f"    return {spec.name}({arguments})",
        ]

    def describe_instance(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        if not classes:
            return self.predicate(rng, coin, classes)
        spec = rng.choice(classes)
        obj = spec.name.lower()
        name = _unique_name(rng, f"describe_{obj}", self._used_names)
        return [
            f"def {name}({_param(obj, spec.name, coin)}){_returns('str', coin)}:",
            f"    return {obj}.describe()",
        ]

    def split_text(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        text = rng.choice(vocab.STR_NAMES)
        name = _unique_name(rng, f"split_{noun}", self._used_names)
        return [
            f"def {name}({_param(text, 'str', coin)}, {_param('separator', 'str', coin)}){_returns('List[str]', coin)}:",
            f"    return {text}.split(separator)",
        ]

    def merge_counts(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        base = rng.choice(vocab.DICT_NAMES)
        extra = rng.choice([n for n in vocab.DICT_NAMES if n != base] or ["extra"])
        name = _unique_name(rng, f"merge_{noun}_counts", self._used_names)
        return [
            f"def {name}({_param(base, 'Dict[str, int]', coin)}, {_param(extra, 'Dict[str, int]', coin)})"
            f"{_returns('Dict[str, int]', coin)}:",
            "    merged = {}",
            f"    for key, value in {base}.items():",
            "        merged[key] = value",
            f"    for key, value in {extra}.items():",
            "        merged[key] = value",
            "    return merged",
        ]

    def mean_of(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        values = rng.choice(vocab.LIST_NAMES)
        name = _unique_name(rng, f"mean_{noun}_score", self._used_names)
        return [
            f"def {name}({_param(values, 'List[float]', coin)}){_returns('float', coin)}:",
            f"    if len({values}) == 0:",
            "        return 0.0",
            f"    return sum({values}) / len({values})",
        ]

    def encode_text(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        text = rng.choice(vocab.STR_NAMES)
        name = _unique_name(rng, f"encode_{noun}", self._used_names)
        return [
            f"def {name}({_param(text, 'str', coin)}){_returns('bytes', coin)}:",
            f"    return {text}.encode('utf-8')",
        ]

    def decode_payload(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        payload = rng.choice(vocab.BYTES_NAMES)
        name = _unique_name(rng, f"decode_{noun}", self._used_names)
        return [
            f"def {name}({_param(payload, 'bytes', coin)}){_returns('str', coin)}:",
            f"    return {payload}.decode('utf-8')",
        ]

    def clamp_value(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        value = rng.choice(vocab.FLOAT_NAMES)
        name = _unique_name(rng, f"clamp_{noun}", self._used_names)
        return [
            f"def {name}({_param(value, 'float', coin)}, {_param('low', 'float', coin)}, "
            f"{_param('high', 'float', coin)}){_returns('float', coin)}:",
            f"    if {value} < low:",
            "        return low",
            f"    if {value} > high:",
            "        return high",
            f"    return {value}",
        ]

    def filter_instances(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        if not classes:
            return self.mean_of(rng, coin, classes)
        spec = rng.choice(classes)
        plural = spec.name.lower() + "s"
        int_attributes = [attribute for attribute, annotation in spec.attributes if annotation == "int"]
        attribute = int_attributes[0] if int_attributes else None
        name = _unique_name(rng, f"filter_{plural}", self._used_names)
        lines = [
            f"def {name}({_param(plural, f'List[{spec.name}]', coin)}, {_param('threshold', 'int', coin)})"
            f"{_returns(f'List[{spec.name}]', coin)}:",
            "    kept = []",
            f"    for candidate in {plural}:",
        ]
        if attribute is not None:
            lines.append(f"        if candidate.{attribute} > threshold:")
        else:
            lines.append("        if threshold > 0:")
        lines.extend(["            kept.append(candidate)", "    return kept"])
        return lines

    def position_of(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        items = rng.choice(vocab.LIST_NAMES)
        target = rng.choice(vocab.STR_NAMES)
        name = _unique_name(rng, f"position_of_{noun}", self._used_names)
        return [
            f"def {name}({_param(items, 'List[str]', coin)}, {_param(target, 'str', coin)}){_returns('int', coin)}:",
            f"    return {items}.index({target})",
        ]

    def should_run(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        verb = rng.choice(vocab.FUNCTION_VERBS)
        flag = rng.choice(vocab.BOOL_NAMES)
        count = rng.choice(vocab.INT_NAMES)
        name = _unique_name(rng, f"should_{verb}", self._used_names)
        return [
            f"def {name}({_param(flag, 'bool', coin)}, {_param(count, 'int', coin)}){_returns('bool', coin)}:",
            f"    return {flag} and {count} > 0",
        ]

    def bounds_of(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        values = rng.choice(vocab.LIST_NAMES)
        name = _unique_name(rng, f"bounds_of_{noun}", self._used_names)
        return [
            f"def {name}({_param(values, 'List[int]', coin)}){_returns('Tuple[int, int]', coin)}:",
            f"    lowest = min({values})",
            f"    highest = max({values})",
            "    return (lowest, highest)",
        ]

    def greet_with_suffix(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        name_param = rng.choice(vocab.STR_NAMES)
        name = _unique_name(rng, f"render_{rng.choice(vocab.FUNCTION_NOUNS)}_greeting", self._used_names)
        return [
            f"def {name}({_param(name_param, 'str', coin)}, "
            f"{_param('suffix', 'Optional[str]', coin, default='None')}){_returns('str', coin)}:",
            "    if suffix is None:",
            f"        return 'hello ' + {name_param}",
            f"    return 'hello ' + {name_param} + suffix",
        ]

    def group_lengths(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        items = rng.choice(vocab.LIST_NAMES)
        name = _unique_name(rng, f"group_{noun}_lengths", self._used_names)
        return [
            f"def {name}({_param(items, 'List[str]', coin)}){_returns('Dict[str, int]', coin)}:",
            "    lengths = {}",
            f"    for entry in {items}:",
            "        lengths[entry] = len(entry)",
            "    return lengths",
        ]

    def nested_matrix(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        rows = rng.choice(vocab.INT_NAMES)
        name = _unique_name(rng, f"build_{noun}_matrix", self._used_names)
        return [
            f"def {name}({_param(rows, 'int', coin)}, {_param('fill', 'float', coin)})"
            f"{_returns('List[List[float]]', coin)}:",
            "    matrix = []",
            f"    for row_index in range({rows}):",
            "        row = []",
            f"        for column_index in range({rows}):",
            "            row.append(fill)",
            "        matrix.append(row)",
            "    return matrix",
        ]

    def find_optional_instance(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        if not classes:
            return self.lookup_value(rng, coin, classes)
        spec = rng.choice(classes)
        plural = spec.name.lower() + "s"
        str_attributes = [attribute for attribute, annotation in spec.attributes if annotation == "str"]
        attribute = str_attributes[0] if str_attributes else None
        name = _unique_name(rng, f"find_{spec.name.lower()}", self._used_names)
        lines = [
            f"def {name}({_param(plural, f'List[{spec.name}]', coin)}, {_param('wanted', 'str', coin)})"
            f"{_returns(f'Optional[{spec.name}]', coin)}:",
            f"    for candidate in {plural}:",
        ]
        if attribute is not None:
            lines.append(f"        if candidate.{attribute} == wanted:")
        else:
            lines.append("        if candidate.describe() == wanted:")
        lines.extend(["            return candidate", "    return None"])
        return lines

    def pair_of(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        label = rng.choice(vocab.STR_NAMES)
        count = rng.choice(vocab.INT_NAMES)
        name = _unique_name(rng, f"pair_{noun}", self._used_names)
        return [
            f"def {name}({_param(label, 'str', coin)}, {_param(count, 'int', coin)}){_returns('Tuple[str, int]', coin)}:",
            f"    return ({label}, {count})",
        ]

    def unique_labels(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        items = rng.choice(vocab.LIST_NAMES)
        name = _unique_name(rng, f"unique_{noun}_labels", self._used_names)
        return [
            f"def {name}({_param(items, 'List[str]', coin)}){_returns('Set[str]', coin)}:",
            "    seen = set()",
            f"    for entry in {items}:",
            "        seen.add(entry)",
            "    return seen",
        ]

    def index_instances(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        if not classes:
            return self.group_lengths(rng, coin, classes)
        spec = rng.choice(classes)
        plural = spec.name.lower() + "s"
        str_attributes = [attribute for attribute, annotation in spec.attributes if annotation == "str"]
        name = _unique_name(rng, f"index_{plural}", self._used_names)
        key_expr = f"candidate.{str_attributes[0]}" if str_attributes else "candidate.describe()"
        return [
            f"def {name}({_param(plural, f'List[{spec.name}]', coin)}){_returns(f'Dict[str, {spec.name}]', coin)}:",
            "    by_key = {}",
            f"    for candidate in {plural}:",
            f"        by_key[{key_expr}] = candidate",
            "    return by_key",
        ]

    def first_instance(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        if not classes:
            return self.bounds_of(rng, coin, classes)
        spec = rng.choice(classes)
        plural = spec.name.lower() + "s"
        name = _unique_name(rng, f"first_{spec.name.lower()}", self._used_names)
        return [
            f"def {name}({_param(plural, f'List[{spec.name}]', coin)}){_returns(spec.name, coin)}:",
            f"    return {plural}[0]",
        ]

    def as_groups(self, rng: SeededRNG, coin: _AnnotationCoin, classes: list[ClassSpec]) -> list[str]:
        noun = rng.choice(vocab.FUNCTION_NOUNS)
        items = rng.choice(vocab.LIST_NAMES)
        name = _unique_name(rng, f"group_{noun}s_by_prefix", self._used_names)
        return [
            f"def {name}({_param(items, 'List[str]', coin)}){_returns('Dict[str, List[str]]', coin)}:",
            "    groups = {}",
            f"    for entry in {items}:",
            "        prefix = entry[0]",
            "        if prefix not in groups:",
            "            groups[prefix] = []",
            "        groups[prefix].append(entry)",
            "    return groups",
        ]

    def all_templates(self) -> list[TemplateFn]:
        return [
            self.count_items,
            self.total_of,
            self.format_label,
            self.predicate,
            self.scale_value,
            self.lookup_value,
            self.collect_labels,
            self.make_instance,
            self.describe_instance,
            self.split_text,
            self.merge_counts,
            self.mean_of,
            self.encode_text,
            self.decode_payload,
            self.clamp_value,
            self.filter_instances,
            self.position_of,
            self.should_run,
            self.bounds_of,
            self.greet_with_suffix,
            self.group_lengths,
            self.nested_matrix,
            self.find_optional_instance,
            self.pair_of,
            self.unique_labels,
            self.index_instances,
            self.first_instance,
            self.as_groups,
        ]

    #: Weights giving builtin-heavy templates more mass than UDT templates so
    #: the resulting annotation distribution is Zipf-like.
    def template_weights(self) -> list[float]:
        return [
            3.0,  # count_items
            2.5,  # total_of
            3.0,  # format_label
            2.5,  # predicate
            2.5,  # scale_value
            1.5,  # lookup_value
            1.5,  # collect_labels
            1.0,  # make_instance
            1.0,  # describe_instance
            2.0,  # split_text
            1.0,  # merge_counts
            1.5,  # mean_of
            0.8,  # encode_text
            0.8,  # decode_payload
            1.5,  # clamp_value
            0.8,  # filter_instances
            1.0,  # position_of
            2.0,  # should_run
            0.8,  # bounds_of
            1.2,  # greet_with_suffix
            1.0,  # group_lengths
            0.5,  # nested_matrix
            0.8,  # find_optional_instance
            0.8,  # pair_of
            0.7,  # unique_labels
            0.6,  # index_instances
            0.6,  # first_instance
            0.6,  # as_groups
        ]


# ---------------------------------------------------------------------------
# Classes
# ---------------------------------------------------------------------------

_ATTRIBUTE_POOLS: list[tuple[list[str], str]] = [
    (vocab.STR_NAMES, "str"),
    (vocab.INT_NAMES, "int"),
    (vocab.FLOAT_NAMES, "float"),
    (vocab.BOOL_NAMES, "bool"),
    (vocab.LIST_NAMES, "List[str]"),
    (vocab.LIST_NAMES, "List[int]"),
    (vocab.DICT_NAMES, "Dict[str, int]"),
]


def _generate_class_specs(rng: SeededRNG, config: SynthesisConfig) -> list[ClassSpec]:
    """Create the project-wide palette of user-defined classes."""
    specs: list[ClassSpec] = []
    used_names: set[str] = set()
    for _ in range(config.num_user_classes):
        base_name = rng.choice(vocab.CLASS_BASE_NAMES)
        suffix = rng.choice(vocab.CLASS_SUFFIXES)
        class_name = _unique_name(rng, f"{base_name}{suffix}", used_names)
        parent: Optional[str] = None
        if specs and rng.uniform() < config.class_inheritance_probability:
            parent = rng.choice(specs).name
        num_attributes = rng.randint(2, 4)
        attributes: list[tuple[str, str]] = []
        attribute_names: set[str] = set()
        for _ in range(num_attributes):
            pool, annotation = rng.choice(_ATTRIBUTE_POOLS)
            attribute = rng.choice(pool)
            if attribute in attribute_names:
                continue
            attribute_names.add(attribute)
            attributes.append((attribute, annotation))
        if not attributes:
            attributes = [("name", "str"), ("count", "int")]
        specs.append(ClassSpec(name=class_name, base=parent, attributes=attributes))
    return specs


def render_class(spec: ClassSpec, coin: _AnnotationCoin, rng: SeededRNG) -> list[str]:
    """Emit the source lines of one user-defined class."""
    header = f"class {spec.name}({spec.base}):" if spec.base else f"class {spec.name}:"
    parameters = ", ".join(
        ["self"] + [_param(attribute, annotation, coin) for attribute, annotation in spec.attributes]
    )
    lines = [header, f"    def __init__({parameters}){_returns('None', coin)}:"]
    for attribute, _ in spec.attributes:
        lines.append(f"        self.{attribute} = {attribute}")

    # describe(): every class has one so `describe_instance` templates always
    # type check.
    first_attribute = spec.attributes[0][0]
    lines.extend(
        [
            "",
            f"    def describe(self){_returns('str', coin)}:",
            f"        return '{spec.name}:' + str(self.{first_attribute})",
        ]
    )

    # One numeric helper when the class has a numeric attribute.
    numeric = [a for a, t in spec.attributes if t in ("int", "float")]
    if numeric:
        attribute = numeric[0]
        lines.extend(
            [
                "",
                f"    def scaled_{attribute}(self, {_param('factor', 'float', coin)}){_returns('float', coin)}:",
                f"        return self.{attribute} * factor",
            ]
        )
    return lines


# ---------------------------------------------------------------------------
# The synthesiser
# ---------------------------------------------------------------------------


class CorpusSynthesizer:
    """Generates a whole synthetic project: many files plus near-duplicates."""

    def __init__(self, config: Optional[SynthesisConfig] = None) -> None:
        self.config = config or SynthesisConfig()
        self._rng = SeededRNG(self.config.seed)
        self._templates = FunctionTemplates()
        self.class_specs = _generate_class_specs(self._rng.fork(1), self.config)

    # -- public API -------------------------------------------------------------------

    def generate(self) -> list[SynthesisedFile]:
        """Generate the corpus: original files first, near-duplicates last."""
        files = [self._generate_file(index) for index in range(self.config.num_files)]
        duplicates = self._generate_duplicates(files)
        return files + duplicates

    def class_hierarchy_edges(self) -> list[tuple[str, str]]:
        """``(subclass, superclass)`` pairs for seeding the type lattice."""
        return [(spec.name, spec.base) for spec in self.class_specs if spec.base]

    # -- file generation -----------------------------------------------------------------

    def _generate_file(self, index: int) -> SynthesisedFile:
        rng = self._rng.fork(100 + index)
        coin = _AnnotationCoin(rng.fork(7), self.config.annotation_probability)
        self._templates.reset()

        num_classes = rng.randint(*self.config.classes_per_file)
        num_functions = rng.randint(*self.config.functions_per_file)

        file_classes = rng.sample(self.class_specs, min(num_classes + 2, len(self.class_specs)))
        emitted_classes = file_classes[:num_classes]
        # Classes referenced by templates must be defined in the file, so the
        # palette passed to templates only contains emitted classes (plus their
        # bases, which are emitted too).
        emitted_with_bases: list[ClassSpec] = []
        emitted_names: set[str] = set()
        for spec in emitted_classes:
            for candidate in self._with_bases(spec):
                if candidate.name not in emitted_names:
                    emitted_names.add(candidate.name)
                    emitted_with_bases.append(candidate)

        lines: list[str] = [
            '"""Synthetic module generated for the Typilus reproduction corpus."""',
            "from typing import Dict, List, Optional, Tuple",
            "",
        ]
        for spec in emitted_with_bases:
            lines.extend(render_class(spec, coin, rng))
            lines.append("")
        templates = self._templates.all_templates()
        weights = self._templates.template_weights()
        for _ in range(num_functions):
            template = rng.choices(templates, weights, k=1)[0]
            lines.extend(template(rng, coin, emitted_with_bases))
            lines.append("")

        # A couple of annotated module-level constants.
        module_constants = rng.randint(0, 2)
        for _ in range(module_constants):
            pool, annotation = rng.choice(_ATTRIBUTE_POOLS[:4])
            constant = rng.choice(pool).upper()
            literal = {"str": "'default'", "int": "10", "float": "0.5", "bool": "True"}[annotation]
            if coin.annotate():
                lines.append(f"{constant}: {annotation} = {literal}")
            else:
                lines.append(f"{constant} = {literal}")
        source = "\n".join(lines).rstrip() + "\n"
        return SynthesisedFile(
            filename=f"project/module_{index:04d}.py",
            source=source,
            annotated_symbols=coin.annotated,
        )

    def _with_bases(self, spec: ClassSpec) -> list[ClassSpec]:
        chain: list[ClassSpec] = []
        by_name = {candidate.name: candidate for candidate in self.class_specs}
        current: Optional[ClassSpec] = spec
        while current is not None:
            chain.append(current)
            current = by_name.get(current.base) if current.base else None
        return list(reversed(chain))

    # -- near-duplicates --------------------------------------------------------------------

    def _generate_duplicates(self, files: list[SynthesisedFile]) -> list[SynthesisedFile]:
        count = int(len(files) * self.config.duplicate_fraction)
        if count == 0:
            return []
        rng = self._rng.fork(999)
        duplicates: list[SynthesisedFile] = []
        for duplicate_index, original in enumerate(rng.sample(files, min(count, len(files)))):
            # A near-duplicate: same code with a trailing comment, which is what
            # copy-pasted files with trivial edits look like to the deduplicator.
            mutated = original.source + "\n# vendored copy of an upstream module\n"
            duplicates.append(
                SynthesisedFile(
                    filename=f"project/dup_{duplicate_index:04d}.py",
                    source=mutated,
                    annotated_symbols=original.annotated_symbols,
                    duplicate_of=original.filename,
                )
            )
        return duplicates


def generate_corpus(config: Optional[SynthesisConfig] = None) -> list[SynthesisedFile]:
    """Convenience wrapper used by tests and examples."""
    return CorpusSynthesizer(config).generate()
