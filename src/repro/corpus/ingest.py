"""Parallel corpus ingestion with content-addressed graph caching.

`TypeAnnotationDataset.from_sources` used to parse, erase and graph-build
every file serially on one core, re-doing all of that work on every run.
This module makes ingestion scale along both axes:

* **parallelism** — :func:`ingest_sources` fans file extraction out over a
  process pool.  The worker (:func:`extract_file`) is pure: it maps one
  ``(filename, source)`` pair to a :class:`ExtractedFile` (program graph +
  annotated symbols) with no shared state, so parallel ingestion produces a
  dataset byte-for-byte identical to serial ingestion;
* **reuse** — :class:`GraphCache` persists extraction results on disk,
  keyed by a content hash of the source text and the extractor version.
  Re-ingesting a corpus touches only changed files: the warm-cache path is
  ~O(changed files), independent of corpus size.

Pool dispatch uses the ``fork`` start method when the platform offers it
(workers inherit the imported interpreter state, so there is no per-task
import tax).  Platforms without ``fork``, single-file corpora and sandboxes
that refuse process creation all fall back to the serial path — results are
identical either way, only the wall clock differs.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import tempfile
import zipfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.corpus.serialize import (
    GRAPH_SHARD_FORMAT_VERSION,
    PayloadError,
    flat_graphs_from_arrays,
    flat_graphs_to_arrays,
)
from repro.graph.builder import GraphBuildError, GraphBuilder
from repro.graph.codegraph import CodeGraph
from repro.graph.nodes import SymbolInfo
from repro.types.normalize import is_informative
from repro.utils.timing import Stopwatch

T = TypeVar("T")
R = TypeVar("R")

#: Version of the graph extractor.  Bump whenever :class:`GraphBuilder`
#: output changes so stale cache entries stop matching.
EXTRACTOR_VERSION = "1"

#: Cache entry layout version (independent of the extractor semantics).
#: v2: binary ``.npz`` FlatGraph entries instead of JSON payloads.
CACHE_FORMAT_VERSION = 2


# ---------------------------------------------------------------------------
# The pure extraction worker
# ---------------------------------------------------------------------------


@dataclass
class ExtractedFile:
    """Everything extraction learns about one source file.

    ``annotated_symbols`` lists ``(symbol_position, symbol)`` pairs for every
    symbol carrying an informative ground-truth annotation — the raw material
    of supervised samples, pre-filtered in the worker so dataset assembly
    only has to canonicalise and number them.
    """

    filename: str
    graph: CodeGraph
    annotated_symbols: list[tuple[int, SymbolInfo]]


def extract_file(filename: str, source: str) -> ExtractedFile:
    """Pure worker: source text → graph + annotated symbols.

    Raises :class:`GraphBuildError` for unparsable sources, exactly like the
    serial pipeline.
    """
    graph = GraphBuilder().build(source, filename=filename)
    return ExtractedFile(filename=filename, graph=graph, annotated_symbols=_annotated_symbols(graph))


def _annotated_symbols(graph: CodeGraph) -> list[tuple[int, SymbolInfo]]:
    return [
        (position, symbol)
        for position, symbol in enumerate(graph.symbols)
        if symbol.annotation is not None and is_informative(symbol.annotation)
    ]


def atomic_write_text(path: Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (write-temp + rename).

    Readers never observe a half-written file; on failure the temp file is
    removed.  Shared by the graph cache and the engine's annotation cache.
    """
    handle = tempfile.NamedTemporaryFile(
        "w", encoding="utf-8", dir=path.parent, prefix=".tmp-", suffix=path.suffix, delete=False
    )
    try:
        with handle:
            handle.write(text)
        os.replace(handle.name, path)
    except OSError:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def atomic_write_npz(path: Path, arrays: dict) -> None:
    """Write an ``.npz`` archive atomically (write-temp + rename)."""
    handle = tempfile.NamedTemporaryFile(
        "wb", dir=path.parent, prefix=".tmp-", suffix=path.suffix, delete=False
    )
    try:
        with handle:
            np.savez(handle, **arrays)
        os.replace(handle.name, path)
    except OSError:
        try:
            os.unlink(handle.name)
        except OSError:
            pass
        raise


def _pool_extract(item: tuple[str, str]) -> tuple[str, Optional[ExtractedFile], Optional[str]]:
    """Pool-side wrapper returning ``(filename, extracted, error)``.

    Build failures travel back as strings instead of raised exceptions so a
    single unparsable file never tears down the whole pool map.
    """
    filename, source = item
    try:
        return filename, extract_file(filename, source), None
    except GraphBuildError as error:
        return filename, None, str(error)


# ---------------------------------------------------------------------------
# Content-addressed cache
# ---------------------------------------------------------------------------


class GraphCache:
    """On-disk cache of extraction results, keyed by source content.

    The key hashes the source text together with the extractor and shard
    versions: editing a file, upgrading the extractor or changing the layout
    each invalidate exactly the affected entries.  Filenames are *not*
    part of the key — a renamed file is still a hit, with the stored graph
    re-labelled on load.

    Entries are fingerprint-validated binary ``.npz`` archives of the
    columnar :class:`~repro.graph.flatgraph.FlatGraph` arrays; anything that
    fails to decode or validate is treated as a miss (and overwritten on the
    next store), so a corrupted or truncated entry costs one re-extraction,
    never an error.
    """

    def __init__(self, directory: Union[str, Path], extractor_version: str = EXTRACTOR_VERSION) -> None:
        self.directory = Path(directory)
        self.extractor_version = extractor_version
        self.directory.mkdir(parents=True, exist_ok=True)
        self._evict_legacy_entries()

    def _evict_legacy_entries(self) -> None:
        """Delete v1 ``.json`` entries left behind by the pre-npz format.

        Their keys can never match again after the format bump, so without
        eviction a long-lived cache directory silently doubles in size.
        Deletion failures are ignored — a leftover file is wasted disk, not
        an error.
        """
        for stale in self.directory.glob("*.json"):
            try:
                stale.unlink()
            except OSError:
                pass

    def key(self, source: str) -> str:
        material = f"{CACHE_FORMAT_VERSION}:{GRAPH_SHARD_FORMAT_VERSION}:{self.extractor_version}\x00{source}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, source: str) -> Path:
        return self.directory / f"{self.key(source)}.npz"

    def load(self, source: str, filename: str) -> Optional[ExtractedFile]:
        """Return the cached extraction for ``source``, or ``None`` on a miss."""
        path = self.path_for(source)
        try:
            with np.load(path, allow_pickle=False) as archive:
                if "x:extractor_version" not in archive.files:
                    return None
                if str(archive["x:extractor_version"][0]) != self.extractor_version:
                    return None
                flats = flat_graphs_from_arrays(archive)
            if len(flats) != 1:
                return None
            graph = CodeGraph.from_flat(flats[0], filename=filename)
        except (OSError, zipfile.BadZipFile, EOFError, PayloadError, KeyError, ValueError, TypeError):
            return None
        return ExtractedFile(filename=filename, graph=graph, annotated_symbols=_annotated_symbols(graph))

    def store(self, source: str, extracted: ExtractedFile) -> Path:
        """Persist an extraction atomically (write-temp + rename)."""
        path = self.path_for(source)
        arrays = flat_graphs_to_arrays([extracted.graph.to_flat()])
        arrays["x:extractor_version"] = np.asarray([self.extractor_version])
        atomic_write_npz(path, arrays)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.npz"))


# ---------------------------------------------------------------------------
# The ingestion pipeline
# ---------------------------------------------------------------------------


@dataclass
class IngestConfig:
    """Knobs of an ingestion run."""

    #: Worker processes; 1 = serial, ``None`` = one per CPU core.
    jobs: Optional[int] = 1
    #: Directory of the content-addressed graph cache; ``None`` disables caching.
    cache_dir: Optional[Union[str, Path]] = None
    #: Extractor version used for cache keys (bump to invalidate).
    extractor_version: str = EXTRACTOR_VERSION
    #: Files handed to a pool worker per task; amortises IPC per file.
    chunk_size: int = 4

    def effective_jobs(self) -> int:
        if self.jobs is None:
            return max(1, os.cpu_count() or 1)
        return max(1, int(self.jobs))


@dataclass
class IngestReport:
    """What one ingestion run did, and how fast."""

    total_files: int = 0
    extracted: int = 0
    cache_hits: int = 0
    failed_files: list[str] = field(default_factory=list)
    jobs: int = 1
    used_process_pool: bool = False
    elapsed_seconds: float = 0.0

    @property
    def cache_misses(self) -> int:
        return self.extracted

    @property
    def files_per_second(self) -> float:
        return self.total_files / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def summary(self) -> dict[str, Any]:
        return {
            "files": self.total_files,
            "extracted": self.extracted,
            "cache_hits": self.cache_hits,
            "failed": len(self.failed_files),
            "jobs": self.jobs,
            "process_pool": self.used_process_pool,
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "files_per_second": round(self.files_per_second, 2),
        }


def _pool_context() -> Optional[multiprocessing.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` when unavailable.

    ``spawn``/``forkserver`` children re-import the package from scratch,
    which both taxes every run and breaks when ``repro`` is importable only
    through a ``sys.path`` hook of the parent (the test harness).  Rather
    than ship a slow, fragile fallback, platforms without ``fork`` use the
    serial path.
    """
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def parallel_map(
    function: Callable[[T], R],
    items: Sequence[T],
    jobs: int,
    chunk_size: int = 4,
) -> list[R]:
    """Order-preserving map over a process pool, with serial fallback.

    ``function`` must be a module-level callable of picklable arguments.
    Falls back to a plain loop when ``jobs <= 1``, when there is at most one
    item, when ``fork`` is unavailable, or when the pool cannot be created
    (sandboxes commonly forbid it) — the result is identical either way.
    """
    results, _ = _pooled_map(function, items, jobs, chunk_size)
    return results


def _pooled_map(
    function: Callable[[T], R],
    items: Sequence[T],
    jobs: int,
    chunk_size: int,
) -> tuple[list[R], bool]:
    """:func:`parallel_map` core; also reports whether a pool was used."""
    if jobs > 1 and len(items) > 1:
        context = _pool_context()
        if context is not None:
            try:
                with ProcessPoolExecutor(max_workers=min(jobs, len(items)), mp_context=context) as pool:
                    return list(pool.map(function, items, chunksize=max(1, chunk_size))), True
            except (OSError, PermissionError):
                pass  # sandboxes may forbid process creation; serial is identical
    return [function(item) for item in items], False


def ingest_sources(
    files: Mapping[str, str],
    config: Optional[IngestConfig] = None,
) -> tuple[list[ExtractedFile], IngestReport]:
    """Extract a program graph for every file, in parallel and cache-backed.

    Files are processed in sorted-filename order and the returned list keeps
    that order (minus unparsable files, which land in
    ``report.failed_files``) — so the output is deterministic and identical
    across ``jobs`` settings and cache states.
    """
    config = config or IngestConfig()
    jobs = config.effective_jobs()
    cache = GraphCache(config.cache_dir, config.extractor_version) if config.cache_dir is not None else None

    ordered_names = sorted(files)
    report = IngestReport(total_files=len(ordered_names), jobs=jobs)
    stopwatch = Stopwatch()
    results: dict[str, ExtractedFile] = {}
    pending: list[tuple[str, str]] = []

    with stopwatch.measure("ingest"):
        for filename in ordered_names:
            source = files[filename]
            cached = cache.load(source, filename) if cache is not None else None
            if cached is not None:
                results[filename] = cached
                report.cache_hits += 1
            else:
                pending.append((filename, source))

        if pending:
            extracted_batch, report.used_process_pool = _pooled_map(
                _pool_extract, pending, jobs, config.chunk_size
            )
            for filename, extracted, error in extracted_batch:
                if error is not None or extracted is None:
                    report.failed_files.append(filename)
                    continue
                results[filename] = extracted
                report.extracted += 1
                if cache is not None:
                    cache.store(files[filename], extracted)

    report.elapsed_seconds = stopwatch.sections.get("ingest", 0.0)
    ordered = [results[filename] for filename in ordered_names if filename in results]
    return ordered, report
