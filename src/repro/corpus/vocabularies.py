"""Identifier vocabularies used by the synthetic-corpus generator.

The learning signal Typilus exploits is the correlation between identifier
names, code structure and types (Sec. 1: "a variable named ``counter`` is
likely an ``int``").  The synthesiser reproduces that signal by drawing
identifier names from per-type word lists, so a model that learns the
correlations in the training split can exploit them on the test split.
"""

from __future__ import annotations

#: Names strongly associated with ``int`` values.
INT_NAMES = [
    "count", "index", "size", "total", "offset", "length", "capacity", "depth",
    "width", "height", "num_items", "num_rows", "num_nodes", "batch_size",
    "seed", "limit", "position", "num_retries", "max_len", "step", "epoch",
    "cursor", "rank", "num_workers", "page", "quantity", "level",
]

#: Names strongly associated with ``float`` values.
FLOAT_NAMES = [
    "ratio", "scale", "weight", "score", "rate", "threshold", "alpha",
    "temperature", "price", "duration", "mean_value", "std_dev", "factor",
    "learning_rate", "fraction", "percentage", "amount", "balance", "latitude",
    "longitude", "velocity", "discount", "interest", "confidence",
]

#: Names strongly associated with ``str`` values.
STR_NAMES = [
    "name", "label", "title", "message", "text", "path", "filename", "prefix",
    "suffix", "description", "key", "token", "url", "username", "email",
    "address", "query", "pattern", "category", "language", "comment", "header",
    "identifier", "slug", "hostname", "body",
]

#: Names strongly associated with ``bool`` values.
BOOL_NAMES = [
    "is_valid", "enabled", "has_items", "is_active", "verbose", "found",
    "is_ready", "use_cache", "strict", "done", "is_empty", "should_retry",
    "force", "dry_run", "is_open", "visible", "recursive", "include_hidden",
]

#: Names strongly associated with ``bytes`` values.
BYTES_NAMES = ["payload", "raw_data", "buffer", "blob", "encoded", "digest", "chunk"]

#: Plural names used for list-typed values.
LIST_NAMES = [
    "items", "values", "names", "records", "entries", "tokens", "children",
    "results", "rows", "scores", "elements", "lines", "samples", "buckets",
    "messages", "tags", "paths", "errors", "candidates", "weights",
]

#: Names used for dict-typed values.
DICT_NAMES = [
    "mapping", "lookup", "config", "index_map", "cache", "registry", "options",
    "settings", "headers", "counts", "metadata", "params", "frequencies",
    "groups", "translations",
]

#: Base names of synthesised user-defined classes.
CLASS_BASE_NAMES = [
    "User", "Widget", "Order", "Node", "Config", "Request", "Response",
    "Account", "Session", "Document", "Task", "Event", "Message", "Product",
    "Invoice", "Customer", "Report", "Job", "Worker", "Packet", "Frame",
    "Record", "Channel", "Device", "Shipment", "Ticket", "Profile", "Project",
    "Dataset", "Cluster", "Pipeline", "Snapshot", "Policy", "Queue", "Schema",
]

#: Suffixes combined with the base names to create the long tail of rare types.
CLASS_SUFFIXES = ["", "Info", "Data", "Manager", "Handler", "Builder", "Spec", "State", "View"]

#: Nouns used when deriving function names.
FUNCTION_NOUNS = [
    "user", "order", "record", "entry", "item", "batch", "report", "file",
    "document", "payment", "session", "token", "event", "widget", "packet",
    "message", "result", "sample", "task", "page", "invoice", "segment",
]

#: Verbs used when deriving function names.
FUNCTION_VERBS = [
    "process", "handle", "compute", "build", "load", "store", "update",
    "resolve", "validate", "merge", "collect", "extract", "render", "export",
    "normalise", "fetch", "schedule", "dispatch", "summarise",
]
