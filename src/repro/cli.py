"""Command-line interface for the Typilus reproduction.

Seven subcommands cover the library's main workflows without writing Python:

``corpus``
    Generate a synthetic corpus to a directory and print its statistics.
``ingest``
    Extract program graphs for a whole corpus — in parallel with ``--jobs``,
    reusing the content-addressed graph cache with ``--cache-dir`` — and
    persist the assembled dataset to a sharded directory (``--out``) that
    ``train --dataset`` reloads instantly.
``train``
    Train a model on a (synthetic, on-disk or pre-ingested) corpus, report
    test metrics and optionally save the TypeSpace (``--save-typespace``),
    the whole trained pipeline (``--save-model``) or the assembled dataset
    (``--save-dataset``).
``suggest``
    Train (or load a saved pipeline with ``--load-model``) and print
    checker-filtered type suggestions for one or more Python files.
``annotate``
    Run the batched project annotation engine over a whole directory:
    suggestions, disagreement findings and throughput in one pass.  Combine
    with ``--load-model`` to serve a previously trained pipeline without
    re-training, ``--save-model`` to persist the freshly trained one, and
    ``--jobs``/``--cache-dir`` for parallel extraction plus incremental
    re-annotation (unchanged files are served from the cache).  With
    ``--server`` the project is annotated by a running daemon instead of a
    locally loaded model; ``--report-json`` writes the full report to a file.
``serve``
    Run the long-lived annotation daemon: load (or train) a pipeline once,
    listen on a Unix socket (``--socket``) and/or TCP (``--tcp HOST:PORT``)
    and micro-batch concurrent annotation requests through the batched
    engine, with bounded admission (``--max-queue``), optional default
    deadlines (``--request-timeout``) and a per-frame wire cap
    (``--max-frame-bytes``).  With ``--workers N`` the daemon becomes a
    fleet front-end: N annotation worker processes each memory-map the same
    saved model (``--load-model`` required) and micro-batches run
    concurrently across them.  ``serve --socket S --ping`` waits until a
    daemon answers and prints its lifecycle state; ``serve --socket S
    --reload DIR`` hot-swaps it onto a newly saved pipeline without
    dropping clients; ``serve --socket S --shutdown`` stops it.
``check``
    Run the optional type checker over Python files and print diagnostics.

Examples::

    python -m repro.cli corpus --num-files 40 --out /tmp/corpus
    python -m repro.cli ingest --corpus-dir /tmp/corpus --out /tmp/dataset --jobs 4 --cache-dir /tmp/cache
    python -m repro.cli train --dataset /tmp/dataset --epochs 8 --save-model /tmp/model
    python -m repro.cli ingest --corpus-dir /tmp/corpus --out /tmp/raw --shard-format raw
    python -m repro.cli train --dataset /tmp/raw --mmap --workers 2 --prefetch-batches 4
    python -m repro.cli train --dataset /tmp/dataset --save-model /tmp/model \\
        --index ivf --nlist 256 --nprobe 8 --typespace-layout raw
    python -m repro.cli suggest path/to/file.py --confidence 0.5
    python -m repro.cli annotate path/to/project --load-model /tmp/model --jobs 4 --cache-dir /tmp/cache
    python -m repro.cli serve --load-model /tmp/model --socket /tmp/typilus.sock --index ivf
    python -m repro.cli serve --load-model /tmp/model --workers 4 --tcp 127.0.0.1:8155
    python -m repro.cli annotate path/to/project --server /tmp/typilus.sock
    python -m repro.cli annotate path/to/project --server 127.0.0.1:8155
    python -m repro.cli check path/to/file.py --mode strict
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.checker import CheckerMode, OptionalTypeChecker
from repro.core import INDEX_KINDS, EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import (
    CorpusSynthesizer,
    DatasetConfig,
    IngestConfig,
    SynthesisConfig,
    TypeAnnotationDataset,
)
from repro.engine import AnnotatorConfig, ProjectAnnotator
from repro.evaluation import render_table


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--num-files", type=int, default=40, help="number of synthetic files to generate")
    parser.add_argument("--seed", type=int, default=13, help="corpus random seed")
    parser.add_argument("--annotation-probability", type=float, default=0.7,
                        help="probability that each symbol keeps its annotation")
    parser.add_argument("--rarity-threshold", type=int, default=12,
                        help="annotation count below which a type counts as rare")


def _add_training_arguments(parser: argparse.ArgumentParser, include_workers: bool = True) -> None:
    parser.add_argument("--family", choices=["graph", "sequence", "path", "names"], default="graph")
    parser.add_argument("--loss", choices=[kind.value for kind in LossKind], default=LossKind.TYPILUS.value)
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument("--gnn-steps", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--learning-rate", type=float, default=5e-3)
    parser.add_argument("--dtype", choices=["float32", "float64"], default="float32",
                        help="training dtype: float32 (fast, default) or float64 (the "
                             "historical double precision; compiled and eager float64 runs "
                             "produce bit-identical loss trajectories)")
    parser.add_argument("--no-compile", action="store_true",
                        help="disable the compile-once batch plan and rebuild every batch "
                             "from node texts each epoch (the eager baseline path)")
    parser.add_argument("--corpus-dir", type=Path, default=None,
                        help="train on .py files from this directory instead of a synthetic corpus")
    parser.add_argument("--dataset", type=Path, default=None,
                        help="load a dataset directory saved by 'ingest --out' / 'train --save-dataset'")
    parser.add_argument("--mmap", action="store_true",
                        help="memory-map the --dataset graph shards instead of decoding them "
                             "into RAM (requires raw shards: ingest --shard-format raw or "
                             "train --save-dataset --shard-layout raw)")
    if include_workers:
        # `serve` defines its own --workers (annotation worker processes);
        # every other subcommand gets the data-parallel training flag.
        parser.add_argument("--workers", type=int, default=1,
                            help="data-parallel training processes; each forked worker encodes a "
                                 "disjoint slice of every batch and the parent reduces per-graph "
                                 "gradients in graph order, so workers=N replays workers=1 "
                                 "bit-for-bit (graph family only; falls back to serial where "
                                 "fork is unavailable)")
    parser.add_argument("--prefetch-batches", type=int, default=None,
                        help="stream compiled batches through a bounded prefetch window of "
                             "this many batches instead of keeping the whole plan resident; "
                             "peak memory becomes O(window) with an identical loss trajectory")


def _add_ingest_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for graph extraction (0 = one per CPU core)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="content-addressed extraction cache; unchanged files are never re-parsed")


def _add_index_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--index", choices=list(INDEX_KINDS), default=None,
                        help="TypeSpace index: exact (brute-force oracle, default), lsh "
                             "(random-projection buckets) or ivf (k-means cells + shortlist "
                             "re-rank, the sub-linear serving tier); with --load-model the "
                             "loaded pipeline is re-indexed")
    parser.add_argument("--nlist", type=int, default=None,
                        help="ivf only: number of k-means cells (default 64)")
    parser.add_argument("--nprobe", type=int, default=None,
                        help="ivf only: cells probed per query (default 8)")


def _index_settings(args: argparse.Namespace) -> tuple[Optional[str], dict]:
    """The (index_kind, index_params) selected on the command line."""
    kind: Optional[str] = getattr(args, "index", None)
    params: dict = {}
    for flag, name in [("--nlist", "nlist"), ("--nprobe", "nprobe")]:
        value = getattr(args, name, None)
        if value is None:
            continue
        if kind != "ivf":
            raise SystemExit(f"{flag} only applies to the IVF index; add --index ivf")
        params[name] = value
    return kind, params


def _ingest_config(args: argparse.Namespace) -> IngestConfig:
    jobs: Optional[int] = getattr(args, "jobs", 1)
    if jobs == 0:
        jobs = None  # one worker per core
    return IngestConfig(jobs=jobs, cache_dir=getattr(args, "cache_dir", None))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    corpus = subparsers.add_parser("corpus", help="generate a synthetic corpus")
    _add_corpus_arguments(corpus)
    corpus.add_argument("--out", type=Path, default=None, help="directory to write the generated files to")

    ingest = subparsers.add_parser(
        "ingest", help="extract graphs for a corpus (parallel, cached) and save the dataset"
    )
    _add_corpus_arguments(ingest)
    _add_ingest_arguments(ingest)
    ingest.add_argument("--corpus-dir", type=Path, default=None,
                        help="ingest .py files from this directory instead of a synthetic corpus")
    ingest.add_argument("--out", type=Path, required=True,
                        help="directory to write the sharded dataset to (reload with 'train --dataset')")
    ingest.add_argument("--shard-size", type=int, default=64, help="graphs per dataset shard file")
    ingest.add_argument("--shard-format", choices=["binary", "json", "raw"], default="binary",
                        help="graph shard layout: fingerprint-validated FlatGraph .npz arrays "
                             "(default), the legacy JSON payloads, or raw .npy column "
                             "directories that 'train --dataset D --mmap' maps without "
                             "decoding (the out-of-core layout)")

    train = subparsers.add_parser("train", help="train a model and report test metrics")
    _add_corpus_arguments(train)
    _add_training_arguments(train)
    _add_ingest_arguments(train)
    _add_index_arguments(train)
    train.add_argument("--save-typespace", type=Path, default=None, help="write the TypeSpace to this .npz file")
    train.add_argument("--save-model", type=Path, default=None,
                       help="persist the trained pipeline (weights + TypeSpace) to this directory")
    train.add_argument("--typespace-layout", choices=["npz", "raw"], default="npz",
                       help="--save-model marker layout: npz archive (default) or raw .npy "
                            "(memory-mapped on load — the serving layout for large maps)")
    train.add_argument("--save-dataset", type=Path, default=None,
                       help="persist the assembled dataset to this directory for instant reloads")
    train.add_argument("--shard-layout", choices=["binary", "json", "raw"], default="binary",
                       help="--save-dataset graph shard layout: .npz arrays (default), legacy "
                            "JSON, or raw .npy columns for memory-mapped reloads (--mmap)")

    suggest = subparsers.add_parser("suggest", help="suggest types for Python files")
    _add_corpus_arguments(suggest)
    _add_training_arguments(suggest)
    _add_ingest_arguments(suggest)
    _add_index_arguments(suggest)
    suggest.add_argument("files", nargs="+", type=Path, help="Python files to annotate")
    suggest.add_argument("--confidence", type=float, default=0.0, help="minimum prediction confidence")
    suggest.add_argument("--no-type-checker", action="store_true", help="skip checker filtering of candidates")
    suggest.add_argument("--load-model", type=Path, default=None,
                         help="serve a pipeline saved with --save-model instead of training")

    annotate = subparsers.add_parser(
        "annotate", help="annotate a whole project directory in one batched pass"
    )
    _add_corpus_arguments(annotate)
    _add_training_arguments(annotate)
    _add_ingest_arguments(annotate)
    _add_index_arguments(annotate)
    annotate.add_argument("directory", type=Path, help="project directory of .py files to annotate")
    annotate.add_argument("--load-model", type=Path, default=None,
                          help="serve a pipeline saved with --save-model instead of training")
    annotate.add_argument("--save-model", type=Path, default=None,
                          help="persist the (freshly trained) pipeline to this directory")
    annotate.add_argument("--confidence", type=float, default=0.0, help="minimum prediction confidence")
    annotate.add_argument("--no-type-checker", action="store_true", help="skip checker filtering of candidates")
    annotate.add_argument("--disagreements-only", action="store_true",
                          help="print only confident contradictions of existing annotations")
    annotate.add_argument("--disagreement-threshold", type=float, default=0.8,
                          help="confidence needed for a disagreement finding")
    annotate.add_argument("--server", default=None,
                          help="annotate through the daemon listening on this Unix socket or "
                               "HOST:PORT TCP address instead of loading a model locally")
    annotate.add_argument("--report-json", type=Path, default=None,
                          help="write the full annotation report (suggestions + summary) to this JSON file")
    annotate.add_argument("--deadline", type=float, default=None,
                          help="with --server: per-request deadline in seconds, propagated on the "
                               "wire so the daemon drops the request instead of answering late")
    annotate.add_argument("--retries", type=int, default=0,
                          help="with --server: retry attempts on connect failure or overload shed "
                               "(exponential backoff with deterministic jitter; annotation errors "
                               "are never retried)")

    serve = subparsers.add_parser(
        "serve", help="run the long-lived annotation daemon (micro-batched serving)"
    )
    _add_corpus_arguments(serve)
    _add_training_arguments(serve, include_workers=False)
    _add_ingest_arguments(serve)
    _add_index_arguments(serve)
    serve.add_argument("--socket", type=Path, default=None,
                       help="Unix socket path the daemon listens on")
    serve.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="also (or instead) listen on this TCP address; port 0 picks a "
                            "free port, printed on startup")
    serve.add_argument("--workers", type=int, default=0, metavar="N",
                       help="fleet mode: dispatch micro-batches across N annotation worker "
                            "processes that each memory-map the same saved model (requires "
                            "--load-model; the marker matrix occupies physical memory once). "
                            "0 (default) keeps the single-process in-memory daemon")
    serve.add_argument("--load-model", type=Path, default=None,
                       help="serve a pipeline saved with --save-model instead of training")
    serve.add_argument("--confidence", type=float, default=0.0, help="minimum prediction confidence")
    serve.add_argument("--no-type-checker", action="store_true", help="skip checker filtering of candidates")
    serve.add_argument("--batch-window-ms", type=float, default=10.0,
                       help="how long the daemon waits to coalesce concurrent requests")
    serve.add_argument("--max-batch", type=int, default=32,
                       help="maximum requests merged into one micro-batch")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission bound: requests queued or in flight beyond this are shed "
                            "immediately with an 'overloaded' error and a retry_after_seconds hint")
    serve.add_argument("--max-frame-bytes", type=int, default=None,
                       help="per-frame wire cap; larger (or garbage-length) frames are rejected "
                            "with a protocol error before any buffer is allocated")
    serve.add_argument("--request-timeout", type=float, default=None,
                       help="default per-request deadline in seconds for clients that send none; "
                            "expired requests are dropped before the embedding pass")
    serve.add_argument("--ping", action="store_true",
                       help="wait until a daemon answers on --socket/--tcp, print its status and exit")
    serve.add_argument("--ping-timeout", type=float, default=30.0,
                       help="seconds --ping waits for the daemon to come up")
    serve.add_argument("--reload", type=Path, default=None, metavar="MODEL_DIR",
                       help="ask the daemon on --socket/--tcp to hot-swap onto the pipeline saved "
                            "at MODEL_DIR (in-flight requests finish on the old pipeline) and exit")
    serve.add_argument("--shutdown", action="store_true",
                       help="ask the daemon on --socket/--tcp to stop and exit")

    check = subparsers.add_parser("check", help="run the optional type checker")
    check.add_argument("files", nargs="+", type=Path, help="Python files to check")
    check.add_argument("--mode", choices=[mode.value for mode in CheckerMode], default=CheckerMode.STRICT.value)
    return parser


# ---------------------------------------------------------------------------
# Command implementations (each returns a process exit code)
# ---------------------------------------------------------------------------


def _build_dataset(args: argparse.Namespace) -> TypeAnnotationDataset:
    dataset_path: Optional[Path] = getattr(args, "dataset", None)
    if dataset_path is not None:
        mmap = bool(getattr(args, "mmap", False))
        dataset = TypeAnnotationDataset.load(dataset_path, mmap=mmap)
        mode = " (memory-mapped)" if mmap else ""
        print(f"loaded dataset from {dataset_path}{mode} ({dataset.summary()['files']} files)")
        return dataset
    dataset_config = DatasetConfig(rarity_threshold=args.rarity_threshold)
    ingest = _ingest_config(args)
    corpus_dir: Optional[Path] = getattr(args, "corpus_dir", None)
    if corpus_dir is not None:
        files = {str(path): path.read_text(encoding="utf-8") for path in sorted(corpus_dir.rglob("*.py"))}
        if not files:
            raise SystemExit(f"no .py files found under {corpus_dir}")
        return TypeAnnotationDataset.from_sources(files, config=dataset_config, ingest=ingest)
    synthesis = SynthesisConfig(
        num_files=args.num_files, seed=args.seed, annotation_probability=args.annotation_probability
    )
    return TypeAnnotationDataset.synthetic(synthesis, dataset_config, ingest=ingest)


def _fit_pipeline(args: argparse.Namespace, dataset: TypeAnnotationDataset) -> TypilusPipeline:
    index_kind, index_params = _index_settings(args)
    return TypilusPipeline.fit(
        dataset,
        EncoderConfig(family=args.family, hidden_dim=args.hidden_dim, gnn_steps=args.gnn_steps),
        loss_kind=LossKind(args.loss),
        training_config=TrainingConfig(
            epochs=args.epochs,
            learning_rate=args.learning_rate,
            dtype=getattr(args, "dtype", "float32"),
            compile_batches=not getattr(args, "no_compile", False),
            workers=getattr(args, "workers", 1) or 1,
            prefetch_batches=getattr(args, "prefetch_batches", None),
        ),
        index_kind=index_kind,
        index_params=index_params,
        verbose=True,
    )


def command_corpus(args: argparse.Namespace) -> int:
    synthesizer = CorpusSynthesizer(
        SynthesisConfig(num_files=args.num_files, seed=args.seed, annotation_probability=args.annotation_probability)
    )
    files = synthesizer.generate()
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for entry in files:
            target = args.out / Path(entry.filename).name
            target.write_text(entry.source, encoding="utf-8")
        print(f"wrote {len(files)} files to {args.out}")
    dataset = TypeAnnotationDataset.from_sources(
        {entry.filename: entry.source for entry in files},
        class_edges=synthesizer.class_hierarchy_edges(),
        config=DatasetConfig(rarity_threshold=args.rarity_threshold),
    )
    rows = [[key, str(value)] for key, value in dataset.summary().items()]
    print(render_table(["statistic", "value"], rows))
    return 0


def _obtain_pipeline(args: argparse.Namespace) -> TypilusPipeline:
    """Load a saved pipeline when ``--load-model`` was given, else train one."""
    load_model: Optional[Path] = getattr(args, "load_model", None)
    if load_model is not None:
        index_kind, index_params = _index_settings(args)
        try:
            pipeline = TypilusPipeline.load(load_model)
        except FileNotFoundError as error:
            raise SystemExit(
                f"no saved pipeline at {load_model} (missing {Path(error.filename).name}); "
                "create one with --save-model"
            ) from error
        print(f"loaded pipeline from {load_model} ({len(pipeline.type_space)} markers)")
        if index_kind is not None:
            pipeline.type_space.reindex(index_kind, **index_params)
            print(f"re-indexed TypeSpace with the {index_kind} index")
        return pipeline
    dataset = _build_dataset(args)
    return _fit_pipeline(args, dataset)


def command_ingest(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    dataset.save(args.out, shard_size=args.shard_size, shard_format=args.shard_format)
    print(f"dataset saved to {args.out}")
    rows = [[key, str(value)] for key, value in dataset.summary().items()]
    if dataset.ingest_report is not None:
        rows.extend([key, str(value)] for key, value in dataset.ingest_report.summary().items())
    print(render_table(["statistic", "value"], rows))
    return 0


def command_train(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    if args.save_dataset is not None:
        dataset.save(args.save_dataset, shard_format=args.shard_layout)
        print(f"dataset saved to {args.save_dataset} ({args.shard_layout} shards)")
    pipeline = _fit_pipeline(args, dataset)
    summary, _ = pipeline.evaluate_split(dataset.test)
    print(render_table(["metric", "value"], [[key, str(value)] for key, value in summary.as_row().items()]))
    if args.save_typespace is not None:
        pipeline.type_space.save(str(args.save_typespace))
        print(f"TypeSpace ({len(pipeline.type_space)} markers) saved to {args.save_typespace}")
    if args.save_model is not None:
        pipeline.save(args.save_model, typespace_layout=args.typespace_layout)
        print(f"pipeline saved to {args.save_model}")
    return 0


def command_suggest(args: argparse.Namespace) -> int:
    pipeline = _obtain_pipeline(args)
    sources = {str(path): path.read_text(encoding="utf-8") for path in args.files}
    ingest = _ingest_config(args)
    suggestions_by_file = pipeline.suggest_for_sources(
        sources,
        use_type_checker=not args.no_type_checker,
        confidence_threshold=args.confidence,
        ingest=ingest if (ingest.jobs != 1 or ingest.cache_dir is not None) else None,
    )
    for filename, suggestions in suggestions_by_file.items():
        print(f"\n=== {filename} ===")
        rows = [
            [s.scope, s.name, s.kind, s.existing_annotation or "-", s.suggested_type or "-", f"{s.confidence:.2f}"]
            for s in suggestions
        ]
        print(render_table(["scope", "symbol", "kind", "existing", "suggested", "confidence"], rows))
    return 0


def _write_report_json(report, path: Path) -> None:
    from repro.engine import suggestion_to_payload

    payload = {
        "files": [
            {
                "filename": file_report.filename,
                "suggestions": [suggestion_to_payload(s) for s in file_report.suggestions],
            }
            for file_report in report.files
        ],
        "skipped_files": list(report.skipped_files),
        "summary": report.summary(),
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8")
    print(f"report written to {path}")


def command_annotate(args: argparse.Namespace) -> int:
    if not args.directory.is_dir():
        raise SystemExit(f"{args.directory} is not a directory")
    if args.server is not None:
        from repro.serve import AnnotationClient

        # Filtering and caching are fixed by the daemon's own configuration;
        # refuse flags we cannot honour rather than return a report the user
        # did not ask for.
        fixed_by_daemon = [
            flag
            for flag, requested in [
                ("--confidence", args.confidence != 0.0),
                ("--no-type-checker", args.no_type_checker),
                ("--load-model", args.load_model is not None),
                ("--save-model", args.save_model is not None),
                ("--cache-dir", args.cache_dir is not None),
                ("--jobs", args.jobs != 1),
            ]
            if requested
        ]
        if fixed_by_daemon:
            raise SystemExit(
                f"{', '.join(fixed_by_daemon)} cannot be combined with --server: these are "
                "fixed by the daemon's configuration (set them on 'repro serve' instead)"
            )
        from repro.serve import RetryPolicy

        policy = RetryPolicy(max_attempts=args.retries + 1) if args.retries > 0 else None
        client = AnnotationClient(
            args.server, disagreement_threshold=args.disagreement_threshold, retry_policy=policy
        )
        report = client.annotate_directory(args.directory, timeout_seconds=args.deadline)
    else:
        pipeline = _obtain_pipeline(args)
        if args.save_model is not None:
            pipeline.save(args.save_model)
            print(f"pipeline saved to {args.save_model}")
        ingest = _ingest_config(args)
        annotator = ProjectAnnotator(
            pipeline,
            AnnotatorConfig(
                use_type_checker=not args.no_type_checker,
                confidence_threshold=args.confidence,
                disagreement_threshold=args.disagreement_threshold,
                jobs=ingest.jobs,
                cache_dir=args.cache_dir,
            ),
        )
        report = annotator.annotate_directory(args.directory)
    if args.report_json is not None:
        _write_report_json(report, args.report_json)
    if args.disagreements_only:
        rows = [
            [filename, s.scope, s.name, s.existing_annotation or "-", s.suggested_type or "-", f"{s.confidence:.2f}"]
            for filename, s in report.disagreements()
        ]
        print(render_table(["file", "scope", "symbol", "existing", "suggested", "confidence"], rows))
    else:
        for file_report in report.files:
            print(f"\n=== {file_report.filename} ===")
            rows = [
                [s.scope, s.name, s.kind, s.existing_annotation or "-", s.suggested_type or "-", f"{s.confidence:.2f}"]
                for s in file_report.suggestions
            ]
            print(render_table(["scope", "symbol", "kind", "existing", "suggested", "confidence"], rows))
    print()
    print(render_table(["statistic", "value"], [[key, str(value)] for key, value in report.summary().items()]))
    return 0


def command_serve(args: argparse.Namespace) -> int:
    from repro.serve import (
        AnnotationClient,
        AnnotationServer,
        ServeConfig,
        WorkerPool,
        format_address,
    )

    if args.socket is None and args.tcp is None:
        raise SystemExit("serve needs an endpoint: --socket PATH, --tcp HOST:PORT, or both")
    control_address = args.socket if args.socket is not None else args.tcp
    if args.shutdown:
        AnnotationClient(control_address).shutdown()
        print(f"daemon on {format_address(control_address)} is stopping")
        return 0
    if args.reload is not None:
        response = AnnotationClient(control_address).reload(args.reload)
        print(
            f"daemon on {format_address(control_address)} reloaded from {args.reload}: "
            f"{response['previous_markers']} -> {response['markers']} markers"
        )
        return 0
    if args.ping:
        info = AnnotationClient(control_address).wait_until_ready(timeout=args.ping_timeout)
        workers = f", {info['workers']} workers" if "workers" in info else ""
        print(
            f"daemon ready on {format_address(control_address)} ({info['markers']} markers, "
            f"dim {info['dim']}, state {info['state']}{workers})"
        )
        return 0
    ingest = _ingest_config(args)
    annotator_config = AnnotatorConfig(
        use_type_checker=not args.no_type_checker,
        confidence_threshold=args.confidence,
        jobs=ingest.jobs,
        cache_dir=args.cache_dir,
    )
    serve_config_kwargs = dict(
        batch_window_seconds=args.batch_window_ms / 1000.0,
        max_batch_requests=args.max_batch,
        max_queue_depth=args.max_queue,
        default_timeout_seconds=args.request_timeout,
    )
    if args.max_frame_bytes is not None:
        serve_config_kwargs["max_frame_bytes"] = args.max_frame_bytes
    if args.workers > 0:
        # Fleet mode: the front-end holds no pipeline; N worker processes
        # each load (and memory-map) the same saved model directory.
        if args.load_model is None:
            raise SystemExit("--workers needs --load-model: fleet workers load a saved pipeline")
        try:
            manifest = TypilusPipeline.peek_manifest(args.load_model)
        except FileNotFoundError as error:
            raise SystemExit(
                f"no saved pipeline at {args.load_model} (missing {Path(error.filename).name}); "
                "create one with --save-model"
            ) from error
        if not manifest["mmap_capable"]:
            print(
                "note: this model uses the npz typespace layout, so each worker holds a "
                "private marker copy; re-save with --typespace-layout raw to share one "
                "memory-mapped matrix across the fleet",
                flush=True,
            )
        pool = WorkerPool(args.load_model, args.workers, annotator_config=annotator_config)
        server = AnnotationServer(
            None,
            args.socket,
            serve_config=ServeConfig(**serve_config_kwargs),
            tcp_address=args.tcp,
            worker_pool=pool,
        )
        server.start()
        banner = f"serving with {args.workers} workers ({pool.describe()['markers']} markers)"
    else:
        pipeline = _obtain_pipeline(args)
        server = AnnotationServer(
            pipeline,
            args.socket,
            annotator_config=annotator_config,
            serve_config=ServeConfig(**serve_config_kwargs),
            tcp_address=args.tcp,
        )
        server.start()
        banner = f"serving ({len(pipeline.type_space)} markers)"
    endpoints = []
    if args.socket is not None:
        endpoints.append(f"unix://{args.socket}")
    if server.tcp_port is not None:
        host = server.tcp_address[0]
        endpoints.append(f"tcp://{host}:{server.tcp_port}")
    print(
        f"{banner} on {' and '.join(endpoints)}; "
        "stop with 'repro serve ... --shutdown' or Ctrl-C",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        server.close()
        print("daemon stopped")
    return 0


def command_check(args: argparse.Namespace) -> int:
    checker = OptionalTypeChecker(mode=CheckerMode(args.mode))
    exit_code = 0
    for path in args.files:
        result = checker.check_source(path.read_text(encoding="utf-8"), filename=str(path))
        if result.ok:
            print(f"{path}: no type errors")
            continue
        exit_code = 1
        for error in result.errors:
            print(f"{path}:{error}")
    return exit_code


_COMMANDS = {
    "corpus": command_corpus,
    "ingest": command_ingest,
    "train": command_train,
    "suggest": command_suggest,
    "annotate": command_annotate,
    "serve": command_serve,
    "check": command_check,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the console script."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
