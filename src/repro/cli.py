"""Command-line interface for the Typilus reproduction.

Four subcommands cover the library's main workflows without writing Python:

``corpus``
    Generate a synthetic corpus to a directory and print its statistics.
``train``
    Train a model on a (synthetic or on-disk) corpus, report test metrics and
    optionally save the TypeSpace to a ``.npz`` file.
``suggest``
    Train (or reuse a cached pipeline within the invocation) and print
    checker-filtered type suggestions for one or more Python files.
``check``
    Run the optional type checker over Python files and print diagnostics.

Examples::

    python -m repro.cli corpus --num-files 40 --out /tmp/corpus
    python -m repro.cli train --num-files 60 --epochs 8 --family graph --loss typilus
    python -m repro.cli suggest path/to/file.py --confidence 0.5
    python -m repro.cli check path/to/file.py --mode strict
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.checker import CheckerMode, OptionalTypeChecker
from repro.core import EncoderConfig, LossKind, TrainingConfig, TypilusPipeline
from repro.corpus import CorpusSynthesizer, DatasetConfig, SynthesisConfig, TypeAnnotationDataset
from repro.evaluation import render_table


def _add_corpus_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--num-files", type=int, default=40, help="number of synthetic files to generate")
    parser.add_argument("--seed", type=int, default=13, help="corpus random seed")
    parser.add_argument("--annotation-probability", type=float, default=0.7,
                        help="probability that each symbol keeps its annotation")
    parser.add_argument("--rarity-threshold", type=int, default=12,
                        help="annotation count below which a type counts as rare")


def _add_training_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--family", choices=["graph", "sequence", "path", "names"], default="graph")
    parser.add_argument("--loss", choices=[kind.value for kind in LossKind], default=LossKind.TYPILUS.value)
    parser.add_argument("--hidden-dim", type=int, default=32)
    parser.add_argument("--gnn-steps", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--learning-rate", type=float, default=5e-3)
    parser.add_argument("--corpus-dir", type=Path, default=None,
                        help="train on .py files from this directory instead of a synthetic corpus")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    subparsers = parser.add_subparsers(dest="command", required=True)

    corpus = subparsers.add_parser("corpus", help="generate a synthetic corpus")
    _add_corpus_arguments(corpus)
    corpus.add_argument("--out", type=Path, default=None, help="directory to write the generated files to")

    train = subparsers.add_parser("train", help="train a model and report test metrics")
    _add_corpus_arguments(train)
    _add_training_arguments(train)
    train.add_argument("--save-typespace", type=Path, default=None, help="write the TypeSpace to this .npz file")

    suggest = subparsers.add_parser("suggest", help="suggest types for Python files")
    _add_corpus_arguments(suggest)
    _add_training_arguments(suggest)
    suggest.add_argument("files", nargs="+", type=Path, help="Python files to annotate")
    suggest.add_argument("--confidence", type=float, default=0.0, help="minimum prediction confidence")
    suggest.add_argument("--no-type-checker", action="store_true", help="skip checker filtering of candidates")

    check = subparsers.add_parser("check", help="run the optional type checker")
    check.add_argument("files", nargs="+", type=Path, help="Python files to check")
    check.add_argument("--mode", choices=[mode.value for mode in CheckerMode], default=CheckerMode.STRICT.value)
    return parser


# ---------------------------------------------------------------------------
# Command implementations (each returns a process exit code)
# ---------------------------------------------------------------------------


def _build_dataset(args: argparse.Namespace) -> TypeAnnotationDataset:
    dataset_config = DatasetConfig(rarity_threshold=args.rarity_threshold)
    corpus_dir: Optional[Path] = getattr(args, "corpus_dir", None)
    if corpus_dir is not None:
        files = {str(path): path.read_text(encoding="utf-8") for path in sorted(corpus_dir.rglob("*.py"))}
        if not files:
            raise SystemExit(f"no .py files found under {corpus_dir}")
        return TypeAnnotationDataset.from_sources(files, config=dataset_config)
    synthesis = SynthesisConfig(
        num_files=args.num_files, seed=args.seed, annotation_probability=args.annotation_probability
    )
    return TypeAnnotationDataset.synthetic(synthesis, dataset_config)


def _fit_pipeline(args: argparse.Namespace, dataset: TypeAnnotationDataset) -> TypilusPipeline:
    return TypilusPipeline.fit(
        dataset,
        EncoderConfig(family=args.family, hidden_dim=args.hidden_dim, gnn_steps=args.gnn_steps),
        loss_kind=LossKind(args.loss),
        training_config=TrainingConfig(epochs=args.epochs, learning_rate=args.learning_rate),
        verbose=True,
    )


def command_corpus(args: argparse.Namespace) -> int:
    synthesizer = CorpusSynthesizer(
        SynthesisConfig(num_files=args.num_files, seed=args.seed, annotation_probability=args.annotation_probability)
    )
    files = synthesizer.generate()
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        for entry in files:
            target = args.out / Path(entry.filename).name
            target.write_text(entry.source, encoding="utf-8")
        print(f"wrote {len(files)} files to {args.out}")
    dataset = TypeAnnotationDataset.from_sources(
        {entry.filename: entry.source for entry in files},
        class_edges=synthesizer.class_hierarchy_edges(),
        config=DatasetConfig(rarity_threshold=args.rarity_threshold),
    )
    rows = [[key, str(value)] for key, value in dataset.summary().items()]
    print(render_table(["statistic", "value"], rows))
    return 0


def command_train(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    pipeline = _fit_pipeline(args, dataset)
    summary, _ = pipeline.evaluate_split(dataset.test)
    print(render_table(["metric", "value"], [[key, str(value)] for key, value in summary.as_row().items()]))
    if args.save_typespace is not None:
        pipeline.type_space.save(str(args.save_typespace))
        print(f"TypeSpace ({len(pipeline.type_space)} markers) saved to {args.save_typespace}")
    return 0


def command_suggest(args: argparse.Namespace) -> int:
    dataset = _build_dataset(args)
    pipeline = _fit_pipeline(args, dataset)
    for path in args.files:
        source = path.read_text(encoding="utf-8")
        suggestions = pipeline.suggest_for_source(
            source,
            filename=str(path),
            use_type_checker=not args.no_type_checker,
            confidence_threshold=args.confidence,
        )
        print(f"\n=== {path} ===")
        rows = [
            [s.scope, s.name, s.kind, s.existing_annotation or "-", s.suggested_type or "-", f"{s.confidence:.2f}"]
            for s in suggestions
        ]
        print(render_table(["scope", "symbol", "kind", "existing", "suggested", "confidence"], rows))
    return 0


def command_check(args: argparse.Namespace) -> int:
    checker = OptionalTypeChecker(mode=CheckerMode(args.mode))
    exit_code = 0
    for path in args.files:
        result = checker.check_source(path.read_text(encoding="utf-8"), filename=str(path))
        if result.ok:
            print(f"{path}: no type errors")
            continue
        exit_code = 1
        for error in result.errors:
            print(f"{path}:{error}")
    return exit_code


_COMMANDS = {
    "corpus": command_corpus,
    "train": command_train,
    "suggest": command_suggest,
    "check": command_check,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point used by ``python -m repro.cli`` and the console script."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in examples
    sys.exit(main())
