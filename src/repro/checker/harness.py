"""Harness that assesses type predictions with the optional type checker.

This is the experimental protocol of Sec. 6.3: for each prediction ``τ`` for
a symbol ``s`` in program ``P``, add ``τ`` to ``P`` (or replace the existing
annotation of ``s``), re-run the type checker and record whether the new
annotation introduces a type error.  Predictions are grouped into the three
categories of Table 5:

* ``ϵ → τ`` — the symbol was previously unannotated;
* ``τ → τ'`` — the prediction differs from the original annotation;
* ``τ → τ`` — the prediction equals the original annotation.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.checker.checker import CheckerMode, OptionalTypeChecker
from repro.checker.errors import CheckResult
from repro.graph.nodes import SymbolKind
from repro.types.normalize import canonical_string


class PredictionCategory(str, Enum):
    """The three rows of Table 5."""

    ADDED = "eps_to_tau"  # ϵ → τ
    CHANGED = "tau_to_tau_prime"  # τ → τ′
    UNCHANGED = "tau_to_tau"  # τ → τ


@dataclass
class PredictionCheckOutcome:
    """Result of checking a single prediction."""

    scope: str
    name: str
    kind: SymbolKind
    predicted_type: str
    original_annotation: Optional[str]
    category: PredictionCategory
    introduced_errors: int
    ok: bool
    skipped: bool = False
    reason: str = ""
    #: True when the skip is intrinsic to the predicted type (Any/unparsable)
    #: and therefore holds for every symbol, not just this one.
    type_level_skip: bool = False


class AnnotationRewriteError(ValueError):
    """Raised when the requested symbol cannot be located in the program."""


class _AnnotationInserter(ast.NodeTransformer):
    """Insert or replace the annotation of one symbol identified by scope path."""

    def __init__(self, scope: str, name: str, kind: SymbolKind, annotation: ast.expr) -> None:
        self.target_scope = scope
        self.target_name = name
        self.kind = kind
        self.annotation = annotation
        self.applied = False
        self._scope: list[str] = ["module"]

    @property
    def scope_path(self) -> str:
        return ".".join(self._scope)

    def _visit_scope(self, node: ast.AST, name: str) -> ast.AST:
        self._scope.append(name)
        self.generic_visit(node)
        self._scope.pop()
        return node

    def visit_ClassDef(self, node: ast.ClassDef) -> ast.AST:
        return self._visit_scope(node, node.name)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> ast.AST:
        function_scope = f"{self.scope_path}.{node.name}"
        if function_scope == self.target_scope:
            if self.kind == SymbolKind.FUNCTION_RETURN and self.target_name == "<return>":
                node.returns = self.annotation
                self.applied = True
            elif self.kind == SymbolKind.PARAMETER:
                args = node.args
                for arg in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
                    if arg.arg == self.target_name:
                        arg.annotation = self.annotation
                        self.applied = True
                for vararg in (args.vararg, args.kwarg):
                    if vararg is not None and vararg.arg == self.target_name:
                        vararg.annotation = self.annotation
                        self.applied = True
        return self._visit_scope(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> ast.AST:
        return self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> ast.AST:
        return self._visit_function(node)

    def visit_Assign(self, node: ast.Assign) -> ast.AST:
        if self.kind != SymbolKind.VARIABLE or self.applied or self.scope_path != self.target_scope:
            return self.generic_visit(node)
        if len(node.targets) == 1 and self._matches_target(node.targets[0]):
            self.applied = True
            return ast.copy_location(
                ast.AnnAssign(target=node.targets[0], annotation=self.annotation, value=node.value, simple=1
                              if isinstance(node.targets[0], ast.Name) else 0),
                node,
            )
        return self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> ast.AST:
        if self.kind == SymbolKind.VARIABLE and not self.applied and self.scope_path == self.target_scope:
            if self._matches_target(node.target):
                node.annotation = self.annotation
                self.applied = True
                return node
        return self.generic_visit(node)

    def _matches_target(self, target: ast.expr) -> bool:
        if isinstance(target, ast.Name):
            return target.id == self.target_name
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return f"self.{target.attr}" == self.target_name
        return False


def apply_annotation(source: str, scope: str, name: str, kind: SymbolKind, type_string: str) -> str:
    """Return ``source`` with the annotation of one symbol set to ``type_string``."""
    try:
        annotation_expr = ast.parse(type_string, mode="eval").body
    except SyntaxError as error:
        raise AnnotationRewriteError(f"prediction {type_string!r} is not a valid annotation") from error
    tree = ast.parse(source)
    inserter = _AnnotationInserter(scope, name, kind, annotation_expr)
    new_tree = inserter.visit(tree)
    if not inserter.applied and kind == SymbolKind.VARIABLE and name.startswith("self."):
        # `self.attr` symbols are recorded against the class scope, but their
        # defining assignments live inside the class's methods.
        retry = _SelfAttributeInserter(scope, name, annotation_expr)
        new_tree = retry.visit(ast.parse(source))
        if retry.applied:
            ast.fix_missing_locations(new_tree)
            return ast.unparse(new_tree)
    if not inserter.applied:
        raise AnnotationRewriteError(f"could not locate symbol {name!r} in scope {scope!r}")
    ast.fix_missing_locations(new_tree)
    return ast.unparse(new_tree)


class _SelfAttributeInserter(ast.NodeTransformer):
    """Annotate the first ``self.attr = ...`` assignment inside a class's methods."""

    def __init__(self, class_scope: str, dotted_name: str, annotation: ast.expr) -> None:
        self.class_scope = class_scope
        self.attr = dotted_name.split(".", 1)[1]
        self.annotation = annotation
        self.applied = False
        self._scope: list[str] = ["module"]

    def visit_ClassDef(self, node: ast.ClassDef) -> ast.AST:
        self._scope.append(node.name)
        if ".".join(self._scope) == self.class_scope:
            self.generic_visit(node)
        self._scope.pop()
        return node

    def visit_Assign(self, node: ast.Assign) -> ast.AST:
        if self.applied or len(node.targets) != 1:
            return node
        target = node.targets[0]
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr == self.attr
        ):
            self.applied = True
            return ast.copy_location(
                ast.AnnAssign(target=target, annotation=self.annotation, value=node.value, simple=0), node
            )
        return node


class PredictionChecker:
    """Applies predictions one at a time and classifies the checker verdicts."""

    def __init__(self, mode: CheckerMode = CheckerMode.STRICT) -> None:
        self.mode = mode
        self._checker = OptionalTypeChecker(mode=mode)
        self._baseline_cache: dict[int, Counter] = {}

    def _error_signature(self, result: CheckResult) -> Counter:
        return Counter((error.code, error.scope) for error in result.errors)

    def baseline(self, source: str) -> CheckResult:
        return OptionalTypeChecker(mode=self.mode).check_source(source)

    def check_prediction(
        self,
        source: str,
        scope: str,
        name: str,
        kind: SymbolKind,
        predicted_type: str,
        original_annotation: Optional[str] = None,
        baseline_result: Optional[CheckResult] = None,
    ) -> PredictionCheckOutcome:
        """Insert one prediction into ``source`` and report whether it type checks.

        ``baseline_result`` lets batch callers compute the unmodified file's
        diagnostics once and share them across every prediction for that file.
        """
        category = self._categorise(predicted_type, original_annotation)
        canonical_prediction = canonical_string(predicted_type)
        if canonical_prediction is None or canonical_prediction in ("Any",):
            return PredictionCheckOutcome(
                scope, name, kind, predicted_type, original_annotation, category,
                introduced_errors=0, ok=False, skipped=True, reason="prediction skipped (Any or unparsable)",
                type_level_skip=True,
            )
        if baseline_result is None:
            baseline_result = self.baseline(source)
        try:
            modified = apply_annotation(source, scope, name, kind, predicted_type)
        except AnnotationRewriteError as error:
            return PredictionCheckOutcome(
                scope, name, kind, predicted_type, original_annotation, category,
                introduced_errors=0, ok=False, skipped=True, reason=str(error),
            )
        modified_result = OptionalTypeChecker(mode=self.mode).check_source(modified)
        introduced = modified_result and self._introduced_errors(baseline_result, modified_result)
        return PredictionCheckOutcome(
            scope, name, kind, predicted_type, original_annotation, category,
            introduced_errors=introduced, ok=introduced == 0,
        )

    def _introduced_errors(self, baseline: CheckResult, modified: CheckResult) -> int:
        before = self._error_signature(baseline)
        after = self._error_signature(modified)
        introduced = after - before
        return sum(introduced.values())

    @staticmethod
    def _categorise(predicted_type: str, original_annotation: Optional[str]) -> PredictionCategory:
        if original_annotation is None:
            return PredictionCategory.ADDED
        original = canonical_string(original_annotation)
        predicted = canonical_string(predicted_type)
        if original is not None and predicted is not None and original == predicted:
            return PredictionCategory.UNCHANGED
        return PredictionCategory.CHANGED
