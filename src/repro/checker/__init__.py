"""Optional type checker: the reproduction's stand-in for mypy and pytype."""

from repro.checker.checker import CheckerMode, OptionalTypeChecker, check_source
from repro.checker.env import BUILTIN_SIGNATURES, ClassInfo, FunctionSignature, ModuleContext, Scope
from repro.checker.errors import CheckResult, ErrorCode, TypeCheckError
from repro.checker.harness import (
    AnnotationRewriteError,
    PredictionCategory,
    PredictionChecker,
    PredictionCheckOutcome,
    apply_annotation,
)
from repro.checker.infer import ExpressionTyper, is_assignable, join_types

__all__ = [
    "CheckerMode",
    "OptionalTypeChecker",
    "check_source",
    "CheckResult",
    "ErrorCode",
    "TypeCheckError",
    "FunctionSignature",
    "ClassInfo",
    "ModuleContext",
    "Scope",
    "BUILTIN_SIGNATURES",
    "ExpressionTyper",
    "is_assignable",
    "join_types",
    "PredictionChecker",
    "PredictionCheckOutcome",
    "PredictionCategory",
    "AnnotationRewriteError",
    "apply_annotation",
]
