"""The optional type checker: strict ("mypy-like") and lenient ("pytype-like").

The checker reproduces the role mypy and pytype play in the paper's Sec. 6.3
experiment: given a *partially annotated* program it reports type errors
caused by annotations that contradict the code, and stays silent about code
it cannot reason about.  Two modes model the two tools:

* :attr:`CheckerMode.STRICT` — checks assignments, redefinitions, argument
  counts, attribute existence, indexing and returns, like mypy;
* :attr:`CheckerMode.LENIENT` — checks only direct contradictions of explicit
  annotations and tolerates numeric narrowing, like pytype.  The lenient
  checker also exposes :meth:`OptionalTypeChecker.infer_annotations`, the
  analogue of running pytype to augment a corpus with inferred types.
"""

from __future__ import annotations

import ast
from enum import Enum
from typing import Optional

from repro.checker.env import ClassInfo, FunctionSignature, ModuleContext, Scope
from repro.checker.errors import CheckResult, ErrorCode, TypeCheckError
from repro.checker.infer import ExpressionTyper, is_assignable, join_types
from repro.types.expr import ANY, NONE, TypeExpr
from repro.types.lattice import TypeLattice
from repro.types.normalize import canonicalise
from repro.types.parser import try_parse_type


class CheckerMode(str, Enum):
    """Which real-world optional type checker the configuration emulates."""

    STRICT = "strict"  # mypy-like
    LENIENT = "lenient"  # pytype-like


class OptionalTypeChecker:
    """Type check a Python module under optional-typing semantics."""

    def __init__(self, mode: CheckerMode = CheckerMode.STRICT, lattice: Optional[TypeLattice] = None) -> None:
        self.mode = mode
        self.lattice = lattice if lattice is not None else TypeLattice()
        self._errors: list[TypeCheckError] = []
        self._statements = 0
        self._functions = 0

    @property
    def strict(self) -> bool:
        return self.mode == CheckerMode.STRICT

    # -- public API --------------------------------------------------------------------

    def check_source(self, source: str, filename: str = "<string>") -> CheckResult:
        """Type check a source string, returning every diagnostic found."""
        self._errors = []
        self._statements = 0
        self._functions = 0
        try:
            tree = ast.parse(source)
        except SyntaxError as error:
            return CheckResult(
                errors=[
                    TypeCheckError(ErrorCode.ANNOTATION_UNPARSABLE, f"syntax error: {error.msg}", error.lineno or -1)
                ]
            )
        context = self._build_module_context(tree)
        self._register_class_hierarchy(context)
        self._check_module(tree, context)
        return CheckResult(errors=list(self._errors), checked_functions=self._functions, checked_statements=self._statements)

    def check_file(self, path: str) -> CheckResult:
        with open(path, "r", encoding="utf-8") as handle:
            return self.check_source(handle.read(), filename=path)

    def infer_annotations(self, source: str) -> dict[tuple[str, str, str], str]:
        """Best-effort inference of missing annotations (the pytype role).

        Returns a map ``(scope_path, name, kind) -> type string`` for function
        returns and variables whose types can be determined from literals and
        annotated signatures.  Parameters are never inferred (neither does
        pytype without call-site information).
        """
        try:
            tree = ast.parse(source)
        except SyntaxError:
            return {}
        context = self._build_module_context(tree)
        self._register_class_hierarchy(context)
        inferred: dict[tuple[str, str, str], str] = {}
        typer = ExpressionTyper(context, self.lattice, lambda _err: None, strict=False)

        def walk_function(node: ast.FunctionDef | ast.AsyncFunctionDef, scope_path: str, class_name: Optional[str]) -> None:
            function_scope = Scope(parent=context.globals, name=scope_path)
            signature = self._signature_from_node(node, is_method=class_name is not None)
            for parameter_name, parameter_type in signature.parameters:
                function_scope.bind(parameter_name, parameter_type)
            if class_name is not None and signature.parameters:
                function_scope.bind(signature.parameters[0][0], TypeExpr(class_name))
            return_types: list[TypeExpr] = []
            for statement in ast.walk(node):
                if isinstance(statement, ast.Return) and statement.value is not None:
                    return_types.append(typer.infer(statement.value, function_scope))
                elif isinstance(statement, ast.Assign):
                    value_type = typer.infer(statement.value, function_scope)
                    for target in statement.targets:
                        if isinstance(target, ast.Name) and not value_type.is_any:
                            function_scope.bind(target.id, value_type)
                            inferred.setdefault((scope_path, target.id, "variable"), str(value_type))
            if node.returns is None:
                joined = join_types(return_types, self.lattice) if return_types else NONE
                if not joined.is_any:
                    inferred[(scope_path, "<return>", "function_return")] = str(canonicalise(joined))

        for statement in tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walk_function(statement, f"module.{statement.name}", None)
            elif isinstance(statement, ast.ClassDef):
                for member in statement.body:
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        walk_function(member, f"module.{statement.name}.{member.name}", statement.name)
            elif isinstance(statement, ast.Assign):
                value_type = typer.infer(statement.value, context.globals)
                for target in statement.targets:
                    if isinstance(target, ast.Name) and not value_type.is_any:
                        inferred.setdefault(("module", target.id, "variable"), str(value_type))
        return inferred

    # -- module context ------------------------------------------------------------------

    def _parse_annotation(self, node: Optional[ast.expr], lineno: int, scope: str) -> TypeExpr:
        if node is None:
            return ANY
        text = ast.unparse(node)
        parsed = try_parse_type(text)
        if parsed is None:
            self._report(ErrorCode.ANNOTATION_UNPARSABLE, f'invalid type annotation "{text}"', lineno, scope)
            return ANY
        return canonicalise(parsed)

    def _signature_from_node(self, node: ast.FunctionDef | ast.AsyncFunctionDef, is_method: bool) -> FunctionSignature:
        args = node.args
        parameters: list[tuple[str, TypeExpr]] = []
        all_args = list(args.posonlyargs) + list(args.args)
        for arg in all_args:
            annotation = self._annotation_or_any(arg.annotation)
            parameters.append((arg.arg, annotation))
        for arg in args.kwonlyargs:
            parameters.append((arg.arg, self._annotation_or_any(arg.annotation)))
        returns = self._annotation_or_any(node.returns)
        return FunctionSignature(
            name=node.name,
            parameters=parameters,
            returns=returns,
            has_varargs=args.vararg is not None,
            has_kwargs=args.kwarg is not None,
            is_method=is_method,
        )

    def _annotation_or_any(self, node: Optional[ast.expr]) -> TypeExpr:
        if node is None:
            return ANY
        parsed = try_parse_type(ast.unparse(node))
        return canonicalise(parsed) if parsed is not None else ANY

    def _build_module_context(self, tree: ast.Module) -> ModuleContext:
        context = ModuleContext()
        for statement in tree.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                context.functions[statement.name] = self._signature_from_node(statement, is_method=False)
            elif isinstance(statement, ast.ClassDef):
                context.classes[statement.name] = self._class_info_from_node(statement)
            elif isinstance(statement, ast.AnnAssign) and isinstance(statement.target, ast.Name):
                annotation = self._annotation_or_any(statement.annotation)
                context.globals.bind(statement.target.id, annotation, declared=True)
        return context

    def _class_info_from_node(self, node: ast.ClassDef) -> ClassInfo:
        info = ClassInfo(name=node.name)
        info.bases = [base.id for base in node.bases if isinstance(base, ast.Name)]
        for member in node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[member.name] = self._signature_from_node(member, is_method=True)
            elif isinstance(member, ast.AnnAssign) and isinstance(member.target, ast.Name):
                info.attributes[member.target.id] = self._annotation_or_any(member.annotation)
        # self.attr assignments inside methods contribute attributes too.
        for member in node.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for statement in ast.walk(member):
                target: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(statement, ast.AnnAssign):
                    target, annotation = statement.target, statement.annotation
                elif isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                    target = statement.targets[0]
                if (
                    target is not None
                    and isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in info.attributes
                ):
                    info.attributes[target.attr] = self._annotation_or_any(annotation) if annotation is not None else ANY
        return info

    def _register_class_hierarchy(self, context: ModuleContext) -> None:
        for class_info in context.classes.values():
            for base in class_info.bases:
                self.lattice.add_nominal_edge(class_info.name, base)

    # -- checking --------------------------------------------------------------------------

    def _report(self, code: ErrorCode, message: str, lineno: int, scope: str) -> None:
        self._errors.append(TypeCheckError(code, message, lineno, scope))

    def _check_module(self, tree: ast.Module, context: ModuleContext) -> None:
        typer = ExpressionTyper(context, self.lattice, self._errors.append, strict=self.strict)
        module_scope = context.globals
        self._check_block(tree.body, module_scope, typer, context, current_function=None)

    def _check_block(
        self,
        statements: list[ast.stmt],
        scope: Scope,
        typer: ExpressionTyper,
        context: ModuleContext,
        current_function: Optional[FunctionSignature],
    ) -> None:
        for statement in statements:
            self._statements += 1
            self._check_statement(statement, scope, typer, context, current_function)

    def _check_statement(
        self,
        statement: ast.stmt,
        scope: Scope,
        typer: ExpressionTyper,
        context: ModuleContext,
        current_function: Optional[FunctionSignature],
    ) -> None:
        if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._check_function(statement, scope, context, class_name=None)
        elif isinstance(statement, ast.ClassDef):
            self._check_class(statement, scope, context)
        elif isinstance(statement, ast.AnnAssign):
            self._check_ann_assign(statement, scope, typer)
        elif isinstance(statement, ast.Assign):
            self._check_assign(statement, scope, typer)
        elif isinstance(statement, ast.AugAssign):
            self._check_aug_assign(statement, scope, typer)
        elif isinstance(statement, ast.Return):
            self._check_return(statement, scope, typer, current_function)
        elif isinstance(statement, ast.For):
            element = typer.element_type(typer.infer(statement.iter, scope))
            typer.bind_target(statement.target, element, scope)
            self._check_block(statement.body, scope, typer, context, current_function)
            self._check_block(statement.orelse, scope, typer, context, current_function)
        elif isinstance(statement, ast.While):
            typer.infer(statement.test, scope)
            self._check_block(statement.body, scope, typer, context, current_function)
            self._check_block(statement.orelse, scope, typer, context, current_function)
        elif isinstance(statement, ast.If):
            typer.infer(statement.test, scope)
            self._check_if(statement, scope, typer, context, current_function)
        elif isinstance(statement, ast.With):
            for item in statement.items:
                context_type = typer.infer(item.context_expr, scope)
                if item.optional_vars is not None:
                    typer.bind_target(item.optional_vars, context_type, scope)
            self._check_block(statement.body, scope, typer, context, current_function)
        elif isinstance(statement, ast.Try):
            self._check_block(statement.body, scope, typer, context, current_function)
            for handler in statement.handlers:
                self._check_block(handler.body, scope, typer, context, current_function)
            self._check_block(statement.orelse, scope, typer, context, current_function)
            self._check_block(statement.finalbody, scope, typer, context, current_function)
        elif isinstance(statement, ast.Expr):
            typer.infer(statement.value, scope)
        elif isinstance(statement, (ast.Assert, ast.Raise, ast.Delete)):
            for value in ast.iter_child_nodes(statement):
                if isinstance(value, ast.expr):
                    typer.infer(value, scope)
        # Imports, pass, break, continue, global, nonlocal: nothing to check.

    def _check_if(
        self,
        statement: ast.If,
        scope: Scope,
        typer: ExpressionTyper,
        context: ModuleContext,
        current_function: Optional[FunctionSignature],
    ) -> None:
        """Check an ``if`` statement with basic ``None`` narrowing.

        Two common mypy-supported idioms are modelled:

        * ``if x is None: <body that returns/raises>`` — after the statement,
          ``x`` is narrowed to its non-``None`` type;
        * ``if x is not None: <body>`` — inside the body, ``x`` is narrowed.
        """
        narrowing = self._none_narrowing(statement.test, scope)
        if narrowing is not None:
            name, narrowed = narrowing
            is_none_test = self._is_none_comparison(statement.test, negated=False)
            original = scope.lookup(name)
            if is_none_test:
                # Body runs with x == None; keep the original binding there.
                self._check_block(statement.body, scope, typer, context, current_function)
                self._check_block(statement.orelse, scope, typer, context, current_function)
                if self._block_terminates(statement.body) and original is not None:
                    scope.bind(name, narrowed, declared=scope.is_declared(name))
                return
            # `if x is not None:` — narrow inside the body only.
            scope.bind(name, narrowed, declared=scope.is_declared(name))
            self._check_block(statement.body, scope, typer, context, current_function)
            if original is not None:
                scope.bind(name, original, declared=scope.is_declared(name))
            self._check_block(statement.orelse, scope, typer, context, current_function)
            return
        self._check_block(statement.body, scope, typer, context, current_function)
        self._check_block(statement.orelse, scope, typer, context, current_function)

    @staticmethod
    def _is_none_comparison(test: ast.expr, negated: bool) -> bool:
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return False
        comparator = test.comparators[0]
        is_none = isinstance(comparator, ast.Constant) and comparator.value is None
        if not (is_none and isinstance(test.left, ast.Name)):
            return False
        return isinstance(test.ops[0], ast.IsNot if negated else ast.Is)

    def _none_narrowing(self, test: ast.expr, scope: Scope) -> Optional[tuple[str, TypeExpr]]:
        """If ``test`` compares a name against ``None``, return its narrowed type."""
        if not isinstance(test, ast.Compare) or not isinstance(test.left, ast.Name):
            return None
        if not (self._is_none_comparison(test, negated=False) or self._is_none_comparison(test, negated=True)):
            return None
        name = test.left.id
        bound = scope.lookup(name)
        if bound is None:
            return None
        bound = canonicalise(bound)
        if bound.is_optional:
            narrowed = bound.args[0] if bound.args else ANY
            return name, narrowed
        if bound.is_union:
            remaining = tuple(member for member in bound.args if not member.is_none)
            if len(remaining) == 1:
                return name, remaining[0]
            if remaining:
                return name, TypeExpr("Union", remaining)
        return None

    @staticmethod
    def _block_terminates(body: list[ast.stmt]) -> bool:
        return bool(body) and isinstance(body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))

    def _check_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        scope: Scope,
        context: ModuleContext,
        class_name: Optional[str],
    ) -> None:
        self._functions += 1
        signature = (
            context.classes[class_name].methods.get(node.name)
            if class_name is not None and class_name in context.classes
            else context.functions.get(node.name)
        )
        if signature is None:
            signature = self._signature_from_node(node, is_method=class_name is not None)
        function_scope = scope.child(node.name)
        for index, (parameter_name, parameter_type) in enumerate(signature.parameters):
            bound_type = parameter_type
            if index == 0 and class_name is not None and parameter_name in ("self", "cls") and parameter_type.is_any:
                bound_type = TypeExpr(class_name)
            function_scope.bind(parameter_name, bound_type, declared=not parameter_type.is_any)
        if node.args.vararg is not None:
            function_scope.bind(node.args.vararg.arg, TypeExpr("Tuple"))
        if node.args.kwarg is not None:
            function_scope.bind(node.args.kwarg.arg, TypeExpr("Dict"))
        # Check annotated defaults against parameter annotations.
        typer = ExpressionTyper(context, self.lattice, self._errors.append, strict=self.strict)
        defaults = node.args.defaults
        if defaults:
            offset = len(signature.parameters) - len(defaults)
            for position, default in enumerate(defaults):
                default_type = typer.infer(default, scope)
                expected = signature.parameter_type(offset + position)
                if default_type.is_none and not expected.is_any:
                    # A None default with a non-optional annotation is accepted by
                    # both mypy (implicit Optional off by default nowadays) only if
                    # Optional; we flag it only in strict mode.
                    if self.strict and not is_assignable(NONE, expected, self.lattice, self.strict):
                        self._report(
                            ErrorCode.ARG_TYPE,
                            f'default "None" incompatible with parameter "{signature.parameters[offset + position][0]}" '
                            f'of type "{expected}"',
                            node.lineno,
                            function_scope.name,
                        )
                elif not is_assignable(default_type, expected, self.lattice, self.strict):
                    self._report(
                        ErrorCode.ARG_TYPE,
                        f'default value of type "{default_type}" incompatible with "{expected}"',
                        node.lineno,
                        function_scope.name,
                    )
        self._check_block(node.body, function_scope, typer, context, signature)

    def _check_class(self, node: ast.ClassDef, scope: Scope, context: ModuleContext) -> None:
        for member in node.body:
            if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_function(member, scope, context, class_name=node.name)
            elif isinstance(member, ast.AnnAssign):
                typer = ExpressionTyper(context, self.lattice, self._errors.append, strict=self.strict)
                self._check_ann_assign(member, scope, typer)

    def _check_ann_assign(self, statement: ast.AnnAssign, scope: Scope, typer: ExpressionTyper) -> None:
        annotation = self._parse_annotation(statement.annotation, statement.lineno, scope.name)
        if isinstance(statement.target, ast.Name):
            scope.bind(statement.target.id, annotation, declared=True)
        if statement.value is None:
            return
        value_type = typer.infer(statement.value, scope)
        if not is_assignable(value_type, annotation, self.lattice, self.strict):
            self._report(
                ErrorCode.ASSIGNMENT,
                f'incompatible types in assignment (expression has type "{value_type}", '
                f'variable has type "{annotation}")',
                statement.lineno,
                scope.name,
            )

    def _check_assign(self, statement: ast.Assign, scope: Scope, typer: ExpressionTyper) -> None:
        value_type = typer.infer(statement.value, scope)
        for target in statement.targets:
            if isinstance(target, ast.Name):
                existing = scope.lookup(target.id)
                if existing is not None and scope.is_declared(target.id):
                    if not is_assignable(value_type, existing, self.lattice, self.strict):
                        self._report(
                            ErrorCode.ASSIGNMENT,
                            f'incompatible types in assignment (expression has type "{value_type}", '
                            f'variable has type "{existing}")',
                            statement.lineno,
                            scope.name,
                        )
                    continue  # keep the declared type
                if (
                    self.strict
                    and existing is not None
                    and not existing.is_any
                    and not value_type.is_any
                    and not is_assignable(value_type, existing, self.lattice, self.strict)
                    and not is_assignable(existing, value_type, self.lattice, self.strict)
                ):
                    self._report(
                        ErrorCode.REDEFINITION,
                        f'variable "{target.id}" changes type from "{existing}" to "{value_type}"',
                        statement.lineno,
                        scope.name,
                    )
                typer.bind_target(target, value_type, scope)
            elif isinstance(target, ast.Attribute) and isinstance(target.value, ast.Name) and target.value.id == "self":
                owner_type = scope.lookup(target.value.id)
                if owner_type is None:
                    continue
                class_info = typer.context.classes.get(owner_type.name)
                if class_info is None:
                    continue
                declared = class_info.attributes.get(target.attr)
                if declared is not None and not declared.is_any:
                    if not is_assignable(value_type, declared, self.lattice, self.strict):
                        self._report(
                            ErrorCode.ASSIGNMENT,
                            f'incompatible types in assignment to "self.{target.attr}" '
                            f'(expression has type "{value_type}", attribute has type "{declared}")',
                            statement.lineno,
                            scope.name,
                        )
            else:
                typer.bind_target(target, value_type, scope)

    def _check_aug_assign(self, statement: ast.AugAssign, scope: Scope, typer: ExpressionTyper) -> None:
        value_type = typer.infer(statement.value, scope)
        if isinstance(statement.target, ast.Name):
            target_type = scope.lookup(statement.target.id) or ANY
            result = typer._binop_result(
                canonicalise(target_type), canonicalise(value_type), type(statement.op).__name__, statement.lineno, scope
            )
            if scope.is_declared(statement.target.id) and not is_assignable(result, target_type, self.lattice, self.strict):
                self._report(
                    ErrorCode.ASSIGNMENT,
                    f'result of augmented assignment has type "{result}", variable has type "{target_type}"',
                    statement.lineno,
                    scope.name,
                )

    def _check_return(
        self,
        statement: ast.Return,
        scope: Scope,
        typer: ExpressionTyper,
        current_function: Optional[FunctionSignature],
    ) -> None:
        value_type = typer.infer(statement.value, scope) if statement.value is not None else NONE
        if current_function is None:
            return
        declared = current_function.returns
        if declared.is_any:
            return
        if statement.value is None and declared.is_none:
            return
        if not is_assignable(value_type, declared, self.lattice, self.strict):
            self._report(
                ErrorCode.RETURN_VALUE,
                f'incompatible return value type (got "{value_type}", expected "{declared}")',
                statement.lineno,
                scope.name,
            )


def check_source(source: str, mode: CheckerMode = CheckerMode.STRICT) -> CheckResult:
    """Convenience wrapper: check one source string in the given mode."""
    return OptionalTypeChecker(mode=mode).check_source(source)
