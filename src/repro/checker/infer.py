"""Expression-level type inference for the optional type checker.

Given a :class:`~repro.checker.env.ModuleContext` and a local
:class:`~repro.checker.env.Scope`, :class:`ExpressionTyper` computes the type
of an expression on a best-effort basis; whatever cannot be determined is
``Any``, which is exactly how optional type checkers treat partial contexts.
"""

from __future__ import annotations

import ast
from typing import Callable, Optional

from repro.checker.env import (
    BUILTIN_METHODS,
    BUILTIN_SIGNATURES,
    ClassInfo,
    FunctionSignature,
    ModuleContext,
    Scope,
)
from repro.checker.errors import ErrorCode, TypeCheckError
from repro.types.expr import ANY, NONE, TypeExpr
from repro.types.lattice import TypeLattice
from repro.types.normalize import canonicalise

_NUMERIC = {"bool", "int", "float", "complex"}


def is_assignable(value: TypeExpr, target: TypeExpr, lattice: TypeLattice, strict: bool = True) -> bool:
    """Whether a value of type ``value`` may be bound to a slot of type ``target``.

    ``Any`` is compatible in both directions (as in mypy and pytype).  In the
    lenient mode the check additionally tolerates numeric narrowing
    (``float`` into an ``int`` slot), mirroring pytype's permissiveness.
    """
    value = canonicalise(value)
    target = canonicalise(target)
    if value.is_any or target.is_any:
        return True
    if target.name == "object" and not target.args:
        return True
    if value == target:
        return True
    if target.is_optional:
        if value.is_none:
            return True
        inner = target.args[0] if target.args else ANY
        return is_assignable(value, inner, lattice, strict)
    if value.is_optional and not strict:
        inner = value.args[0] if value.args else ANY
        return is_assignable(inner, target, lattice, strict)
    if target.is_union:
        return any(is_assignable(value, member, lattice, strict) for member in target.args)
    if value.is_union:
        return all(is_assignable(member, target, lattice, strict) for member in value.args)
    # Bare containers are `C[Any, ...]`: compare bases only when either side
    # has no parameters.
    if (not value.args or not target.args) and (value.args or target.args):
        return lattice.is_nominal_subtype(value.name, target.name)
    if lattice.is_subtype(value, target):
        return True
    if not strict and value.name in _NUMERIC and target.name in _NUMERIC:
        return True
    return False


def join_types(types: list[TypeExpr], lattice: TypeLattice) -> TypeExpr:
    """Least-effort join of several types (used for list literals, returns)."""
    concrete = [canonicalise(t) for t in types if not t.is_any]
    if not concrete:
        return ANY
    unique = sorted(set(concrete), key=str)
    if len(unique) == 1:
        return unique[0]
    # Collapse onto a common supertype when one of the members already is one.
    for candidate in unique:
        if all(lattice.is_subtype(other, candidate) for other in unique):
            return candidate
    non_none = [t for t in unique if not t.is_none]
    if len(non_none) == 1 and len(unique) == 2:
        return TypeExpr("Optional", (non_none[0],))
    return TypeExpr("Union", tuple(unique))


class ExpressionTyper:
    """Infers expression types and reports expression-level diagnostics."""

    def __init__(
        self,
        context: ModuleContext,
        lattice: TypeLattice,
        report: Callable[[TypeCheckError], None],
        strict: bool = True,
    ) -> None:
        self.context = context
        self.lattice = lattice
        self.report = report
        self.strict = strict

    # -- entry point ----------------------------------------------------------------

    def infer(self, node: Optional[ast.expr], scope: Scope) -> TypeExpr:
        if node is None:
            return NONE
        method = getattr(self, f"_infer_{type(node).__name__.lower()}", None)
        if method is None:
            return ANY
        return method(node, scope)

    # -- literals --------------------------------------------------------------------

    def _infer_constant(self, node: ast.Constant, scope: Scope) -> TypeExpr:
        value = node.value
        if value is None:
            return NONE
        if isinstance(value, bool):
            return TypeExpr("bool")
        if isinstance(value, int):
            return TypeExpr("int")
        if isinstance(value, float):
            return TypeExpr("float")
        if isinstance(value, complex):
            return TypeExpr("complex")
        if isinstance(value, str):
            return TypeExpr("str")
        if isinstance(value, bytes):
            return TypeExpr("bytes")
        if value is Ellipsis:
            return ANY
        return ANY

    def _infer_joinedstr(self, node: ast.JoinedStr, scope: Scope) -> TypeExpr:
        return TypeExpr("str")

    def _infer_formattedvalue(self, node: ast.FormattedValue, scope: Scope) -> TypeExpr:
        return TypeExpr("str")

    def _infer_list(self, node: ast.List, scope: Scope) -> TypeExpr:
        element = join_types([self.infer(el, scope) for el in node.elts], self.lattice)
        return TypeExpr("List", (element,)) if not element.is_any else TypeExpr("List")

    def _infer_set(self, node: ast.Set, scope: Scope) -> TypeExpr:
        element = join_types([self.infer(el, scope) for el in node.elts], self.lattice)
        return TypeExpr("Set", (element,)) if not element.is_any else TypeExpr("Set")

    def _infer_tuple(self, node: ast.Tuple, scope: Scope) -> TypeExpr:
        elements = tuple(self.infer(el, scope) for el in node.elts)
        if elements and all(not el.is_any for el in elements):
            return TypeExpr("Tuple", elements)
        return TypeExpr("Tuple")

    def _infer_dict(self, node: ast.Dict, scope: Scope) -> TypeExpr:
        keys = [self.infer(k, scope) for k in node.keys if k is not None]
        values = [self.infer(v, scope) for v in node.values]
        key_type = join_types(keys, self.lattice)
        value_type = join_types(values, self.lattice)
        if key_type.is_any and value_type.is_any:
            return TypeExpr("Dict")
        return TypeExpr("Dict", (key_type, value_type))

    # -- names and attributes ------------------------------------------------------------

    def _infer_name(self, node: ast.Name, scope: Scope) -> TypeExpr:
        bound = scope.lookup(node.id)
        if bound is not None:
            return bound
        if node.id in self.context.classes:
            return TypeExpr("Type", (TypeExpr(node.id),))
        if node.id in self.context.functions or node.id in BUILTIN_SIGNATURES:
            return TypeExpr("Callable")
        return ANY

    def _infer_attribute(self, node: ast.Attribute, scope: Scope) -> TypeExpr:
        owner = self.infer(node.value, scope)
        if owner.is_any:
            return ANY
        owner = canonicalise(owner)
        if owner.is_optional:
            owner = owner.args[0] if owner.args else ANY
        class_info = self.context.classes.get(owner.name)
        if class_info is not None:
            found = class_info.lookup_attribute(node.attr, self.context.classes)
            if found is not None:
                return found
            if self.strict:
                self.report(
                    TypeCheckError(
                        ErrorCode.ATTR_DEFINED,
                        f'"{owner.name}" has no attribute "{node.attr}"',
                        getattr(node, "lineno", -1),
                        scope.name,
                    )
                )
            return ANY
        builtin_methods = BUILTIN_METHODS.get(owner.name)
        if builtin_methods is not None:
            if node.attr in builtin_methods:
                return builtin_methods[node.attr]
            if self.strict:
                self.report(
                    TypeCheckError(
                        ErrorCode.ATTR_DEFINED,
                        f'"{owner.name}" has no attribute "{node.attr}"',
                        getattr(node, "lineno", -1),
                        scope.name,
                    )
                )
        return ANY

    # -- operators -----------------------------------------------------------------------

    def _infer_binop(self, node: ast.BinOp, scope: Scope) -> TypeExpr:
        left = canonicalise(self.infer(node.left, scope))
        right = canonicalise(self.infer(node.right, scope))
        op = type(node.op).__name__
        return self._binop_result(left, right, op, getattr(node, "lineno", -1), scope)

    def _binop_result(self, left: TypeExpr, right: TypeExpr, op: str, lineno: int, scope: Scope) -> TypeExpr:
        if left.is_any or right.is_any:
            return ANY
        if left.name in _NUMERIC and right.name in _NUMERIC:
            if op == "Div":
                return TypeExpr("float")
            order = ["bool", "int", "float", "complex"]
            widest = max(left.name, right.name, key=order.index)
            result = "int" if widest == "bool" else widest
            return TypeExpr(result)
        if left.name == "str" and right.name == "str" and op == "Add":
            return TypeExpr("str")
        if left.name == "str" and op == "Mod":
            return TypeExpr("str")
        if left.name == "str" and right.name in _NUMERIC and op == "Mult":
            return TypeExpr("str")
        if left.name in _NUMERIC and right.name == "str" and op == "Mult":
            return TypeExpr("str")
        if left.name == "List" and right.name == "List" and op == "Add":
            return join_types([left, right], self.lattice)
        if left.name == "List" and right.name in _NUMERIC and op == "Mult":
            return left
        if left.name == "bytes" and right.name == "bytes" and op == "Add":
            return TypeExpr("bytes")
        if left.name in ("Set", "FrozenSet") and right.name in ("Set", "FrozenSet"):
            return left
        # Unknown user types: do not guess, do not error.
        if left.name in self.context.classes or right.name in self.context.classes:
            return ANY
        self.report(
            TypeCheckError(
                ErrorCode.OPERATOR,
                f'unsupported operand types for {op}: "{left}" and "{right}"',
                lineno,
                scope.name,
            )
        )
        return ANY

    def _infer_unaryop(self, node: ast.UnaryOp, scope: Scope) -> TypeExpr:
        operand = self.infer(node.operand, scope)
        if isinstance(node.op, ast.Not):
            return TypeExpr("bool")
        return operand

    def _infer_boolop(self, node: ast.BoolOp, scope: Scope) -> TypeExpr:
        return join_types([self.infer(v, scope) for v in node.values], self.lattice)

    def _infer_compare(self, node: ast.Compare, scope: Scope) -> TypeExpr:
        self.infer(node.left, scope)
        for comparator in node.comparators:
            self.infer(comparator, scope)
        return TypeExpr("bool")

    def _infer_ifexp(self, node: ast.IfExp, scope: Scope) -> TypeExpr:
        return join_types([self.infer(node.body, scope), self.infer(node.orelse, scope)], self.lattice)

    # -- calls ------------------------------------------------------------------------------

    def _infer_call(self, node: ast.Call, scope: Scope) -> TypeExpr:
        argument_types = [self.infer(arg, scope) for arg in node.args]
        keyword_types = {kw.arg: self.infer(kw.value, scope) for kw in node.keywords if kw.arg}

        signature, return_type = self._resolve_callee(node.func, scope)
        if signature is not None:
            self._check_call(signature, node, argument_types, keyword_types, scope)
            return signature.returns
        return return_type

    def _resolve_callee(self, func: ast.expr, scope: Scope) -> tuple[Optional[FunctionSignature], TypeExpr]:
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.context.classes:
                class_info = self.context.classes[name]
                init = class_info.lookup_method("__init__", self.context.classes)
                if init is not None:
                    constructor = FunctionSignature(
                        name=name,
                        parameters=init.parameters[1:] if init.parameters else [],
                        returns=TypeExpr(name),
                        has_varargs=init.has_varargs,
                        has_kwargs=init.has_kwargs,
                    )
                    return constructor, TypeExpr(name)
                return None, TypeExpr(name)
            signature = self.context.signature_of(name)
            if signature is not None:
                return signature, signature.returns
            return None, ANY
        if isinstance(func, ast.Attribute):
            owner = canonicalise(self.infer(func.value, scope))
            if owner.is_optional:
                owner = owner.args[0] if owner.args else ANY
            class_info = self.context.classes.get(owner.name)
            if class_info is not None:
                method = class_info.lookup_method(func.attr, self.context.classes)
                if method is not None:
                    bound = FunctionSignature(
                        name=f"{owner.name}.{func.attr}",
                        parameters=method.parameters[1:] if method.is_method else method.parameters,
                        returns=method.returns,
                        has_varargs=method.has_varargs,
                        has_kwargs=method.has_kwargs,
                    )
                    return bound, method.returns
                self._infer_attribute(func, scope)  # reports attr-defined in strict mode
                return None, ANY
            methods = BUILTIN_METHODS.get(owner.name)
            if methods is not None and func.attr in methods:
                result = methods[func.attr]
                # Element-aware results for parametric containers.
                if owner.name == "Dict" and func.attr == "get" and owner.args:
                    return None, TypeExpr("Optional", (owner.args[-1],))
                if owner.name == "List" and func.attr == "pop" and owner.args:
                    return None, owner.args[0]
                if owner.name == "Dict" and func.attr == "keys" and owner.args:
                    return None, TypeExpr("Iterator", (owner.args[0],))
                if owner.name == "Dict" and func.attr == "values" and owner.args:
                    return None, TypeExpr("Iterator", (owner.args[-1],))
                return None, result
            return None, ANY
        return None, ANY

    def _check_call(
        self,
        signature: FunctionSignature,
        node: ast.Call,
        argument_types: list[TypeExpr],
        keyword_types: dict[str, TypeExpr],
        scope: Scope,
    ) -> None:
        lineno = getattr(node, "lineno", -1)
        if self.strict and not signature.has_varargs and not signature.has_kwargs:
            supplied = len(argument_types) + len(keyword_types)
            required = len(signature.parameters)
            if supplied > required:
                self.report(
                    TypeCheckError(
                        ErrorCode.ARG_COUNT,
                        f'too many arguments for "{signature.name}" ({supplied} > {required})',
                        lineno,
                        scope.name,
                    )
                )
        for index, argument_type in enumerate(argument_types):
            expected = signature.parameter_type(index)
            if not is_assignable(argument_type, expected, self.lattice, self.strict):
                self.report(
                    TypeCheckError(
                        ErrorCode.ARG_TYPE,
                        f'argument {index + 1} to "{signature.name}" has incompatible type '
                        f'"{argument_type}"; expected "{expected}"',
                        lineno,
                        scope.name,
                    )
                )
        for keyword, argument_type in keyword_types.items():
            expected = signature.parameter_type_by_name(keyword)
            if expected is None:
                continue
            if not is_assignable(argument_type, expected, self.lattice, self.strict):
                self.report(
                    TypeCheckError(
                        ErrorCode.ARG_TYPE,
                        f'argument "{keyword}" to "{signature.name}" has incompatible type '
                        f'"{argument_type}"; expected "{expected}"',
                        lineno,
                        scope.name,
                    )
                )

    # -- subscripts and comprehensions -----------------------------------------------------

    def _infer_subscript(self, node: ast.Subscript, scope: Scope) -> TypeExpr:
        owner = canonicalise(self.infer(node.value, scope))
        index_type = self.infer(node.slice, scope)
        if isinstance(node.slice, ast.Slice):
            return owner
        if owner.name in ("List", "Sequence", "Tuple") and owner.args:
            if owner.name == "Tuple" and len(owner.args) > 1:
                return join_types(list(owner.args), self.lattice)
            if self.strict and not index_type.is_any and index_type.name not in ("int", "bool"):
                self.report(
                    TypeCheckError(
                        ErrorCode.INDEX,
                        f'invalid index type "{index_type}" for "{owner}"; expected "int"',
                        getattr(node, "lineno", -1),
                        scope.name,
                    )
                )
            return owner.args[0]
        if owner.name in ("Dict", "Mapping") and len(owner.args) == 2:
            key_type, value_type = owner.args
            if self.strict and not is_assignable(index_type, key_type, self.lattice, self.strict):
                self.report(
                    TypeCheckError(
                        ErrorCode.INDEX,
                        f'invalid index type "{index_type}" for "{owner}"; expected "{key_type}"',
                        getattr(node, "lineno", -1),
                        scope.name,
                    )
                )
            return value_type
        if owner.name == "str":
            return TypeExpr("str")
        if owner.name == "bytes":
            return TypeExpr("int")
        return ANY

    def _infer_listcomp(self, node: ast.ListComp, scope: Scope) -> TypeExpr:
        comp_scope = self._comprehension_scope(node.generators, scope)
        element = self.infer(node.elt, comp_scope)
        return TypeExpr("List", (element,)) if not element.is_any else TypeExpr("List")

    def _infer_setcomp(self, node: ast.SetComp, scope: Scope) -> TypeExpr:
        comp_scope = self._comprehension_scope(node.generators, scope)
        element = self.infer(node.elt, comp_scope)
        return TypeExpr("Set", (element,)) if not element.is_any else TypeExpr("Set")

    def _infer_generatorexp(self, node: ast.GeneratorExp, scope: Scope) -> TypeExpr:
        comp_scope = self._comprehension_scope(node.generators, scope)
        element = self.infer(node.elt, comp_scope)
        return TypeExpr("Iterator", (element,)) if not element.is_any else TypeExpr("Iterator")

    def _infer_dictcomp(self, node: ast.DictComp, scope: Scope) -> TypeExpr:
        comp_scope = self._comprehension_scope(node.generators, scope)
        key = self.infer(node.key, comp_scope)
        value = self.infer(node.value, comp_scope)
        if key.is_any and value.is_any:
            return TypeExpr("Dict")
        return TypeExpr("Dict", (key, value))

    def _comprehension_scope(self, generators: list[ast.comprehension], scope: Scope) -> Scope:
        comp_scope = scope.child("<comp>")
        for generator in generators:
            element_type = self.element_type(self.infer(generator.iter, comp_scope))
            self.bind_target(generator.target, element_type, comp_scope)
        return comp_scope

    def _infer_lambda(self, node: ast.Lambda, scope: Scope) -> TypeExpr:
        return TypeExpr("Callable")

    def _infer_starred(self, node: ast.Starred, scope: Scope) -> TypeExpr:
        return self.infer(node.value, scope)

    def _infer_await(self, node: ast.Await, scope: Scope) -> TypeExpr:
        return self.infer(node.value, scope)

    # -- helpers shared with the statement checker ---------------------------------------------

    def element_type(self, container: TypeExpr) -> TypeExpr:
        """The type produced by iterating a value of type ``container``."""
        container = canonicalise(container)
        if container.name in ("List", "Set", "FrozenSet", "Sequence", "Iterable", "Iterator", "Collection") and container.args:
            return container.args[0]
        if container.name == "Tuple" and container.args:
            return join_types(list(container.args), self.lattice)
        if container.name in ("Dict", "Mapping") and container.args:
            return container.args[0]
        if container.name == "str":
            return TypeExpr("str")
        if container.name == "bytes":
            return TypeExpr("int")
        if container.name == "range":
            return TypeExpr("int")
        return ANY

    def bind_target(self, target: ast.expr, value_type: TypeExpr, scope: Scope) -> None:
        """Bind an assignment/for-loop target to ``value_type`` in ``scope``."""
        if isinstance(target, ast.Name):
            scope.bind(target.id, value_type)
        elif isinstance(target, (ast.Tuple, ast.List)):
            element = self.element_type(value_type)
            inner = value_type.args if value_type.name == "Tuple" and len(value_type.args) == len(target.elts) else None
            for position, element_target in enumerate(target.elts):
                self.bind_target(element_target, inner[position] if inner else element, scope)
        elif isinstance(target, ast.Starred):
            self.bind_target(target.value, TypeExpr("List", (self.element_type(value_type),)), scope)
