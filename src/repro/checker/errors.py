"""Error records produced by the optional type checker.

The Sec. 6.3 experiment needs to distinguish *type-related* errors from other
diagnostics (the paper combs through mypy's and pytype's error classes to do
this).  Our checker only emits type-related diagnostics, but each carries an
error code so experiments can filter or group them the same way.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class ErrorCode(str, Enum):
    """Categories of diagnostics, modelled on mypy's error codes."""

    ASSIGNMENT = "assignment"
    ARG_TYPE = "arg-type"
    ARG_COUNT = "call-arg"
    RETURN_VALUE = "return-value"
    OPERATOR = "operator"
    ATTR_DEFINED = "attr-defined"
    INDEX = "index"
    REDEFINITION = "redefinition"
    ANNOTATION_UNPARSABLE = "valid-type"
    CONDITION = "condition"

    @property
    def is_type_related(self) -> bool:
        """All of our codes concern types; kept for interface parity."""
        return True


@dataclass(frozen=True)
class TypeCheckError:
    """A single diagnostic: where it happened, what rule fired, and why."""

    code: ErrorCode
    message: str
    lineno: int
    scope: str = "module"

    def __str__(self) -> str:
        return f"{self.lineno}: error: {self.message} [{self.code.value}]"


@dataclass
class CheckResult:
    """The outcome of type checking one file."""

    errors: list[TypeCheckError]
    checked_functions: int = 0
    checked_statements: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def errors_of(self, code: ErrorCode) -> list[TypeCheckError]:
        return [error for error in self.errors if error.code == code]

    def summary(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for error in self.errors:
            counts[error.code.value] = counts.get(error.code.value, 0) + 1
        return counts
