"""Type environments and builtin signatures for the optional type checker."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.types.expr import ANY, TypeExpr
from repro.types.parser import parse_type


def _t(text: str) -> TypeExpr:
    return parse_type(text)


@dataclass
class FunctionSignature:
    """An (optionally partial) function signature.

    Unannotated parameters and returns are ``Any`` — an optional type checker
    must reason over partial contexts (Sec. 1 of the paper), and ``Any``
    is how missing information is represented.
    """

    name: str
    parameters: list[tuple[str, TypeExpr]] = field(default_factory=list)
    returns: TypeExpr = ANY
    has_varargs: bool = False
    has_kwargs: bool = False
    is_method: bool = False

    @property
    def arity(self) -> int:
        return len(self.parameters)

    def parameter_type(self, index: int) -> TypeExpr:
        if 0 <= index < len(self.parameters):
            return self.parameters[index][1]
        return ANY

    def parameter_type_by_name(self, name: str) -> Optional[TypeExpr]:
        for parameter_name, parameter_type in self.parameters:
            if parameter_name == name:
                return parameter_type
        return None


@dataclass
class ClassInfo:
    """Attributes, methods and base classes of a user-defined class."""

    name: str
    bases: list[str] = field(default_factory=list)
    attributes: dict[str, TypeExpr] = field(default_factory=dict)
    methods: dict[str, FunctionSignature] = field(default_factory=dict)

    def lookup_attribute(self, name: str, classes: dict[str, "ClassInfo"]) -> Optional[TypeExpr]:
        if name in self.attributes:
            return self.attributes[name]
        if name in self.methods:
            return TypeExpr("Callable")
        for base in self.bases:
            base_info = classes.get(base)
            if base_info is not None:
                found = base_info.lookup_attribute(name, classes)
                if found is not None:
                    return found
        return None

    def lookup_method(self, name: str, classes: dict[str, "ClassInfo"]) -> Optional[FunctionSignature]:
        if name in self.methods:
            return self.methods[name]
        for base in self.bases:
            base_info = classes.get(base)
            if base_info is not None:
                found = base_info.lookup_method(name, classes)
                if found is not None:
                    return found
        return None


#: Signatures of the builtins the corpus uses.  Returns only — argument types
#: of builtins are deliberately permissive, mirroring typeshed's use of
#: protocols that our small lattice does not model.
BUILTIN_SIGNATURES: dict[str, FunctionSignature] = {
    "len": FunctionSignature("len", [("obj", ANY)], _t("int")),
    "abs": FunctionSignature("abs", [("x", ANY)], _t("float")),
    "str": FunctionSignature("str", [("obj", ANY)], _t("str")),
    "repr": FunctionSignature("repr", [("obj", ANY)], _t("str")),
    "int": FunctionSignature("int", [("x", ANY)], _t("int")),
    "float": FunctionSignature("float", [("x", ANY)], _t("float")),
    "bool": FunctionSignature("bool", [("x", ANY)], _t("bool")),
    "bytes": FunctionSignature("bytes", [("x", ANY)], _t("bytes")),
    "list": FunctionSignature("list", [("it", ANY)], _t("List")),
    "dict": FunctionSignature("dict", [("it", ANY)], _t("Dict")),
    "set": FunctionSignature("set", [("it", ANY)], _t("Set")),
    "tuple": FunctionSignature("tuple", [("it", ANY)], _t("Tuple")),
    "sorted": FunctionSignature("sorted", [("it", ANY)], _t("List")),
    "reversed": FunctionSignature("reversed", [("it", ANY)], _t("Iterator")),
    "enumerate": FunctionSignature("enumerate", [("it", ANY)], _t("Iterator")),
    "zip": FunctionSignature("zip", [("a", ANY), ("b", ANY)], _t("Iterator"), has_varargs=True),
    "range": FunctionSignature("range", [("n", _t("int"))], _t("Iterator"), has_varargs=True),
    "sum": FunctionSignature("sum", [("it", ANY)], _t("float")),
    "min": FunctionSignature("min", [("it", ANY)], ANY, has_varargs=True),
    "max": FunctionSignature("max", [("it", ANY)], ANY, has_varargs=True),
    "round": FunctionSignature("round", [("x", _t("float"))], _t("int"), has_varargs=True),
    "print": FunctionSignature("print", [], _t("None"), has_varargs=True),
    "isinstance": FunctionSignature("isinstance", [("obj", ANY), ("cls", ANY)], _t("bool")),
    "hasattr": FunctionSignature("hasattr", [("obj", ANY), ("name", _t("str"))], _t("bool")),
    "getattr": FunctionSignature("getattr", [("obj", ANY), ("name", _t("str"))], ANY, has_varargs=True),
    "id": FunctionSignature("id", [("obj", ANY)], _t("int")),
    "hash": FunctionSignature("hash", [("obj", ANY)], _t("int")),
    "iter": FunctionSignature("iter", [("obj", ANY)], _t("Iterator")),
    "next": FunctionSignature("next", [("it", ANY)], ANY, has_varargs=True),
    "open": FunctionSignature("open", [("path", _t("str"))], ANY, has_varargs=True),
    "input": FunctionSignature("input", [("prompt", _t("str"))], _t("str")),
    "divmod": FunctionSignature("divmod", [("a", _t("float")), ("b", _t("float"))], _t("Tuple[int, int]")),
}

#: Methods of builtin types that the expression typer understands.
BUILTIN_METHODS: dict[str, dict[str, TypeExpr]] = {
    "str": {
        "upper": _t("str"), "lower": _t("str"), "strip": _t("str"), "lstrip": _t("str"),
        "rstrip": _t("str"), "title": _t("str"), "capitalize": _t("str"), "replace": _t("str"),
        "split": _t("List[str]"), "rsplit": _t("List[str]"), "splitlines": _t("List[str]"),
        "join": _t("str"), "format": _t("str"), "encode": _t("bytes"), "startswith": _t("bool"),
        "endswith": _t("bool"), "find": _t("int"), "index": _t("int"), "count": _t("int"),
        "isdigit": _t("bool"), "isalpha": _t("bool"), "zfill": _t("str"),
    },
    "bytes": {"decode": _t("str"), "hex": _t("str"), "split": _t("List[bytes]")},
    "List": {
        "append": _t("None"), "extend": _t("None"), "insert": _t("None"), "pop": ANY,
        "remove": _t("None"), "clear": _t("None"), "index": _t("int"), "count": _t("int"),
        "sort": _t("None"), "reverse": _t("None"), "copy": _t("List"),
    },
    "Dict": {
        "get": ANY, "keys": _t("Iterator"), "values": _t("Iterator"), "items": _t("Iterator"),
        "pop": ANY, "update": _t("None"), "setdefault": ANY, "clear": _t("None"), "copy": _t("Dict"),
    },
    "Set": {"add": _t("None"), "discard": _t("None"), "remove": _t("None"), "union": _t("Set"),
            "intersection": _t("Set"), "pop": ANY, "clear": _t("None")},
    "int": {"bit_length": _t("int"), "to_bytes": _t("bytes")},
    "float": {"is_integer": _t("bool"), "hex": _t("str")},
}


class Scope:
    """A lexical scope mapping names to types, chained to its parent."""

    def __init__(self, parent: Optional["Scope"] = None, name: str = "module") -> None:
        self.parent = parent
        self.name = name
        self.bindings: dict[str, TypeExpr] = {}
        self.declared: set[str] = set()  # names with explicit annotations

    def lookup(self, name: str) -> Optional[TypeExpr]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None

    def bind(self, name: str, type_expr: TypeExpr, declared: bool = False) -> None:
        self.bindings[name] = type_expr
        if declared:
            self.declared.add(name)

    def is_declared(self, name: str) -> bool:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.bindings:
                return name in scope.declared
            scope = scope.parent
        return False

    def child(self, name: str) -> "Scope":
        return Scope(parent=self, name=f"{self.name}.{name}")


@dataclass
class ModuleContext:
    """Module-level information gathered before checking bodies."""

    functions: dict[str, FunctionSignature] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    globals: Scope = field(default_factory=Scope)

    def signature_of(self, name: str) -> Optional[FunctionSignature]:
        if name in self.functions:
            return self.functions[name]
        return BUILTIN_SIGNATURES.get(name)
