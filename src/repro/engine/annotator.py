"""Batched project annotation: suggestions, disagreements and metrics.

This module implements the engine behind ``repro.cli annotate``.  Where
:meth:`TypilusPipeline.suggest_for_source` answers for one file,
:class:`ProjectAnnotator` answers for a whole project: it gathers every
file's symbols, routes them through the pipeline's batched suggestion path
(one embedding pass over all files, one vectorized kNN prediction, checker
verdicts cached per unique candidate) and assembles a :class:`ProjectReport`
with per-file suggestions, Sec.-7-style disagreement findings and
throughput numbers.

Annotation is also **incremental**: with a ``cache_dir`` configured, every
file's finished suggestion list is persisted under a key derived from the
pipeline's :meth:`~repro.core.pipeline.TypilusPipeline.fingerprint`, the
annotator's settings and the source text.  Re-annotating a project after an
edit re-embeds only the changed files; everything else is served from disk
(``ProjectReport.reused_files`` counts them).  ``jobs`` additionally
parallelises graph extraction for the files that do need work.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.checker.checker import CheckerMode
from repro.core.filter import FilteredSuggestion
from repro.core.pipeline import SymbolSuggestion, TypilusPipeline
from repro.core.predictor import TypePrediction
from repro.corpus.ingest import IngestConfig, atomic_write_text
from repro.graph.nodes import SymbolKind
from repro.utils.timing import Stopwatch

#: Layout version of annotation-cache entries.
ANNOTATION_CACHE_VERSION = 1


@dataclass
class AnnotatorConfig:
    """Knobs of a project annotation run."""

    use_type_checker: bool = True
    checker_mode: CheckerMode = CheckerMode.STRICT
    confidence_threshold: float = 0.0
    include_annotated: bool = True
    #: Minimum confidence for a prediction to count as a disagreement finding.
    disagreement_threshold: float = 0.8
    #: Worker processes for graph extraction (1 = serial, ``None`` = per-core).
    jobs: Optional[int] = 1
    #: Directory for incremental re-annotation state: per-file suggestion
    #: results under ``annotations/`` and the content-addressed graph cache
    #: under ``graphs/``.  ``None`` disables both.
    cache_dir: Optional[Union[str, Path]] = None


@dataclass
class FileReport:
    """Suggestions for one file of the project."""

    filename: str
    suggestions: list[SymbolSuggestion] = field(default_factory=list)

    @property
    def num_symbols(self) -> int:
        return len(self.suggestions)

    @property
    def num_suggested(self) -> int:
        return sum(1 for suggestion in self.suggestions if suggestion.suggested_type is not None)

    def disagreements(self, threshold: float = 0.8) -> list[SymbolSuggestion]:
        """Confident suggestions that contradict the file's own annotations."""
        return [
            suggestion
            for suggestion in self.suggestions
            if suggestion.disagrees_with_existing and suggestion.confidence >= threshold
        ]


@dataclass
class ProjectReport:
    """The outcome of annotating a whole project in one batched pass."""

    files: list[FileReport] = field(default_factory=list)
    skipped_files: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    disagreement_threshold: float = 0.8
    #: Files whose suggestions were served from the incremental cache.
    reused_files: int = 0

    @property
    def num_files(self) -> int:
        return len(self.files)

    @property
    def num_symbols(self) -> int:
        return sum(report.num_symbols for report in self.files)

    @property
    def num_suggested(self) -> int:
        return sum(report.num_suggested for report in self.files)

    @property
    def coverage(self) -> float:
        """Fraction of considered symbols that received a suggestion."""
        return self.num_suggested / self.num_symbols if self.num_symbols else 0.0

    @property
    def symbols_per_second(self) -> float:
        return self.num_symbols / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def disagreements(self) -> list[tuple[str, SymbolSuggestion]]:
        """All (filename, suggestion) pairs contradicting existing annotations."""
        return [
            (report.filename, suggestion)
            for report in self.files
            for suggestion in report.disagreements(self.disagreement_threshold)
        ]

    def summary(self) -> dict[str, object]:
        return {
            "files": self.num_files,
            "skipped_files": len(self.skipped_files),
            "reused_files": self.reused_files,
            "symbols": self.num_symbols,
            "suggested": self.num_suggested,
            "coverage": round(self.coverage, 4),
            "disagreements": len(self.disagreements()),
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "symbols_per_second": round(self.symbols_per_second, 2),
        }


class AnnotationCache:
    """Per-file suggestion results, keyed by (pipeline, settings, source).

    Content-addressed like the graph cache: the key hashes the pipeline
    fingerprint, the annotation settings that change answers and the source
    text, so any of those changing invalidates exactly the affected entries.
    Corrupted or unreadable entries are misses, never errors.
    """

    def __init__(self, directory: Union[str, Path], context_key: str) -> None:
        self.directory = Path(directory)
        self.context_key = context_key
        self.directory.mkdir(parents=True, exist_ok=True)

    def key(self, source: str) -> str:
        material = f"{ANNOTATION_CACHE_VERSION}:{self.context_key}\x00{source}"
        return hashlib.sha256(material.encode("utf-8")).hexdigest()

    def path_for(self, source: str) -> Path:
        return self.directory / f"{self.key(source)}.json"

    def load(self, source: str) -> Optional[list[SymbolSuggestion]]:
        try:
            payload = json.loads(self.path_for(source).read_text(encoding="utf-8"))
            if not isinstance(payload, dict):
                return None
            if payload.get("format") != ANNOTATION_CACHE_VERSION:
                return None
            return [suggestion_from_payload(entry) for entry in payload["suggestions"]]
        except (OSError, json.JSONDecodeError, KeyError, TypeError, ValueError, AttributeError):
            return None

    def store(self, source: str, suggestions: list[SymbolSuggestion]) -> None:
        payload = {
            "format": ANNOTATION_CACHE_VERSION,
            "suggestions": [suggestion_to_payload(suggestion) for suggestion in suggestions],
        }
        atomic_write_text(self.path_for(source), json.dumps(payload, separators=(",", ":")))


class ProjectAnnotator:
    """Annotates whole projects with a trained pipeline, batch-first.

    The annotator never retrains: it consumes any pipeline — freshly fitted
    or restored with :meth:`TypilusPipeline.load` — and serves suggestions
    for arbitrarily many files per call.  With a ``cache_dir`` it is also
    incremental across calls: only files whose content (or model, or
    settings) changed are re-annotated.
    """

    def __init__(self, pipeline: TypilusPipeline, config: Optional[AnnotatorConfig] = None) -> None:
        self.pipeline = pipeline
        self.config = config or AnnotatorConfig()

    def _cache(self) -> Optional[AnnotationCache]:
        if self.config.cache_dir is None:
            return None
        # The fingerprint is recomputed per call (not memoized): mutating the
        # pipeline between calls — e.g. one-shot type-space adaptation — must
        # invalidate the cache, exactly as the fingerprint contract promises.
        config = self.config
        context = ":".join(
            [
                self.pipeline.fingerprint(),
                str(config.use_type_checker),
                config.checker_mode.value,
                repr(config.confidence_threshold),
                str(config.include_annotated),
            ]
        )
        return AnnotationCache(Path(config.cache_dir) / "annotations", context)

    def _ingest_config(self) -> Optional[IngestConfig]:
        jobs = self.config.jobs
        if self.config.cache_dir is None and (jobs is not None and jobs <= 1):
            return None
        graph_cache = Path(self.config.cache_dir) / "graphs" if self.config.cache_dir is not None else None
        return IngestConfig(jobs=jobs, cache_dir=graph_cache)

    def annotate_sources(self, sources: Mapping[str, str]) -> ProjectReport:
        """Annotate an in-memory file set (filename → source) in one pass.

        Cached files are merged back in their original position, so the
        report is identical to a cold run — only faster.
        """
        stopwatch = Stopwatch()
        cache = self._cache()
        with stopwatch.measure("annotate"):
            reused: dict[str, list[SymbolSuggestion]] = {}
            pending: dict[str, str] = {}
            for filename, source in sources.items():
                cached = cache.load(source) if cache is not None else None
                if cached is not None:
                    reused[filename] = cached
                else:
                    pending[filename] = source
            suggestions_by_file = self.pipeline.suggest_for_sources(
                pending,
                use_type_checker=self.config.use_type_checker,
                checker_mode=self.config.checker_mode,
                confidence_threshold=self.config.confidence_threshold,
                include_annotated=self.config.include_annotated,
                skip_unparsable=True,
                ingest=self._ingest_config(),
            )
            if cache is not None:
                for filename, suggestions in suggestions_by_file.items():
                    cache.store(pending[filename], suggestions)
        report = ProjectReport(
            elapsed_seconds=stopwatch.sections.get("annotate", 0.0),
            disagreement_threshold=self.config.disagreement_threshold,
            reused_files=len(reused),
        )
        for filename in sources:
            if filename in reused:
                report.files.append(FileReport(filename=filename, suggestions=reused[filename]))
            elif filename in suggestions_by_file:
                report.files.append(FileReport(filename=filename, suggestions=suggestions_by_file[filename]))
            else:
                report.skipped_files.append(filename)
        return report

    def annotate_directory(self, directory: Union[str, Path], pattern: str = "**/*.py") -> ProjectReport:
        """Annotate every matching file under a directory in one pass."""
        sources, unreadable = discover_sources(directory, pattern)
        report = self.annotate_sources(sources)
        report.skipped_files.extend(unreadable)
        return report


def discover_sources(directory: Union[str, Path], pattern: str = "**/*.py") -> tuple[dict[str, str], list[str]]:
    """Collect a directory's matching files as (relative name → text, unreadable).

    This is the single file-discovery used by both the in-process annotator
    and the serving client, so the two paths see the same project — the
    invariant behind their report parity.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise NotADirectoryError(f"{directory} is not a directory")
    sources: dict[str, str] = {}
    unreadable: list[str] = []
    for path in sorted(directory.glob(pattern)):
        if not path.is_file():
            continue
        try:
            sources[str(path.relative_to(directory))] = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError):
            unreadable.append(str(path.relative_to(directory)))
    return sources, unreadable


# ---------------------------------------------------------------------------
# Suggestion payloads (annotation-cache entries)
# ---------------------------------------------------------------------------


def suggestion_to_payload(suggestion: SymbolSuggestion) -> dict:
    filtered = suggestion.filtered
    return {
        "name": suggestion.name,
        "scope": suggestion.scope,
        "kind": suggestion.kind,
        "existing": suggestion.existing_annotation,
        "candidates": [[type_name, probability] for type_name, probability in suggestion.prediction.candidates],
        "filtered": None
        if filtered is None
        else {
            "scope": filtered.scope,
            "name": filtered.name,
            "kind": filtered.kind.value,
            "accepted_type": filtered.accepted_type,
            "accepted_confidence": filtered.accepted_confidence,
            "rejected": [[type_name, reason] for type_name, reason in filtered.rejected],
        },
    }


def suggestion_from_payload(payload: dict) -> SymbolSuggestion:
    filtered_payload = payload["filtered"]
    filtered = None
    if filtered_payload is not None:
        filtered = FilteredSuggestion(
            scope=filtered_payload["scope"],
            name=filtered_payload["name"],
            kind=SymbolKind(filtered_payload["kind"]),
            accepted_type=filtered_payload["accepted_type"],
            accepted_confidence=float(filtered_payload["accepted_confidence"]),
            rejected=[(type_name, reason) for type_name, reason in filtered_payload["rejected"]],
        )
    return SymbolSuggestion(
        name=payload["name"],
        scope=payload["scope"],
        kind=payload["kind"],
        existing_annotation=payload["existing"],
        prediction=TypePrediction(
            candidates=[(type_name, float(probability)) for type_name, probability in payload["candidates"]]
        ),
        filtered=filtered,
    )


