"""Batched project annotation: suggestions, disagreements and metrics.

This module implements the engine behind ``repro.cli annotate``.  Where
:meth:`TypilusPipeline.suggest_for_source` answers for one file,
:class:`ProjectAnnotator` answers for a whole project: it gathers every
file's symbols, routes them through the pipeline's batched suggestion path
(one embedding pass over all files, one vectorized kNN prediction, checker
verdicts cached per unique candidate) and assembles a :class:`ProjectReport`
with per-file suggestions, Sec.-7-style disagreement findings and
throughput numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.checker.checker import CheckerMode
from repro.core.pipeline import SymbolSuggestion, TypilusPipeline
from repro.utils.timing import Stopwatch


@dataclass
class AnnotatorConfig:
    """Knobs of a project annotation run."""

    use_type_checker: bool = True
    checker_mode: CheckerMode = CheckerMode.STRICT
    confidence_threshold: float = 0.0
    include_annotated: bool = True
    #: Minimum confidence for a prediction to count as a disagreement finding.
    disagreement_threshold: float = 0.8


@dataclass
class FileReport:
    """Suggestions for one file of the project."""

    filename: str
    suggestions: list[SymbolSuggestion] = field(default_factory=list)

    @property
    def num_symbols(self) -> int:
        return len(self.suggestions)

    @property
    def num_suggested(self) -> int:
        return sum(1 for suggestion in self.suggestions if suggestion.suggested_type is not None)

    def disagreements(self, threshold: float = 0.8) -> list[SymbolSuggestion]:
        """Confident suggestions that contradict the file's own annotations."""
        return [
            suggestion
            for suggestion in self.suggestions
            if suggestion.disagrees_with_existing and suggestion.confidence >= threshold
        ]


@dataclass
class ProjectReport:
    """The outcome of annotating a whole project in one batched pass."""

    files: list[FileReport] = field(default_factory=list)
    skipped_files: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    disagreement_threshold: float = 0.8

    @property
    def num_files(self) -> int:
        return len(self.files)

    @property
    def num_symbols(self) -> int:
        return sum(report.num_symbols for report in self.files)

    @property
    def num_suggested(self) -> int:
        return sum(report.num_suggested for report in self.files)

    @property
    def coverage(self) -> float:
        """Fraction of considered symbols that received a suggestion."""
        return self.num_suggested / self.num_symbols if self.num_symbols else 0.0

    @property
    def symbols_per_second(self) -> float:
        return self.num_symbols / self.elapsed_seconds if self.elapsed_seconds > 0 else 0.0

    def disagreements(self) -> list[tuple[str, SymbolSuggestion]]:
        """All (filename, suggestion) pairs contradicting existing annotations."""
        return [
            (report.filename, suggestion)
            for report in self.files
            for suggestion in report.disagreements(self.disagreement_threshold)
        ]

    def summary(self) -> dict[str, object]:
        return {
            "files": self.num_files,
            "skipped_files": len(self.skipped_files),
            "symbols": self.num_symbols,
            "suggested": self.num_suggested,
            "coverage": round(self.coverage, 4),
            "disagreements": len(self.disagreements()),
            "elapsed_seconds": round(self.elapsed_seconds, 4),
            "symbols_per_second": round(self.symbols_per_second, 2),
        }


class ProjectAnnotator:
    """Annotates whole projects with a trained pipeline, batch-first.

    The annotator never retrains: it consumes any pipeline — freshly fitted
    or restored with :meth:`TypilusPipeline.load` — and serves suggestions
    for arbitrarily many files per call.
    """

    def __init__(self, pipeline: TypilusPipeline, config: Optional[AnnotatorConfig] = None) -> None:
        self.pipeline = pipeline
        self.config = config or AnnotatorConfig()

    def annotate_sources(self, sources: Mapping[str, str]) -> ProjectReport:
        """Annotate an in-memory file set (filename → source) in one pass."""
        stopwatch = Stopwatch()
        with stopwatch.measure("annotate"):
            suggestions_by_file = self.pipeline.suggest_for_sources(
                sources,
                use_type_checker=self.config.use_type_checker,
                checker_mode=self.config.checker_mode,
                confidence_threshold=self.config.confidence_threshold,
                include_annotated=self.config.include_annotated,
                skip_unparsable=True,
            )
        report = ProjectReport(
            elapsed_seconds=stopwatch.sections.get("annotate", 0.0),
            disagreement_threshold=self.config.disagreement_threshold,
        )
        for filename in sources:
            if filename in suggestions_by_file:
                report.files.append(FileReport(filename=filename, suggestions=suggestions_by_file[filename]))
            else:
                report.skipped_files.append(filename)
        return report

    def annotate_directory(self, directory: Union[str, Path], pattern: str = "**/*.py") -> ProjectReport:
        """Annotate every matching file under a directory in one pass."""
        directory = Path(directory)
        if not directory.is_dir():
            raise NotADirectoryError(f"{directory} is not a directory")
        sources: dict[str, str] = {}
        unreadable: list[str] = []
        for path in sorted(directory.glob(pattern)):
            if not path.is_file():
                continue
            try:
                sources[str(path.relative_to(directory))] = path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError):
                unreadable.append(str(path.relative_to(directory)))
        report = self.annotate_sources(sources)
        report.skipped_files.extend(unreadable)
        return report
