"""Project-scale annotation engine (the paper's Sec. 7 workflow, batched).

The engine layer turns a trained :class:`~repro.core.pipeline.TypilusPipeline`
into a project-level tool: :class:`ProjectAnnotator` takes a directory or an
in-memory file set and produces type suggestions, annotation-disagreement
reports and throughput metrics for the *whole project in one batched pass* —
every file's symbols are embedded together, scored with a single vectorized
kNN query and filtered through the optional type checker with per-candidate
verdict caching.  Combined with pipeline persistence
(:meth:`~repro.core.pipeline.TypilusPipeline.save` /
:meth:`~repro.core.pipeline.TypilusPipeline.load`), this is the serving path:
train once, save, then annotate any number of projects without re-training.
"""

from repro.engine.annotator import (
    AnnotationCache,
    AnnotatorConfig,
    FileReport,
    ProjectAnnotator,
    ProjectReport,
    suggestion_from_payload,
    suggestion_to_payload,
)

__all__ = [
    "AnnotationCache",
    "AnnotatorConfig",
    "FileReport",
    "ProjectAnnotator",
    "ProjectReport",
    "suggestion_from_payload",
    "suggestion_to_payload",
]
