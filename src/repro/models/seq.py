"""DeepTyper-style sequence encoder (the ``Seq*`` baselines of Table 2).

Following Hellendoorn et al. (2018) as described in Sec. 6.1 "Baselines":

* the file is a token sequence; each token is embedded from its subtokens
  (the paper's modification (a) to DeepTyper);
* two bidirectional GRU layers process the sequence;
* a *consistency module* between the layers computes a single representation
  per variable by averaging the representations of the tokens bound to it,
  and blends it back into those token positions;
* a final consistency step pools the last layer's occurrence representations
  into one vector per symbol (modification (b)), which is the symbol's type
  embedding.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.codegraph import CodeGraph
from repro.models.base import SymbolEncoder
from repro.models.batching import SequenceBatch, build_sequence_batch
from repro.models.encoder_init import NodeInitializer
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.rnn import BiGRU
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


class SequenceEncoder(SymbolEncoder):
    """Two-layer biGRU with consistency modules."""

    family = "sequence"

    def __init__(
        self,
        initializer: NodeInitializer,
        hidden_dim: int,
        rng: SeededRNG,
        max_tokens: int = 192,
    ) -> None:
        super().__init__()
        self.initializer = initializer
        self.hidden_dim = hidden_dim
        self.output_dim = hidden_dim
        self.max_tokens = max_tokens
        self.first_layer = BiGRU(initializer.dim, hidden_dim, rng.fork(1))
        self.second_layer = BiGRU(2 * hidden_dim, hidden_dim, rng.fork(2))
        self.projection = Linear(2 * hidden_dim, hidden_dim, rng.fork(3))

    # -- batching ----------------------------------------------------------------------

    def prepare_batch(self, graphs: Sequence[CodeGraph], targets_per_graph: Sequence[Sequence[int]]) -> SequenceBatch:
        return build_sequence_batch(graphs, targets_per_graph, max_tokens=self.max_tokens)

    # -- forward ------------------------------------------------------------------------

    def forward(self, batch: SequenceBatch) -> Tensor:
        num_sequences = batch.num_sequences
        length = batch.sequence_length
        if batch.features is not None:
            embedded = self.initializer.encode_features(batch.features)  # (S * L, dim)
        else:
            flat_texts = [text for sequence in batch.token_texts for text in sequence]
            embedded = self.initializer.encode_texts(flat_texts)  # (S * L, dim)
        # (S, L, dim) -> (L, S, dim) for the recurrent layers.
        sequence_input = embedded.reshape(num_sequences, length, self.initializer.dim).transpose(1, 0, 2)

        first = self.first_layer(sequence_input)  # (L, S, 2h)
        group_ids, num_groups, target_group_indices = self._group_assignments(batch)

        first_flat = first.transpose(1, 0, 2).reshape(num_sequences * length, 2 * self.hidden_dim)
        group_means = F.segment_mean(first_flat, group_ids, num_groups)
        blended = (first_flat + group_means.gather_rows(group_ids)) * 0.5
        second_input = blended.reshape(num_sequences, length, 2 * self.hidden_dim).transpose(1, 0, 2)

        second = self.second_layer(second_input)  # (L, S, 2h)
        second_flat = second.transpose(1, 0, 2).reshape(num_sequences * length, 2 * self.hidden_dim)
        final_means = F.segment_mean(second_flat, group_ids, num_groups)
        target_representations = final_means.gather_rows(np.asarray(target_group_indices, dtype=np.int64))
        return self.projection(target_representations).tanh()

    def _group_assignments(self, batch: SequenceBatch) -> tuple[np.ndarray, int, list[int]]:
        """Group flat token positions by the symbol they are bound to.

        Unbound positions each form their own singleton group; the tokens of
        target symbol ``t`` share group ``S*L + t``.  Returns the per-position
        group ids, the total group count and the group index of each target.
        """
        num_sequences = batch.num_sequences
        length = batch.sequence_length
        total_positions = num_sequences * length
        group_ids = np.arange(total_positions, dtype=np.int64)
        target_group_indices: list[int] = []
        for target_index, (sequence_index, positions) in enumerate(batch.target_occurrences):
            group = total_positions + target_index
            target_group_indices.append(group)
            for position in positions:
                if position < length:
                    group_ids[sequence_index * length + position] = group
        num_groups = total_positions + batch.num_targets
        return group_ids, num_groups, target_group_indices
