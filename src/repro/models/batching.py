"""Batch construction for the three model families.

Each model family consumes a different view of the program:

* the GNN consumes a *disjoint union* of several program graphs
  (:class:`GraphBatch`): node texts, per-edge-kind index arrays, and the node
  indices of the target symbols;
* the sequence model consumes padded token sequences plus, for every target
  symbol, the positions of the tokens bound to it (:class:`SequenceBatch`) —
  this is the "consistency module" input of DeepTyper;
* the path model consumes samples of leaf-to-leaf syntax paths per target
  symbol (:class:`PathBatch`), following code2seq.

All three are built from the same inputs: a list of
:class:`~repro.graph.codegraph.CodeGraph` and, per graph, the list of target
symbol node indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.graph.codegraph import CodeGraph
from repro.graph.edges import EdgeKind
from repro.graph.nodes import NodeKind
from repro.models.featurize import TextFeatures
from repro.utils.rng import SeededRNG


# ---------------------------------------------------------------------------
# Graph batches (GNN)
# ---------------------------------------------------------------------------


@dataclass
class GraphBatch:
    """A disjoint union of program graphs ready for the GGNN."""

    node_texts: list[str]
    edges: dict[EdgeKind, np.ndarray]  # (2, num_edges) int arrays, rows = (source, target)
    target_nodes: np.ndarray  # indices (into the union) of the target symbol nodes
    graph_of_node: np.ndarray  # graph index per node (for diagnostics)
    num_graphs: int
    #: Precomputed numeric features of ``node_texts`` for the encoder's node
    #: initialiser (set by compiled batch plans; ``None`` → featurize eagerly).
    features: Optional[TextFeatures] = None
    #: Cached message-passing plan: ``(config_key, plan)``.  Built lazily by
    #: the GGNN on first forward, or ahead of time by a compiled batch plan.
    message_plan: Optional[tuple] = field(default=None, repr=False, compare=False)
    #: Cached ``features.take(target_nodes)`` for target-only encoders, so a
    #: batch reused across epochs selects (and sorts) target features once.
    target_features: Optional[TextFeatures] = field(default=None, repr=False, compare=False)

    @property
    def num_nodes(self) -> int:
        return len(self.node_texts)

    @property
    def num_targets(self) -> int:
        return len(self.target_nodes)


def build_graph_batch(graphs: Sequence[CodeGraph], targets_per_graph: Sequence[Sequence[int]]) -> GraphBatch:
    """Merge graphs into one disjoint graph, remapping target node indices.

    Columnar graphs contribute their edge arrays directly (offset-shifted
    views of the ``(2, E)`` blocks, no tuple-list walking); object-built
    graphs go through the legacy per-pair path.  Both produce identical
    batches.
    """
    if len(graphs) != len(targets_per_graph):
        raise ValueError("graphs and targets_per_graph must have the same length")
    node_texts: list[str] = []
    num_nodes_per_graph = np.asarray([graph.num_nodes for graph in graphs], dtype=np.int64)
    offsets = np.zeros(len(graphs) + 1, dtype=np.int64)
    np.cumsum(num_nodes_per_graph, out=offsets[1:])

    edge_chunks: dict[EdgeKind, list[np.ndarray]] = {}
    target_chunks: list[np.ndarray] = []
    for graph_index, (graph, targets) in enumerate(zip(graphs, targets_per_graph)):
        offset = offsets[graph_index]
        flat = graph.flat
        if flat is not None:
            node_texts.extend(flat.node_texts())
            for kind, pairs in flat.edges.items():
                edge_chunks.setdefault(kind, []).append(pairs.T.astype(np.int64) + offset)
        else:
            node_texts.extend(node.text for node in graph.nodes)
            for kind, pairs in graph.edges.items():
                if pairs:
                    edge_chunks.setdefault(kind, []).append(np.asarray(pairs, dtype=np.int64) + offset)
                else:
                    edge_chunks.setdefault(kind, [])
        target_chunks.append(np.asarray(list(targets), dtype=np.int64) + offset)

    edges = {
        kind: np.concatenate(chunks, axis=0).T if chunks else np.zeros((2, 0), dtype=np.int64)
        for kind, chunks in edge_chunks.items()
    }
    target_nodes = (
        np.concatenate(target_chunks) if target_chunks else np.zeros(0, dtype=np.int64)
    )
    return GraphBatch(
        node_texts=node_texts,
        edges=edges,
        target_nodes=target_nodes,
        graph_of_node=np.repeat(np.arange(len(graphs), dtype=np.int64), num_nodes_per_graph),
        num_graphs=len(graphs),
    )


def token_view(graph: CodeGraph, max_tokens: int):
    """``(texts, node-index → position, OCCURRENCE_OF pairs)`` for one graph.

    Reads the columnar arrays when the graph is flat-backed (no node-object
    materialisation); falls back to the object walk otherwise.
    """
    flat = graph.flat
    if flat is not None:
        token_indices = flat.node_indices_of_kind(NodeKind.TOKEN)[:max_tokens].tolist()
        strings = flat.strings
        texts = [strings[i] for i in flat.node_text[token_indices].tolist()]
        position_of_node = {node: position for position, node in enumerate(token_indices)}
        occurrence_pairs = flat.edge_array(EdgeKind.OCCURRENCE_OF).T.tolist()
        return texts, position_of_node, occurrence_pairs
    token_nodes = [node for node in graph.nodes if node.kind == NodeKind.TOKEN][:max_tokens]
    position_of_node = {node.index: position for position, node in enumerate(token_nodes)}
    texts = [node.text for node in token_nodes]
    return texts, position_of_node, graph.edges_of(EdgeKind.OCCURRENCE_OF)


# ---------------------------------------------------------------------------
# Sequence batches (DeepTyper-style biGRU)
# ---------------------------------------------------------------------------


@dataclass
class SequenceBatch:
    """Padded token sequences plus symbol-occurrence positions."""

    token_texts: list[list[str]]  # per sequence, padded with ""
    sequence_length: int
    #: For each target symbol: (sequence index, occurrence positions in that sequence).
    target_occurrences: list[tuple[int, list[int]]]
    #: Precomputed features of the flattened padded token texts (row-major:
    #: sequence by sequence), set by compiled batch plans.
    features: Optional[TextFeatures] = None

    @property
    def num_sequences(self) -> int:
        return len(self.token_texts)

    @property
    def num_targets(self) -> int:
        return len(self.target_occurrences)


def build_sequence_batch(
    graphs: Sequence[CodeGraph],
    targets_per_graph: Sequence[Sequence[int]],
    max_tokens: int = 192,
) -> SequenceBatch:
    """Extract the token sequence of each file and locate symbol occurrences.

    Occurrence positions come from the graph's ``OCCURRENCE_OF`` edges between
    token nodes and the target symbol node; occurrences past ``max_tokens``
    are dropped (DeepTyper similarly truncates very long files).  Symbols with
    no surviving occurrence fall back to position 0 so every target receives
    an embedding.
    """
    token_texts: list[list[str]] = []
    target_occurrences: list[tuple[int, list[int]]] = []
    longest = 1

    for sequence_index, (graph, targets) in enumerate(zip(graphs, targets_per_graph)):
        texts, position_of_node, occurrence_pairs = token_view(graph, max_tokens)
        longest = max(longest, len(texts))
        token_texts.append(texts)

        occurrences_by_symbol: dict[int, list[int]] = {}
        for source, target in occurrence_pairs:
            if target in targets and source in position_of_node:
                occurrences_by_symbol.setdefault(target, []).append(position_of_node[source])
        for node_index in targets:
            positions = sorted(occurrences_by_symbol.get(node_index, [])) or [0]
            target_occurrences.append((sequence_index, positions))

    padded = [texts + [""] * (longest - len(texts)) for texts in token_texts]
    return SequenceBatch(token_texts=padded, sequence_length=longest, target_occurrences=target_occurrences)


# ---------------------------------------------------------------------------
# Path batches (code2seq-style)
# ---------------------------------------------------------------------------


@dataclass
class SyntaxPath:
    """A leaf-to-leaf path: two terminal texts and the non-terminal labels between."""

    start_text: str
    inner_labels: list[str]
    end_text: str


@dataclass
class PathBatch:
    """Per target symbol, a sample of syntax paths rooted at its occurrences."""

    paths_per_target: list[list[SyntaxPath]]

    @property
    def num_targets(self) -> int:
        return len(self.paths_per_target)


@dataclass
class _TreeIndex:
    """Parent pointers over CHILD edges, built once per graph."""

    parent: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_graph(cls, graph: CodeGraph) -> "_TreeIndex":
        index = cls()
        for source, target in graph.edges_of(EdgeKind.CHILD):
            # CHILD edges go parent -> child; keep the first parent seen.
            index.parent.setdefault(target, source)
        return index

    def path_to_root(self, node: int) -> list[int]:
        path = [node]
        seen = {node}
        while path[-1] in self.parent:
            nxt = self.parent[path[-1]]
            if nxt in seen:
                break
            path.append(nxt)
            seen.add(nxt)
        return path


def _path_between(tree: _TreeIndex, start: int, end: int) -> Optional[list[int]]:
    """Nodes along the tree path start → common ancestor → end (exclusive of leaves)."""
    up_start = tree.path_to_root(start)
    up_end = tree.path_to_root(end)
    ancestors_of_start = {node: depth for depth, node in enumerate(up_start)}
    for depth_end, node in enumerate(up_end):
        if node in ancestors_of_start:
            depth_start = ancestors_of_start[node]
            inner = up_start[1 : depth_start + 1] + list(reversed(up_end[1:depth_end]))
            return inner
    return None


def build_path_batch(
    graphs: Sequence[CodeGraph],
    targets_per_graph: Sequence[Sequence[int]],
    rng: SeededRNG,
    max_paths_per_target: int = 8,
    max_path_length: int = 12,
) -> PathBatch:
    """Sample leaf-to-leaf syntax paths anchored at each target symbol.

    For every occurrence token of the target symbol we sample other identifier
    tokens in the same file and extract the AST path between them (via CHILD
    parent pointers).  This mirrors code2seq's path extraction with the
    adaptation described in Sec. 6.1: paths are later pooled into a single
    vector per symbol.
    """
    paths_per_target: list[list[SyntaxPath]] = []
    for graph, targets in zip(graphs, targets_per_graph):
        tree = _TreeIndex.from_graph(graph)
        occurrence_map: dict[int, list[int]] = {}
        for source, target in graph.edges_of(EdgeKind.OCCURRENCE_OF):
            if target in targets and graph.nodes[source].kind == NodeKind.TOKEN:
                occurrence_map.setdefault(target, []).append(source)
        identifier_tokens = [
            node.index
            for node in graph.nodes
            if node.kind == NodeKind.TOKEN and node.is_identifier_like()
        ]
        for node_index in targets:
            symbol_text = graph.nodes[node_index].text
            occurrences = occurrence_map.get(node_index, [])
            sampled: list[SyntaxPath] = []
            if occurrences and identifier_tokens:
                for _ in range(max_paths_per_target):
                    start = rng.choice(occurrences)
                    end = rng.choice(identifier_tokens)
                    if end == start:
                        continue
                    inner = _path_between(tree, start, end)
                    if inner is None or len(inner) > max_path_length:
                        continue
                    sampled.append(
                        SyntaxPath(
                            start_text=graph.nodes[start].text,
                            inner_labels=[graph.nodes[n].text for n in inner],
                            end_text=graph.nodes[end].text,
                        )
                    )
            if not sampled:
                # Degenerate fallback: a single pseudo-path over the symbol name,
                # so the encoder always has something to pool.
                sampled = [SyntaxPath(start_text=symbol_text, inner_labels=["Symbol"], end_text=symbol_text)]
            paths_per_target.append(sampled)
    return PathBatch(paths_per_target=paths_per_target)
