"""code2seq-style path encoder (the ``Path*`` baselines of Table 2).

Following Alon et al. as adapted in Sec. 6.1: for each symbol we sample
syntax paths that connect an occurrence of the symbol with other identifier
leaves; each path is encoded from its two terminals plus the non-terminal
labels along the path; a self-weighted average pools the sampled path
encodings into a single vector per symbol, which is its type embedding.

The original code2seq encodes the inner path with an LSTM; here the inner
labels are mean-pooled, which preserves the information the downstream task
needs (which syntactic contexts the symbol participates in) while keeping
CPU training fast.  DESIGN.md records this simplification.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.graph.codegraph import CodeGraph
from repro.models.base import SymbolEncoder
from repro.models.batching import PathBatch, build_path_batch
from repro.models.encoder_init import NodeInitializer
from repro.nn import functional as F
from repro.nn.layers import Linear
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


class PathEncoder(SymbolEncoder):
    """Sampled-syntax-path encoder with attention pooling per symbol."""

    family = "path"

    def __init__(
        self,
        initializer: NodeInitializer,
        hidden_dim: int,
        rng: SeededRNG,
        max_paths_per_target: int = 8,
        max_path_length: int = 12,
    ) -> None:
        super().__init__()
        self.initializer = initializer
        self.hidden_dim = hidden_dim
        self.output_dim = hidden_dim
        self.max_paths_per_target = max_paths_per_target
        self.max_path_length = max_path_length
        self._sampling_rng = rng.fork(11)
        self.path_projection = Linear(3 * initializer.dim, hidden_dim, rng.fork(1))
        self.attention = Linear(hidden_dim, 1, rng.fork(2))
        self.output_projection = Linear(hidden_dim, hidden_dim, rng.fork(3))

    # -- batching -----------------------------------------------------------------------

    def prepare_batch(self, graphs: Sequence[CodeGraph], targets_per_graph: Sequence[Sequence[int]]) -> PathBatch:
        return build_path_batch(
            graphs,
            targets_per_graph,
            rng=self._sampling_rng,
            max_paths_per_target=self.max_paths_per_target,
            max_path_length=self.max_path_length,
        )

    # -- forward -------------------------------------------------------------------------

    def forward(self, batch: PathBatch) -> Tensor:
        start_texts: list[str] = []
        end_texts: list[str] = []
        inner_texts: list[str] = []
        inner_segments: list[int] = []
        path_of_target: list[int] = []

        path_index = 0
        for target_index, paths in enumerate(batch.paths_per_target):
            for path in paths:
                start_texts.append(path.start_text)
                end_texts.append(path.end_text)
                labels = path.inner_labels or ["Empty"]
                inner_texts.extend(labels)
                inner_segments.extend([path_index] * len(labels))
                path_of_target.append(target_index)
                path_index += 1
        num_paths = path_index

        # One featurize/embed pass over every text role (terminals + labels):
        # per-text encodings are independent, so slicing the combined result
        # is value-identical to three separate encode_texts calls and avoids
        # re-walking the embedding table per role.
        encoded = self.initializer.encode_texts(start_texts + end_texts + inner_texts)
        start_embeddings = encoded[0:num_paths]
        end_embeddings = encoded[num_paths : 2 * num_paths]
        inner_embeddings = F.segment_mean(
            encoded[2 * num_paths :], np.asarray(inner_segments), num_paths
        )
        path_vectors = self.path_projection(
            F.concatenate([start_embeddings, inner_embeddings, end_embeddings], axis=-1)
        ).tanh()

        # Self-weighted (attention) average of each target's path encodings.
        scores = self.attention(path_vectors)  # (num_paths, 1)
        target_ids = np.asarray(path_of_target, dtype=np.int64)
        num_targets = batch.num_targets
        # Softmax per target: subtract the per-target max, exponentiate, normalise.
        per_target_max = F.segment_max(scores, target_ids, num_targets, empty_value=0.0)
        shifted = scores - per_target_max.gather_rows(target_ids)
        weights_unnormalised = shifted.exp()
        normaliser = F.segment_sum(weights_unnormalised, target_ids, num_targets)
        weights = weights_unnormalised / normaliser.gather_rows(target_ids)
        pooled = F.segment_sum(path_vectors * weights, target_ids, num_targets)
        return self.output_projection(pooled).tanh()
