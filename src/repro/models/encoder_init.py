"""Initial node representations for the graph models (Table 4, bottom half).

The paper compares three ways of computing the initial GNN node state
``h^0``:

* **subtoken** — the average of learned subtoken embeddings (Eq. 7), the
  default;
* **token** — one embedding per whole lexeme, as in DeepTyper;
* **character** — a 1-D character CNN over the node's text.

All three share the same interface: given the list of node texts of a graph
batch they return a ``(num_nodes, dim)`` tensor.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.graph.subtokens import (
    CharacterVocabulary,
    SubtokenVocabulary,
    restore_ordered_tokens,
)
from repro.models import featurize
from repro.models.featurize import FeatureExtractor, TextFeatures
from repro.nn import functional as F
from repro.nn.conv import CharCNNEncoder
from repro.nn.layers import Embedding, Module
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


class NodeInitializer(Module):
    """Common interface of the three node-state initialisers.

    Each initialiser owns a :class:`~repro.models.featurize.FeatureExtractor`
    that converts texts to numeric id arrays.  ``encode_texts`` is now a thin
    composition of :meth:`featurize` and :meth:`encode_features`, so callers
    holding precomputed features (compiled batch plans, persisted datasets)
    skip the string work entirely while producing identical tensors.
    """

    dim: int
    #: Which :mod:`repro.models.featurize` layout this initialiser consumes.
    feature_kind: str = ""

    @property
    def extractor(self) -> FeatureExtractor:  # pragma: no cover - abstract
        raise NotImplementedError

    def featurize(self, texts: Sequence[str]) -> TextFeatures:
        """Convert texts to the numeric features :meth:`encode_features` expects."""
        return self.extractor.features_for_texts(texts)

    def encode_features(self, features: TextFeatures) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def encode_texts(self, texts: Sequence[str]) -> Tensor:
        return self.encode_features(self.featurize(texts))


class SubtokenNodeInitializer(NodeInitializer):
    """Average of subtoken embeddings (Eq. 7)."""

    feature_kind = featurize.SUBTOKEN

    def __init__(self, vocabulary: SubtokenVocabulary, dim: int, rng: SeededRNG) -> None:
        super().__init__()
        self.vocabulary = vocabulary
        self.dim = dim
        self.embedding = Embedding(max(len(vocabulary), 2), dim, rng)
        self._extractor = FeatureExtractor(featurize.SUBTOKEN, subtoken_vocabulary=vocabulary)

    @property
    def extractor(self) -> FeatureExtractor:
        return self._extractor

    def encode_features(self, features: TextFeatures) -> Tensor:
        embedded = self.embedding(features.ids)
        return F.segment_mean(embedded, features.segment_index(), features.num_texts)


class TokenVocabulary:
    """Whole-lexeme vocabulary used by the token-level initialiser."""

    UNKNOWN = 0

    def __init__(self, max_size: int = 10_000) -> None:
        self.max_size = max_size
        self._counts: Counter[str] = Counter()
        self._token_to_id: dict[str, int] = {"%UNK%": 0}
        self._finalised = False

    def observe(self, texts: Iterable[str]) -> None:
        self._counts.update(texts)

    def finalise(self) -> "TokenVocabulary":
        for token, _ in self._counts.most_common(self.max_size - 1):
            if token not in self._token_to_id:
                self._token_to_id[token] = len(self._token_to_id)
        self._finalised = True
        return self

    def __len__(self) -> int:
        return len(self._token_to_id)

    def lookup(self, text: str) -> int:
        return self._token_to_id.get(text, self.UNKNOWN)

    @classmethod
    def from_texts(cls, texts: Iterable[str], max_size: int = 10_000) -> "TokenVocabulary":
        vocabulary = cls(max_size=max_size)
        vocabulary.observe(texts)
        return vocabulary.finalise()

    @property
    def tokens(self) -> list[str]:
        """Tokens in id order (position == id), for persistence."""
        return list(self._token_to_id)

    @classmethod
    def from_token_list(cls, tokens: Iterable[str]) -> "TokenVocabulary":
        """Rebuild a finalised vocabulary from an ordered token list (persistence)."""
        return restore_ordered_tokens(cls(), tokens)


class TokenNodeInitializer(NodeInitializer):
    """One embedding per whole lexeme (the DeepTyper representation)."""

    feature_kind = featurize.TOKEN

    def __init__(self, vocabulary: TokenVocabulary, dim: int, rng: SeededRNG) -> None:
        super().__init__()
        self.vocabulary = vocabulary
        self.dim = dim
        self.embedding = Embedding(max(len(vocabulary), 2), dim, rng)
        self._extractor = FeatureExtractor(featurize.TOKEN, token_vocabulary=vocabulary)

    @property
    def extractor(self) -> FeatureExtractor:
        return self._extractor

    def encode_features(self, features: TextFeatures) -> Tensor:
        return self.embedding(features.ids)


class CharCNNNodeInitializer(NodeInitializer):
    """Character-level CNN representation (Kim et al. 2016)."""

    feature_kind = featurize.CHARACTER

    def __init__(self, dim: int, rng: SeededRNG, char_dim: int = 16, max_chars: int = 16) -> None:
        super().__init__()
        self.dim = dim
        self.max_chars = max_chars
        self.characters = CharacterVocabulary()
        self.encoder = CharCNNEncoder(len(self.characters), char_dim, dim, rng, max_chars=max_chars)
        self._extractor = FeatureExtractor(
            featurize.CHARACTER, character_vocabulary=self.characters, max_chars=max_chars
        )

    @property
    def extractor(self) -> FeatureExtractor:
        return self._extractor

    def encode_features(self, features: TextFeatures) -> Tensor:
        return self.encoder(features.ids)


def build_initializer(
    kind: str,
    dim: int,
    rng: SeededRNG,
    subtoken_vocabulary: SubtokenVocabulary | None = None,
    token_vocabulary: TokenVocabulary | None = None,
) -> NodeInitializer:
    """Factory used by the models and the Table 4 ablation harness."""
    if kind == "subtoken":
        if subtoken_vocabulary is None:
            raise ValueError("subtoken initialiser requires a subtoken vocabulary")
        return SubtokenNodeInitializer(subtoken_vocabulary, dim, rng)
    if kind == "token":
        if token_vocabulary is None:
            raise ValueError("token initialiser requires a token vocabulary")
        return TokenNodeInitializer(token_vocabulary, dim, rng)
    if kind == "character":
        return CharCNNNodeInitializer(dim, rng)
    raise ValueError(f"unknown node initialiser kind: {kind!r}")
