"""Symbol-encoder models: GGNN, DeepTyper-style biGRU, and code2seq paths."""

from repro.models.base import SymbolEncoder
from repro.models.batching import (
    GraphBatch,
    PathBatch,
    SequenceBatch,
    SyntaxPath,
    build_graph_batch,
    build_path_batch,
    build_sequence_batch,
)
from repro.models.encoder_init import (
    CharCNNNodeInitializer,
    NodeInitializer,
    SubtokenNodeInitializer,
    TokenNodeInitializer,
    TokenVocabulary,
    build_initializer,
)
from repro.models.featurize import FeatureExtractor, TextFeatures, vocabulary_fingerprint
from repro.models.ggnn import GGNNEncoder, MessagePlan, NameOnlyEncoder, build_message_plan
from repro.models.path import PathEncoder
from repro.models.seq import SequenceEncoder

__all__ = [
    "SymbolEncoder",
    "GraphBatch",
    "SequenceBatch",
    "PathBatch",
    "SyntaxPath",
    "build_graph_batch",
    "build_sequence_batch",
    "build_path_batch",
    "NodeInitializer",
    "SubtokenNodeInitializer",
    "TokenNodeInitializer",
    "CharCNNNodeInitializer",
    "TokenVocabulary",
    "build_initializer",
    "GGNNEncoder",
    "NameOnlyEncoder",
    "SequenceEncoder",
    "PathEncoder",
    "FeatureExtractor",
    "TextFeatures",
    "MessagePlan",
    "build_message_plan",
    "vocabulary_fingerprint",
]
