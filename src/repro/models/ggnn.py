"""Gated graph neural network encoder (Sec. 4.3).

The GGNN follows Li et al. (2016) as used by the paper:

* initial node states come from a node initialiser (subtoken average by
  default, Eq. 7);
* for ``T`` timesteps, each node receives messages from its neighbours —
  one learned linear map ``E_k`` per edge label ``k`` (plus, optionally, a
  separate map for the reverse direction) — aggregated with element-wise
  **max** (the paper's choice of ⊕), and updates its state with a single
  shared GRU cell;
* the type embedding of a symbol is the final state of its symbol node.

Setting ``num_steps=0`` yields the "Only Names (No GNN)" ablation of
Table 4: symbols are represented purely by their name subtokens.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.graph.codegraph import CodeGraph
from repro.graph.edges import ALL_EDGE_KINDS, EdgeKind
from repro.models.base import SymbolEncoder
from repro.models.batching import GraphBatch, build_graph_batch
from repro.models.encoder_init import NodeInitializer
from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear
from repro.nn.rnn import GRUCell
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


class GGNNEncoder(SymbolEncoder):
    """Message-passing GNN with max-pooling aggregation and GRU updates."""

    family = "graph"

    def __init__(
        self,
        initializer: NodeInitializer,
        hidden_dim: int,
        rng: SeededRNG,
        num_steps: int = 4,
        edge_kinds: Optional[Sequence[EdgeKind]] = None,
        use_reverse_edges: bool = True,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.initializer = initializer
        self.hidden_dim = hidden_dim
        self.output_dim = hidden_dim
        self.num_steps = num_steps
        self.edge_kinds = tuple(edge_kinds) if edge_kinds is not None else ALL_EDGE_KINDS
        self.use_reverse_edges = use_reverse_edges

        self.input_projection = (
            Linear(initializer.dim, hidden_dim, rng.fork(1)) if initializer.dim != hidden_dim else None
        )
        self.edge_transforms: dict[str, Linear] = {}
        for index, kind in enumerate(self.edge_kinds):
            self.edge_transforms[kind.value] = Linear(hidden_dim, hidden_dim, rng.fork(10 + index), bias=False)
            if use_reverse_edges:
                self.edge_transforms[f"{kind.value}::rev"] = Linear(
                    hidden_dim, hidden_dim, rng.fork(200 + index), bias=False
                )
        self.update_cell = GRUCell(hidden_dim, hidden_dim, rng.fork(3))
        self.dropout = Dropout(dropout, rng.fork(4)) if dropout > 0 else None

    # -- batching -------------------------------------------------------------------

    def prepare_batch(self, graphs: Sequence[CodeGraph], targets_per_graph: Sequence[Sequence[int]]) -> GraphBatch:
        return build_graph_batch(graphs, targets_per_graph)

    # -- forward --------------------------------------------------------------------

    def forward(self, batch: GraphBatch) -> Tensor:
        states = self.initializer.encode_texts(batch.node_texts)
        if self.input_projection is not None:
            states = self.input_projection(states).tanh()
        if self.dropout is not None:
            states = self.dropout(states)

        for _ in range(self.num_steps):
            aggregated = self._aggregate_messages(states, batch)
            states = self.update_cell(aggregated, states)

        return states.gather_rows(batch.target_nodes)

    def _aggregate_messages(self, states: Tensor, batch: GraphBatch) -> Tensor:
        """Compute per-node max-pooled messages across all edge kinds."""
        message_chunks: list[Tensor] = []
        destination_chunks: list[np.ndarray] = []
        for kind in self.edge_kinds:
            pairs = batch.edges.get(kind)
            if pairs is None or pairs.shape[1] == 0:
                continue
            sources, targets = pairs[0], pairs[1]
            forward_messages = self.edge_transforms[kind.value](states.gather_rows(sources))
            message_chunks.append(forward_messages)
            destination_chunks.append(targets)
            if self.use_reverse_edges:
                reverse_messages = self.edge_transforms[f"{kind.value}::rev"](states.gather_rows(targets))
                message_chunks.append(reverse_messages)
                destination_chunks.append(sources)
        if not message_chunks:
            return Tensor(np.zeros((batch.num_nodes, self.hidden_dim)))
        all_messages = F.concatenate(message_chunks, axis=0)
        all_destinations = np.concatenate(destination_chunks)
        return F.segment_max(all_messages, all_destinations, batch.num_nodes)


class NameOnlyEncoder(SymbolEncoder):
    """The "Only Names (No GNN)" baseline of Table 4.

    Symbols are embedded purely from their name subtokens — no propagation
    over the program structure at all.
    """

    family = "graph"

    def __init__(self, initializer: NodeInitializer, hidden_dim: int, rng: SeededRNG) -> None:
        super().__init__()
        self.initializer = initializer
        self.output_dim = hidden_dim
        self.projection = Linear(initializer.dim, hidden_dim, rng) if initializer.dim != hidden_dim else None

    def prepare_batch(self, graphs: Sequence[CodeGraph], targets_per_graph: Sequence[Sequence[int]]) -> GraphBatch:
        return build_graph_batch(graphs, targets_per_graph)

    def forward(self, batch: GraphBatch) -> Tensor:
        target_texts = [batch.node_texts[index] for index in batch.target_nodes]
        states = self.initializer.encode_texts(target_texts)
        if self.projection is not None:
            states = self.projection(states).tanh()
        return states
