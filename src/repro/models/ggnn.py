"""Gated graph neural network encoder (Sec. 4.3).

The GGNN follows Li et al. (2016) as used by the paper:

* initial node states come from a node initialiser (subtoken average by
  default, Eq. 7);
* for ``T`` timesteps, each node receives messages from its neighbours —
  one learned linear map ``E_k`` per edge label ``k`` (plus, optionally, a
  separate map for the reverse direction) — aggregated with element-wise
  **max** (the paper's choice of ⊕), and updates its state with a single
  shared GRU cell;
* the type embedding of a symbol is the final state of its symbol node.

Setting ``num_steps=0`` yields the "Only Names (No GNN)" ablation of
Table 4: symbols are represented purely by their name subtokens.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.graph.codegraph import CodeGraph
from repro.graph.edges import ALL_EDGE_KINDS, EdgeKind
from repro.models.base import SymbolEncoder
from repro.models.batching import GraphBatch, build_graph_batch
from repro.models.encoder_init import NodeInitializer
from repro.nn import functional as F
from repro.nn.layers import Dropout, Linear
from repro.nn.rnn import GRUCell
from repro.nn.segments import SegmentIndex
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


@dataclass
class MessagePlan:
    """Precomputed gather/scatter structure for one batch's message passing.

    A GGNN step used to issue one gather + one scatter-add *per edge kind and
    direction* (up to 18 of each).  The plan concatenates every kind's source
    rows into one index array with per-kind slices, so each propagation step
    does a single gather (whose backward scatters through a presorted
    :class:`~repro.nn.segments.SegmentIndex`) and a single max-aggregation
    over a presorted destination index.  The arrays depend only on the batch
    and the encoder's edge configuration, so compiled training plans build
    them once and reuse them every epoch.
    """

    gather_indices: np.ndarray  # source row per message, all kinds concatenated
    gather_index: SegmentIndex  # scatter structure over ``gather_indices``
    blocks: list[tuple[str, slice]]  # (edge-transform key, rows of that kind)
    destination_index: SegmentIndex  # message destinations, for segment_max


def build_message_plan(
    edges: dict[EdgeKind, np.ndarray],
    num_nodes: int,
    edge_kinds: Sequence[EdgeKind],
    use_reverse_edges: bool,
) -> Optional[MessagePlan]:
    """Build the fused gather/scatter arrays for a batch (``None`` if no edges).

    Block order matches the historical per-kind loop — forward then reverse
    per kind, kinds in configuration order — so the concatenated message
    matrix is row-for-row identical to what the unfused implementation built.
    """
    gather_chunks: list[np.ndarray] = []
    destination_chunks: list[np.ndarray] = []
    blocks: list[tuple[str, slice]] = []
    cursor = 0
    for kind in edge_kinds:
        pairs = edges.get(kind)
        if pairs is None or pairs.shape[1] == 0:
            continue
        sources, targets = pairs[0], pairs[1]
        count = pairs.shape[1]
        gather_chunks.append(sources)
        destination_chunks.append(targets)
        blocks.append((kind.value, slice(cursor, cursor + count)))
        cursor += count
        if use_reverse_edges:
            gather_chunks.append(targets)
            destination_chunks.append(sources)
            blocks.append((f"{kind.value}::rev", slice(cursor, cursor + count)))
            cursor += count
    if not blocks:
        return None
    gather_indices = np.concatenate(gather_chunks)
    destinations = np.concatenate(destination_chunks)
    return MessagePlan(
        gather_indices=gather_indices,
        gather_index=SegmentIndex.build(gather_indices, num_nodes),
        blocks=blocks,
        destination_index=SegmentIndex.build(destinations, num_nodes),
    )


class GGNNEncoder(SymbolEncoder):
    """Message-passing GNN with max-pooling aggregation and GRU updates."""

    family = "graph"

    def __init__(
        self,
        initializer: NodeInitializer,
        hidden_dim: int,
        rng: SeededRNG,
        num_steps: int = 4,
        edge_kinds: Optional[Sequence[EdgeKind]] = None,
        use_reverse_edges: bool = True,
        dropout: float = 0.0,
    ) -> None:
        super().__init__()
        self.initializer = initializer
        self.hidden_dim = hidden_dim
        self.output_dim = hidden_dim
        self.num_steps = num_steps
        self.edge_kinds = tuple(edge_kinds) if edge_kinds is not None else ALL_EDGE_KINDS
        self.use_reverse_edges = use_reverse_edges

        self.input_projection = (
            Linear(initializer.dim, hidden_dim, rng.fork(1)) if initializer.dim != hidden_dim else None
        )
        self.edge_transforms: dict[str, Linear] = {}
        for index, kind in enumerate(self.edge_kinds):
            self.edge_transforms[kind.value] = Linear(hidden_dim, hidden_dim, rng.fork(10 + index), bias=False)
            if use_reverse_edges:
                self.edge_transforms[f"{kind.value}::rev"] = Linear(
                    hidden_dim, hidden_dim, rng.fork(200 + index), bias=False
                )
        self.update_cell = GRUCell(hidden_dim, hidden_dim, rng.fork(3))
        self.dropout = Dropout(dropout, rng.fork(4)) if dropout > 0 else None

    # -- batching -------------------------------------------------------------------

    def prepare_batch(self, graphs: Sequence[CodeGraph], targets_per_graph: Sequence[Sequence[int]]) -> GraphBatch:
        return build_graph_batch(graphs, targets_per_graph)

    # -- forward --------------------------------------------------------------------

    def message_plan_key(self) -> tuple:
        """Identity of the edge configuration a :class:`MessagePlan` depends on."""
        return (tuple(kind.value for kind in self.edge_kinds), self.use_reverse_edges)

    def _plan_for_batch(self, batch: GraphBatch) -> Optional[MessagePlan]:
        key = self.message_plan_key()
        cached = batch.message_plan
        if cached is not None and cached[0] == key:
            return cached[1]
        plan = build_message_plan(batch.edges, batch.num_nodes, self.edge_kinds, self.use_reverse_edges)
        batch.message_plan = (key, plan)
        return plan

    def forward(self, batch: GraphBatch) -> Tensor:
        if batch.features is not None:
            states = self.initializer.encode_features(batch.features)
        else:
            states = self.initializer.encode_texts(batch.node_texts)
        if self.input_projection is not None:
            states = self.input_projection(states).tanh()
        if self.dropout is not None:
            states = self.dropout(states)

        plan = self._plan_for_batch(batch)
        for _ in range(self.num_steps):
            aggregated = self._aggregate_messages(states, plan, batch.num_nodes)
            states = self.update_cell(aggregated, states)

        return states.gather_rows(batch.target_nodes)

    def _aggregate_messages(self, states: Tensor, plan: Optional[MessagePlan], num_nodes: int) -> Tensor:
        """Compute per-node max-pooled messages across all edge kinds."""
        if plan is None:
            return Tensor(np.zeros((num_nodes, self.hidden_dim), dtype=states.data.dtype))
        gathered = states.gather_rows(plan.gather_indices, scatter_index=plan.gather_index)
        all_messages = F.block_linear(
            gathered,
            [self.edge_transforms[key].weight for key, _ in plan.blocks],
            [rows for _, rows in plan.blocks],
        )
        return F.segment_max(all_messages, plan.destination_index, num_nodes)


class NameOnlyEncoder(SymbolEncoder):
    """The "Only Names (No GNN)" baseline of Table 4.

    Symbols are embedded purely from their name subtokens — no propagation
    over the program structure at all.
    """

    family = "graph"

    def __init__(self, initializer: NodeInitializer, hidden_dim: int, rng: SeededRNG) -> None:
        super().__init__()
        self.initializer = initializer
        self.output_dim = hidden_dim
        self.projection = Linear(initializer.dim, hidden_dim, rng) if initializer.dim != hidden_dim else None

    def prepare_batch(self, graphs: Sequence[CodeGraph], targets_per_graph: Sequence[Sequence[int]]) -> GraphBatch:
        return build_graph_batch(graphs, targets_per_graph)

    def forward(self, batch: GraphBatch) -> Tensor:
        if batch.features is not None:
            if batch.target_features is None:
                batch.target_features = batch.features.take(batch.target_nodes)
            states = self.initializer.encode_features(batch.target_features)
        else:
            target_texts = [batch.node_texts[index] for index in batch.target_nodes]
            states = self.initializer.encode_texts(target_texts)
        if self.projection is not None:
            states = self.projection(states).tanh()
        return states
