"""Common interface of the symbol encoders (graph, sequence, path).

Every model family maps a set of program graphs plus target symbol nodes to
one *type embedding* per target symbol — the ``r_s = e(S)[s]`` of Sec. 4.1.
The training objectives (:mod:`repro.core.losses`) and the TypeSpace
(:mod:`repro.core.typespace`) are agnostic to which family produced the
embeddings, which is exactly how the paper compares Seq*/Path*/Graph*
variants under identical losses (Table 2).
"""

from __future__ import annotations

from typing import Protocol, Sequence

from repro.graph.codegraph import CodeGraph
from repro.nn.layers import Module
from repro.nn.tensor import Tensor


class SymbolEncoder(Module):
    """Base class for models that embed symbols into R^D."""

    #: Dimension of the produced type embeddings.
    output_dim: int
    #: Model family name used in experiment tables ("graph", "sequence", "path").
    family: str = "unknown"

    def prepare_batch(self, graphs: Sequence[CodeGraph], targets_per_graph: Sequence[Sequence[int]]):
        """Convert graphs + target node ids into the family-specific batch."""
        raise NotImplementedError

    def forward(self, batch) -> Tensor:
        """Return a ``(num_targets, output_dim)`` tensor of type embeddings."""
        raise NotImplementedError

    def encode(self, graphs: Sequence[CodeGraph], targets_per_graph: Sequence[Sequence[int]]) -> Tensor:
        """Convenience: prepare a batch and run the forward pass."""
        return self(self.prepare_batch(graphs, targets_per_graph))

    def enable_feature_memo(self) -> None:
        """Cache per-text feature arrays across batches.

        Families whose batches cannot be fully precompiled (the path encoder
        resamples syntax paths every batch) still stop re-tokenizing the same
        lexemes once this is on.  No-op for encoders without an initialiser.
        """
        initializer = getattr(self, "initializer", None)
        if initializer is not None:
            initializer.extractor.enable_memo()


class EncoderFactory(Protocol):
    """Anything that can build a fresh (randomly initialised) encoder."""

    def __call__(self) -> SymbolEncoder:  # pragma: no cover - typing only
        ...
