"""Compile-once text featurization for the node initialisers.

Every encoder family starts from the same place: a list of node (or token)
texts that an initialiser turns into numeric id arrays before any tensor
work happens — subtoken ids plus segment ids for the Eq. 7 average, one
whole-lexeme id per text for the DeepTyper-style initialiser, or a padded
character grid for the char-CNN.  The eager training path recomputed those
ids from strings on *every batch of every epoch*; this module computes them
**once** and hands the arrays around instead:

* :class:`TextFeatures` — the numeric form of a text list for one
  initialiser kind, with cheap CSR-style concatenation (building a batch
  disjoint union is pure array stacking), row selection and padding;
* :class:`FeatureExtractor` — string → ids conversion with an optional
  per-text memo for workloads that keep re-encoding the same lexemes
  (path sampling, repeated inference);
* :func:`vocabulary_fingerprint` — content hash tying persisted feature
  arrays to the vocabulary that produced them, so stale features are
  recomputed instead of silently mis-indexing a new embedding table.

The arrays produced here are byte-identical to what the eager per-string
path produced, so float64 training on precomputed features replays the
eager loss trajectory exactly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

#: Feature layouts, one per node-initialiser kind.
SUBTOKEN = "subtoken"
TOKEN = "token"
CHARACTER = "character"
FEATURE_KINDS = (SUBTOKEN, TOKEN, CHARACTER)


@dataclass
class TextFeatures:
    """Numeric features of a list of texts for one initialiser kind.

    * ``kind == "subtoken"`` — ``ids`` is the flat subtoken id array and
      ``row_splits`` (length ``num_texts + 1``) delimits each text's ids,
      CSR style; ``segments`` (the per-id text index) is derived lazily.
    * ``kind == "token"`` — ``ids`` holds one vocabulary id per text.
    * ``kind == "character"`` — ``ids`` is a ``(num_texts, max_chars)``
      character grid.
    """

    kind: str
    num_texts: int
    ids: np.ndarray
    row_splits: Optional[np.ndarray] = None
    _segments: Optional[np.ndarray] = None
    _segment_index: object = None

    def __post_init__(self) -> None:
        if self.kind not in FEATURE_KINDS:
            raise ValueError(f"unknown feature kind {self.kind!r}")
        if self.kind == SUBTOKEN and self.row_splits is None:
            raise ValueError("subtoken features require row_splits")

    @property
    def segments(self) -> np.ndarray:
        """Per-id text index (the segment array of Eq. 7's average)."""
        if self.kind != SUBTOKEN:
            raise ValueError(f"{self.kind!r} features have no segment structure")
        if self._segments is None:
            lengths = np.diff(self.row_splits)
            self._segments = np.repeat(np.arange(self.num_texts, dtype=np.int64), lengths)
        return self._segments

    def segment_index(self):
        """Cached :class:`~repro.nn.segments.SegmentIndex` over :attr:`segments`.

        Subtoken pooling runs once per epoch over the same feature block when
        batches are compiled; caching the sorted index (and with it the CSR
        aggregation matrix) makes the per-epoch cost a single sparse matmul.
        """
        if self._segment_index is None:
            from repro.nn.segments import SegmentIndex

            self._segment_index = SegmentIndex.build(self.segments, self.num_texts)
        return self._segment_index

    # -- batch assembly ----------------------------------------------------------

    @classmethod
    def concatenate(cls, pieces: Sequence["TextFeatures"]) -> "TextFeatures":
        """Stack features of several text lists into one (disjoint-union order)."""
        if not pieces:
            raise ValueError("cannot concatenate zero feature blocks")
        kind = pieces[0].kind
        if any(piece.kind != kind for piece in pieces):
            raise ValueError("cannot concatenate features of different kinds")
        if len(pieces) == 1:
            return pieces[0]
        num_texts = sum(piece.num_texts for piece in pieces)
        if kind == SUBTOKEN:
            ids = np.concatenate([piece.ids for piece in pieces])
            splits = [np.zeros(1, dtype=np.int64)]
            offset = 0
            for piece in pieces:
                splits.append(piece.row_splits[1:] + offset)
                offset += piece.row_splits[-1]
            return cls(kind=kind, num_texts=num_texts, ids=ids, row_splits=np.concatenate(splits))
        if kind == TOKEN:
            return cls(kind=kind, num_texts=num_texts, ids=np.concatenate([piece.ids for piece in pieces]))
        return cls(kind=kind, num_texts=num_texts, ids=np.vstack([piece.ids for piece in pieces]))

    def take(self, indices: np.ndarray) -> "TextFeatures":
        """Features of the selected rows, in the given order (with repeats)."""
        indices = np.asarray(indices, dtype=np.int64)
        if self.kind == SUBTOKEN:
            starts = self.row_splits[indices]
            lengths = self.row_splits[indices + 1] - starts
            ids = (
                np.concatenate([self.ids[s : s + n] for s, n in zip(starts, lengths)])
                if indices.size
                else np.zeros(0, dtype=np.int64)
            )
            row_splits = np.zeros(indices.size + 1, dtype=np.int64)
            np.cumsum(lengths, out=row_splits[1:])
            return TextFeatures(kind=self.kind, num_texts=indices.size, ids=ids, row_splits=row_splits)
        return TextFeatures(kind=self.kind, num_texts=indices.size, ids=self.ids[indices])

    def repeated(self, count: int) -> "TextFeatures":
        """This feature block tiled ``count`` times (used for padding rows)."""
        if count <= 0:
            raise ValueError("repeat count must be positive")
        if self.kind == SUBTOKEN:
            ids = np.tile(self.ids, count)
            per_row = np.tile(np.diff(self.row_splits), count)
            row_splits = np.zeros(self.num_texts * count + 1, dtype=np.int64)
            np.cumsum(per_row, out=row_splits[1:])
            return TextFeatures(
                kind=self.kind, num_texts=self.num_texts * count, ids=ids, row_splits=row_splits
            )
        if self.kind == TOKEN:
            return TextFeatures(kind=self.kind, num_texts=self.num_texts * count, ids=np.tile(self.ids, count))
        return TextFeatures(
            kind=self.kind, num_texts=self.num_texts * count, ids=np.tile(self.ids, (count, 1))
        )


class FeatureExtractor:
    """Converts text lists into :class:`TextFeatures` for one initialiser kind.

    ``memoize=True`` keeps a per-text cache of id arrays — worthwhile when the
    same lexemes are encoded over and over (syntax-path sampling, repeated
    suggestion requests).  The eager training path deliberately runs without
    the memo so it keeps the historical per-batch cost that the compiled plan
    is benchmarked against.
    """

    def __init__(
        self,
        kind: str,
        subtoken_vocabulary=None,
        token_vocabulary=None,
        character_vocabulary=None,
        max_chars: int = 16,
        memoize: bool = False,
    ) -> None:
        if kind not in FEATURE_KINDS:
            raise ValueError(f"unknown feature kind {kind!r}")
        if kind == SUBTOKEN and subtoken_vocabulary is None:
            raise ValueError("subtoken features require a subtoken vocabulary")
        if kind == TOKEN and token_vocabulary is None:
            raise ValueError("token features require a token vocabulary")
        if kind == CHARACTER and character_vocabulary is None:
            raise ValueError("character features require a character vocabulary")
        self.kind = kind
        self.subtoken_vocabulary = subtoken_vocabulary
        self.token_vocabulary = token_vocabulary
        self.character_vocabulary = character_vocabulary
        self.max_chars = max_chars
        self._memo: Optional[dict[str, np.ndarray]] = {} if memoize else None

    def enable_memo(self) -> None:
        """Turn on per-text caching (id arrays are immutable, so this is safe)."""
        if self._memo is None:
            self._memo = {}

    def fingerprint(self) -> str:
        """Hash of the vocabulary content that determines the produced ids."""
        if self.kind == SUBTOKEN:
            return vocabulary_fingerprint(SUBTOKEN, self.subtoken_vocabulary.tokens)
        if self.kind == TOKEN:
            return vocabulary_fingerprint(TOKEN, self.token_vocabulary.tokens)
        return vocabulary_fingerprint(CHARACTER, [str(self.max_chars)])

    # -- single-text conversion ---------------------------------------------------

    def _ids_for_text(self, text: str) -> np.ndarray:
        if self.kind == SUBTOKEN:
            return np.asarray(self.subtoken_vocabulary.ids_for_identifier(text), dtype=np.int64)
        if self.kind == TOKEN:
            return np.asarray([self.token_vocabulary.lookup(text)], dtype=np.int64)
        encoded = self.character_vocabulary.encode(text if text else "_", self.max_chars)
        return np.asarray(encoded, dtype=np.int64)

    # -- text-list conversion -----------------------------------------------------

    def features_for_texts(self, texts: Sequence[str]) -> TextFeatures:
        """Featurize a text list; identical ids to the per-string eager path."""
        memo = self._memo
        if memo is None:
            rows = [self._ids_for_text(text) for text in texts]
        else:
            rows = []
            for text in texts:
                ids = memo.get(text)
                if ids is None:
                    ids = self._ids_for_text(text)
                    memo[text] = ids
                rows.append(ids)
        if self.kind == SUBTOKEN:
            lengths = np.fromiter((row.size for row in rows), dtype=np.int64, count=len(rows))
            row_splits = np.zeros(len(rows) + 1, dtype=np.int64)
            np.cumsum(lengths, out=row_splits[1:])
            ids = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
            return TextFeatures(kind=SUBTOKEN, num_texts=len(rows), ids=ids, row_splits=row_splits)
        if self.kind == TOKEN:
            ids = np.concatenate(rows) if rows else np.zeros(0, dtype=np.int64)
            return TextFeatures(kind=TOKEN, num_texts=len(rows), ids=ids)
        grid = np.vstack(rows) if rows else np.zeros((0, self.max_chars), dtype=np.int64)
        return TextFeatures(kind=CHARACTER, num_texts=len(rows), ids=grid)

    # -- graph conversion ----------------------------------------------------------

    def features_for_graph(self, graph) -> TextFeatures:
        """Featurize a graph's node texts, via its intern table when flat.

        Columnar graphs (:attr:`CodeGraph.flat`) carry every distinct lexeme
        exactly once in their string table: the table is featurized once and
        the per-node rows are gathered by text id, so a lexeme shared by a
        thousand nodes is tokenized a single time.  The produced arrays are
        byte-identical to featurizing ``[node.text for node in graph.nodes]``
        directly, which remains the fallback for object-built graphs.
        """
        flat = getattr(graph, "flat", None)
        if flat is None:
            return self.features_for_texts([node.text for node in graph.nodes])
        table = self.features_for_texts(flat.strings)
        return table.take(flat.node_text)


def vocabulary_fingerprint(kind: str, tokens: Iterable[str]) -> str:
    """Content hash of an ordered token list (id == position)."""
    digest = hashlib.sha256(kind.encode("utf-8") + b"\x00")
    for token in tokens:
        digest.update(token.encode("utf-8") + b"\x00")
    return digest.hexdigest()
