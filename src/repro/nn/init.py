"""Weight initialisation schemes for the neural substrate."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import SeededRNG


def glorot_uniform(rng: SeededRNG, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.np.uniform(-limit, limit, size=(fan_in, fan_out))


def normal_scaled(rng: SeededRNG, shape: tuple[int, ...], scale: float = 0.1) -> np.ndarray:
    """Small-scale Gaussian initialisation, used for embedding tables."""
    return rng.np.normal(0.0, scale, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def orthogonal(rng: SeededRNG, rows: int, cols: int) -> np.ndarray:
    """Orthogonal initialisation, the usual choice for recurrent weights."""
    matrix = rng.np.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(matrix)
    q = q[:rows, :cols] if q.shape[0] >= rows else q.T[:rows, :cols]
    return np.ascontiguousarray(q[:rows, :cols])
