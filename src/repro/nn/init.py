"""Weight initialisation schemes for the neural substrate.

All initialisers draw in float64 (so the sampled values are identical no
matter which dtype is configured) and then cast to the default dtype from
:mod:`repro.nn.dtype` — a no-op when the default is float64, which keeps
historical float64 runs byte-identical.
"""

from __future__ import annotations

import numpy as np

from repro.nn.dtype import get_default_dtype
from repro.utils.rng import SeededRNG


def glorot_uniform(rng: SeededRNG, fan_in: int, fan_out: int) -> np.ndarray:
    """Glorot/Xavier uniform initialisation for a ``(fan_in, fan_out)`` matrix."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    values = rng.np.uniform(-limit, limit, size=(fan_in, fan_out))
    return np.asarray(values, dtype=get_default_dtype())


def normal_scaled(rng: SeededRNG, shape: tuple[int, ...], scale: float = 0.1) -> np.ndarray:
    """Small-scale Gaussian initialisation, used for embedding tables."""
    return np.asarray(rng.np.normal(0.0, scale, size=shape), dtype=get_default_dtype())


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=get_default_dtype())


def orthogonal(rng: SeededRNG, rows: int, cols: int) -> np.ndarray:
    """Orthogonal initialisation, the usual choice for recurrent weights."""
    matrix = rng.np.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, _ = np.linalg.qr(matrix)
    q = q[:rows, :cols] if q.shape[0] >= rows else q.T[:rows, :cols]
    return np.ascontiguousarray(q[:rows, :cols], dtype=get_default_dtype())
