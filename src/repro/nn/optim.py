"""Gradient-based optimisers for the reproduction's models.

Embedding tables receive their gradients as sparse ``(row_indices, rows)``
contributions (see :meth:`repro.nn.tensor.Tensor.gather_rows`), and the
optimisers here consume them without ever densifying into a full-vocabulary
buffer.  The sparse update is *exactly* equivalent to the dense one: a row
whose Adam state is all-zero and whose gradient is zero would receive a zero
update, so only rows that have ever been touched need to be visited.  Rows
touched at least once keep decaying momentum like the dense update would, so
float64 trajectories are bit-identical to the historical dense behaviour.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.nn.tensor import Tensor

#: One parameter's gradient state: ``(dense_grad, sparse_row_contributions)``.
#: Either half may be ``None``; see :func:`capture_gradients`.
GradientState = tuple[Optional[np.ndarray], Optional[list]]


def capture_gradients(parameters: Sequence[Tensor]) -> list[GradientState]:
    """Detach and return every parameter's accumulated gradient state.

    After the call all parameters hold no gradient, so a subsequent backward
    pass accumulates into fresh buffers.  This is the primitive behind the
    trainer's per-graph gradient decomposition: each graph's backward runs in
    isolation, its contribution is captured, and the contributions are summed
    in a fixed graph order — an ordering that is independent of how the
    graphs are distributed over worker processes, which is what makes
    ``workers=N`` replay ``workers=1`` bit-for-bit.
    """
    captured: list[GradientState] = []
    for parameter in parameters:
        captured.append((parameter._grad, parameter.grad_rows))
        parameter._grad = None
        parameter.grad_rows = None
    return captured


def restore_gradients(parameters: Sequence[Tensor], state: Sequence[GradientState]) -> None:
    """Reinstate gradient state previously taken by :func:`capture_gradients`."""
    for parameter, (grad, rows) in zip(parameters, state):
        parameter._grad = grad
        parameter.grad_rows = rows


def accumulate_gradients(parameters: Sequence[Tensor], contribution: Sequence[GradientState]) -> None:
    """Add one captured contribution onto the parameters' gradients.

    Dense parts are summed element-wise (the first contribution is adopted,
    later ones added in call order — the associativity that defines the
    decomposed numerics); sparse row contributions are appended in order, so
    :meth:`~repro.nn.tensor.Tensor.coalesce_grad_rows` later reduces them in
    the same sequence a serial accumulation would have recorded.
    """
    for parameter, (grad, rows) in zip(parameters, contribution):
        if grad is not None:
            if parameter._grad is None:
                parameter._grad = grad
            else:
                parameter._grad += grad
        if rows:
            if parameter.grad_rows is None:
                parameter.grad_rows = []
            parameter.grad_rows.extend(rows)


class Optimizer:
    """Base optimiser holding a list of parameters."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def clip_gradients(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clipping norm, which the trainer logs to spot
        divergence early.  Sparse row gradients participate in the norm and
        the scaling without being densified; a parameter that somehow holds
        both a dense and a sparse gradient is merged first so overlapping
        rows are not double-counted.
        """
        total = 0.0
        for parameter in self.parameters:
            if parameter._grad is not None and parameter.grad_rows:
                parameter.densify_grad()
            if parameter._grad is not None:
                total += float((parameter._grad**2).sum())
            else:
                sparse = parameter.coalesce_grad_rows()
                if sparse is not None:
                    total += float((sparse[1] ** 2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter._grad is not None:
                    parameter._grad *= scale
                elif parameter.grad_rows:
                    parameter.grad_rows[0][1][...] *= scale
        return norm

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if self.momentum:
                # Momentum couples every row to the full history; densify.
                grad = parameter.densify_grad()
                if grad is None:
                    continue
                velocity *= self.momentum
                velocity -= self.lr * grad
                parameter.data += velocity
                continue
            if parameter._grad is not None and parameter.grad_rows:
                parameter.densify_grad()
            if parameter._grad is not None:
                parameter.data -= self.lr * parameter._grad
            else:
                sparse = parameter.coalesce_grad_rows()
                if sparse is not None:
                    indices, rows = sparse
                    parameter.data[indices] -= self.lr * rows


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the default for all experiments."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        #: Rows of each parameter whose Adam state is (possibly) non-zero.
        #: ``None`` until the parameter first receives a sparse gradient.
        self._active_rows: list[Optional[np.ndarray]] = [None for _ in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for slot, (parameter, m, v) in enumerate(zip(self.parameters, self._m, self._v)):
            if parameter.grad_rows and (parameter._grad is not None or self.weight_decay):
                # Mixed dense+sparse usage, or weight decay (which grads every
                # row): fall back to the dense update for correctness.
                parameter.densify_grad()
            if parameter._grad is None and parameter.grad_rows:
                self._sparse_step(slot, parameter, m, v, bias1, bias2)
                continue
            if parameter._grad is None:
                # No gradient at all this step: skip, like the dense update.
                continue
            if self._active_rows[slot] is not None:
                # The parameter switched to dense gradients: from here on all
                # rows may carry state, so stop tracking the active subset.
                self._active_rows[slot] = None
            grad = parameter._grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _sparse_step(
        self,
        slot: int,
        parameter: Tensor,
        m: np.ndarray,
        v: np.ndarray,
        bias1: float,
        bias2: float,
    ) -> None:
        indices, rows = parameter.coalesce_grad_rows()
        active = self._active_rows[slot]
        if active is None:
            active = np.zeros(parameter.data.shape[0], dtype=bool)
            # If the parameter ever received dense gradients before, any row
            # may hold state; seed the active set from the stored moments.
            if self._step_count > 1:
                nonzero = (m != 0).any(axis=tuple(range(1, m.ndim))) if m.ndim > 1 else m != 0
                active |= nonzero
        active[indices] = True
        self._active_rows[slot] = active
        rows_to_update = np.flatnonzero(active)
        if rows_to_update.size > parameter.data.shape[0] // 2:
            # Most rows carry state: the vectorised full-table update is
            # cheaper than fancy-indexed row updates (and identical in value).
            m *= self.beta1
            m[indices] += (1.0 - self.beta1) * rows
            v *= self.beta2
            v[indices] += (1.0 - self.beta2) * rows**2
            parameter.data -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            return
        m[rows_to_update] *= self.beta1
        m[indices] += (1.0 - self.beta1) * rows
        v[rows_to_update] *= self.beta2
        v[indices] += (1.0 - self.beta2) * rows**2
        m_hat = m[rows_to_update] / bias1
        v_hat = v[rows_to_update] / bias2
        parameter.data[rows_to_update] -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
