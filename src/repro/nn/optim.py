"""Gradient-based optimisers for the reproduction's models."""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.nn.tensor import Tensor


class Optimizer:
    """Base optimiser holding a list of parameters."""

    def __init__(self, parameters: Iterable[Tensor]) -> None:
        self.parameters = [p for p in parameters if p.requires_grad]
        if not self.parameters:
            raise ValueError("optimizer received no trainable parameters")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def clip_gradients(self, max_norm: float) -> float:
        """Scale all gradients so their global L2 norm is at most ``max_norm``.

        Returns the pre-clipping norm, which the trainer logs to spot
        divergence early.
        """
        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float((parameter.grad**2).sum())
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad *= scale
        return norm

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters: Iterable[Tensor], lr: float = 0.01, momentum: float = 0.0) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for parameter, velocity in zip(self.parameters, self._velocity):
            if parameter.grad is None:
                continue
            if self.momentum:
                velocity *= self.momentum
                velocity -= self.lr * parameter.grad
                parameter.data += velocity
            else:
                parameter.data -= self.lr * parameter.grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the default for all experiments."""

    def __init__(
        self,
        parameters: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1**self._step_count
        bias2 = 1.0 - self.beta2**self._step_count
        for parameter, m, v in zip(self.parameters, self._m, self._v):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            parameter.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
