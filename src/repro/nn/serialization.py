"""Saving and loading model parameters.

Trained TypeSpaces and the models that produce them can be persisted to a
single ``.npz`` file keyed by the dotted parameter names returned by
:meth:`repro.nn.layers.Module.named_parameters`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.layers import Module


def state_dict(module: Module) -> dict[str, np.ndarray]:
    """Collect a copy of every named parameter's values."""
    return {name: parameter.data.copy() for name, parameter in module.named_parameters()}


def load_state_dict(module: Module, state: dict[str, np.ndarray], strict: bool = True) -> list[str]:
    """Load values into a module's parameters by name.

    Returns the list of parameter names present in the module but missing
    from ``state`` (empty when ``strict`` and nothing is missing; raises
    otherwise).
    """
    missing: list[str] = []
    for name, parameter in module.named_parameters():
        if name not in state:
            missing.append(name)
            continue
        values = state[name]
        if values.shape != parameter.data.shape:
            raise ValueError(
                f"shape mismatch for {name}: saved {values.shape}, expected {parameter.data.shape}"
            )
        # Adopt the stored array (dtype included): a float32-trained model
        # must reproduce its predictions exactly after a round trip, not
        # recompute them through upcast float64 weights.
        parameter.data = values.copy()
    if strict:
        extra = set(state) - {name for name, _ in module.named_parameters()}
        if missing or extra:
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={sorted(extra)}")
    return missing


def save(module: Module, path: Union[str, Path]) -> Path:
    """Serialize a module's parameters to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state_dict(module))
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load(module: Module, path: Union[str, Path], strict: bool = True) -> Module:
    """Load parameters saved by :func:`save` into ``module`` and return it."""
    with np.load(Path(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    load_state_dict(module, state, strict=strict)
    return module


# -- multi-module archives ---------------------------------------------------------

_NAMESPACE_SEPARATOR = "//"


def save_modules(path: Union[str, Path], **modules: Module) -> Path:
    """Serialize several named modules into one ``.npz`` archive.

    Parameter keys are namespaced as ``"<module name>//<parameter name>"`` so
    an encoder and any loss heads can share a single file.  Used by pipeline
    persistence.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    combined: dict[str, np.ndarray] = {}
    for module_name, module in modules.items():
        for parameter_name, values in state_dict(module).items():
            combined[f"{module_name}{_NAMESPACE_SEPARATOR}{parameter_name}"] = values
    np.savez(path, **combined)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_modules(path: Union[str, Path], strict: bool = True, **modules: Module) -> dict[str, list[str]]:
    """Load an archive written by :func:`save_modules` into the given modules.

    Returns the missing-parameter lists per module (see
    :func:`load_state_dict`).  Unknown module namespaces in the archive are an
    error under ``strict``.
    """
    with np.load(Path(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    grouped: dict[str, dict[str, np.ndarray]] = {}
    for key, values in state.items():
        module_name, _, parameter_name = key.partition(_NAMESPACE_SEPARATOR)
        grouped.setdefault(module_name, {})[parameter_name] = values
    if strict:
        unknown = set(grouped) - set(modules)
        if unknown:
            raise KeyError(f"archive contains modules not being loaded: {sorted(unknown)}")
    missing: dict[str, list[str]] = {}
    for module_name, module in modules.items():
        missing[module_name] = load_state_dict(module, grouped.get(module_name, {}), strict=strict)
    return missing
