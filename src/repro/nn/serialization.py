"""Saving and loading model parameters.

Trained TypeSpaces and the models that produce them can be persisted to a
single ``.npz`` file keyed by the dotted parameter names returned by
:meth:`repro.nn.layers.Module.named_parameters`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.nn.layers import Module


def state_dict(module: Module) -> dict[str, np.ndarray]:
    """Collect a copy of every named parameter's values."""
    return {name: parameter.data.copy() for name, parameter in module.named_parameters()}


def load_state_dict(module: Module, state: dict[str, np.ndarray], strict: bool = True) -> list[str]:
    """Load values into a module's parameters by name.

    Returns the list of parameter names present in the module but missing
    from ``state`` (empty when ``strict`` and nothing is missing; raises
    otherwise).
    """
    missing: list[str] = []
    for name, parameter in module.named_parameters():
        if name not in state:
            missing.append(name)
            continue
        values = state[name]
        if values.shape != parameter.data.shape:
            raise ValueError(
                f"shape mismatch for {name}: saved {values.shape}, expected {parameter.data.shape}"
            )
        parameter.data[...] = values
    if strict:
        extra = set(state) - {name for name, _ in module.named_parameters()}
        if missing or extra:
            raise KeyError(f"state dict mismatch: missing={missing}, unexpected={sorted(extra)}")
    return missing


def save(module: Module, path: Union[str, Path]) -> Path:
    """Serialize a module's parameters to ``path`` (``.npz``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **state_dict(module))
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load(module: Module, path: Union[str, Path], strict: bool = True) -> Module:
    """Load parameters saved by :func:`save` into ``module`` and return it."""
    with np.load(Path(path)) as archive:
        state = {key: archive[key] for key in archive.files}
    load_state_dict(module, state, strict=strict)
    return module
