"""Sorted segment indexes: the fast path under scatter/gather operations.

``np.add.at`` / ``np.maximum.at`` are the natural NumPy spelling of
"aggregate rows per segment id", but they dispatch element-by-element and
dominate training profiles.  Sorting the segment ids once and reducing
contiguous runs with ``ufunc.reduceat`` is 2–4× faster, and — because the
same id array is reused across every GGNN propagation step and across every
epoch of a compiled training plan — the sort is paid once and amortised.

:class:`SegmentIndex` packages that precomputation: the stable sort
permutation, run starts and the set of non-empty segments.  The segment
operations in :mod:`repro.nn.functional` and the gather/scatter backward in
:mod:`repro.nn.tensor` accept one in place of a raw id array.

Exactness notes: ``max`` is associative and commutative, so the reduceat
maximum is bit-identical to ``np.maximum.at``.  Summation happens in sorted
order, which may round differently from index order — but every code path
(eager and compiled) reduces in the same order, so eager/compiled float64
training trajectories stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

import numpy as np

try:  # scipy's CSR matmul reduces segments ~20× faster than ufunc.reduceat
    from scipy.sparse import csr_matrix as _csr_matrix
except ImportError:  # pragma: no cover - exercised only on scipy-less installs
    _csr_matrix = None


@dataclass(frozen=True)
class SegmentIndex:
    """Precomputed sort structure over an integer segment-id array."""

    ids: np.ndarray  # (N,) original segment id per row
    num_segments: int
    perm: np.ndarray  # stable argsort of ids
    sorted_ids: np.ndarray  # ids[perm]
    starts: np.ndarray  # start offset of each run in sorted order
    unique: np.ndarray  # segment id of each run (sorted, distinct)
    counts: np.ndarray  # rows per run
    #: Lazily-built ``(num_segments, N)`` 0/1 aggregation matrices per dtype;
    #: ``sum``/``scatter_add`` become one sparse matmul each when scipy is
    #: available.
    _sum_matrices: dict = field(default_factory=dict, compare=False, repr=False)

    @classmethod
    def build(cls, segment_ids: np.ndarray, num_segments: int) -> "SegmentIndex":
        ids = np.asarray(segment_ids, dtype=np.int64)
        if ids.ndim != 1:
            raise ValueError("segment ids must be one-dimensional")
        perm = np.argsort(ids, kind="stable")
        sorted_ids = ids[perm]
        if sorted_ids.size:
            boundaries = np.empty(sorted_ids.size, dtype=bool)
            boundaries[0] = True
            np.not_equal(sorted_ids[1:], sorted_ids[:-1], out=boundaries[1:])
            starts = np.flatnonzero(boundaries)
            unique = sorted_ids[starts]
            counts = np.diff(np.append(starts, sorted_ids.size))
        else:
            starts = np.zeros(0, dtype=np.int64)
            unique = np.zeros(0, dtype=np.int64)
            counts = np.zeros(0, dtype=np.int64)
        return cls(
            ids=ids,
            num_segments=int(num_segments),
            perm=perm,
            sorted_ids=sorted_ids,
            starts=starts,
            unique=unique,
            counts=counts,
        )

    @property
    def num_rows(self) -> int:
        return self.ids.size

    @property
    def num_nonempty(self) -> int:
        return self.unique.size

    def _sum_matrix(self, dtype: np.dtype):
        """The ``(num_segments, N)`` 0/1 CSR matrix whose product sums segments."""
        matrix = self._sum_matrices.get(dtype)
        if matrix is None:
            matrix = _csr_matrix(
                (
                    np.ones(self.ids.size, dtype=dtype),
                    (self.ids, np.arange(self.ids.size, dtype=np.int64)),
                ),
                shape=(self.num_segments, self.ids.size),
            )
            self._sum_matrices[dtype] = matrix
        return matrix

    def sum(self, values: np.ndarray) -> np.ndarray:
        """Per-segment sums of ``values`` rows; empty segments are zero."""
        if _csr_matrix is not None and values.ndim == 2 and self.ids.size:
            return self._sum_matrix(values.dtype) @ values
        out = np.zeros((self.num_segments,) + values.shape[1:], dtype=values.dtype)
        if self.unique.size:
            out[self.unique] = np.add.reduceat(values[self.perm], self.starts, axis=0)
        return out

    def max(self, values: np.ndarray, empty_value: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
        """Per-segment element-wise maxima plus the empty-segment mask.

        Returns ``(maxima, empty)`` where ``empty`` is a ``(num_segments,)``
        boolean marking segments with no rows, whose maxima are
        ``empty_value``.
        """
        out = np.full((self.num_segments,) + values.shape[1:], empty_value, dtype=values.dtype)
        empty = np.ones(self.num_segments, dtype=bool)
        if self.unique.size:
            out[self.unique] = np.maximum.reduceat(values[self.perm], self.starts, axis=0)
            empty[self.unique] = False
        return out, empty

    def scatter_add(self, target: np.ndarray, values: np.ndarray) -> None:
        """In-place ``target[ids] += values`` with duplicate ids pre-reduced."""
        if not self.unique.size:
            return
        if _csr_matrix is not None and values.ndim == 2:
            target += self._sum_matrix(values.dtype) @ values
        else:
            target[self.unique] += np.add.reduceat(values[self.perm], self.starts, axis=0)

    def dense_counts(self, dtype=np.int64) -> np.ndarray:
        """Rows per segment as a dense ``(num_segments,)`` array."""
        out = np.zeros(self.num_segments, dtype=dtype)
        if self.unique.size:
            out[self.unique] = self.counts
        return out


SegmentIds = Union[np.ndarray, SegmentIndex, list, tuple]


def as_segment_index(segment_ids: SegmentIds, num_segments: int) -> SegmentIndex:
    """Lift a raw id array to a :class:`SegmentIndex` (no-op if already one)."""
    if isinstance(segment_ids, SegmentIndex):
        if segment_ids.num_segments != num_segments:
            raise ValueError(
                f"segment index built for {segment_ids.num_segments} segments, got {num_segments}"
            )
        return segment_ids
    return SegmentIndex.build(np.asarray(segment_ids, dtype=np.int64), num_segments)
