"""Neural network layers built on the autograd tensor.

The layer/module system mirrors the conventional PyTorch shape —
``Module.parameters()`` walks the attribute tree collecting trainable
tensors — but only implements what the Typilus reproduction needs:
``Linear``, ``Embedding``, ``LayerNorm``, ``Dropout`` and ``Sequential``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


class Module:
    """Base class providing parameter discovery and train/eval switching."""

    def __init__(self) -> None:
        self.training = True

    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable tensor reachable from this module."""
        seen: set[int] = set()
        yield from self._walk(self, seen)

    @staticmethod
    def _walk(obj: "Module", seen: set[int]) -> Iterator[Tensor]:
        for value in vars(obj).values():
            if isinstance(value, Tensor) and value.requires_grad:
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from Module._walk(value, seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from Module._walk(item, seen)
                    elif isinstance(item, Tensor) and item.requires_grad and id(item) not in seen:
                        seen.add(id(item))
                        yield item
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        yield from Module._walk(item, seen)
                    elif isinstance(item, Tensor) and item.requires_grad and id(item) not in seen:
                        seen.add(id(item))
                        yield item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Tensor]]:
        """Yield ``(dotted_name, parameter)`` pairs for serialization."""
        for name, value in vars(self).items():
            path = f"{prefix}{name}"
            if isinstance(value, Tensor) and value.requires_grad:
                yield path, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{path}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{i}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{path}.{i}", item
            elif isinstance(value, dict):
                for key, item in value.items():
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{path}.{key}.")
                    elif isinstance(item, Tensor) and item.requires_grad:
                        yield f"{path}.{key}", item

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def to_dtype(self, dtype) -> "Module":
        """Cast every trainable parameter to ``dtype`` in place.

        Pending gradients are dropped (they belong to the previous dtype's
        computation graph).  Casting to the current dtype is a no-op that
        keeps the existing arrays, so float64 models are untouched.
        """
        from repro.nn.dtype import resolve_dtype

        resolved = resolve_dtype(dtype)
        for parameter in self.parameters():
            if parameter.data.dtype != resolved:
                parameter.data = parameter.data.astype(resolved)
                parameter.zero_grad()
        return self

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in vars(self).values():
            if isinstance(value, Module):
                value._set_mode(training)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        item._set_mode(training)
            elif isinstance(value, dict):
                for item in value.values():
                    if isinstance(item, Module):
                        item._set_mode(training)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError


class Linear(Module):
    """Affine transformation ``y = xW + b``."""

    def __init__(self, in_features: int, out_features: int, rng: SeededRNG, bias: bool = True) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(init.glorot_uniform(rng, in_features, out_features), requires_grad=True, name="weight")
        self.bias = Tensor(init.zeros((out_features,)), requires_grad=True, name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """A lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: SeededRNG) -> None:
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Tensor(init.normal_scaled(rng, (num_embeddings, dim)), requires_grad=True, name="embedding")

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding index out of range: [{indices.min()}, {indices.max()}] "
                f"for table of size {self.num_embeddings}"
            )
        return self.weight.gather_rows(indices)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.dim = dim
        self.eps = eps
        self.gain = Tensor(init.ones((dim,)), requires_grad=True, name="ln_gain")
        self.shift = Tensor(init.zeros((dim,)), requires_grad=True, name="ln_shift")

    def forward(self, inputs: Tensor) -> Tensor:
        mean = inputs.mean(axis=-1, keepdims=True)
        centred = inputs - mean
        variance = (centred * centred).mean(axis=-1, keepdims=True)
        normalised = centred / (variance + self.eps).sqrt()
        return normalised * self.gain + self.shift


class Dropout(Module):
    """Inverted dropout driven by the module's own RNG stream."""

    def __init__(self, rate: float, rng: SeededRNG) -> None:
        super().__init__()
        self.rate = rate
        self._np_rng = rng.fork(77).np

    def forward(self, inputs: Tensor) -> Tensor:
        return F.dropout(inputs, self.rate, self._np_rng, self.training)


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, modules: Iterable[Module]) -> None:
        super().__init__()
        self.stages = list(modules)

    def forward(self, inputs: Tensor) -> Tensor:
        out = inputs
        for stage in self.stages:
            out = stage(out)
        return out


class MLP(Module):
    """Two-layer perceptron with a tanh non-linearity, used for model heads."""

    def __init__(self, in_features: int, hidden: int, out_features: int, rng: SeededRNG) -> None:
        super().__init__()
        self.first = Linear(in_features, hidden, rng.fork(1))
        self.second = Linear(hidden, out_features, rng.fork(2))

    def forward(self, inputs: Tensor) -> Tensor:
        return self.second(self.first(inputs).tanh())
