"""A reverse-mode automatic differentiation engine on top of NumPy.

The paper's models (gated graph neural networks, bidirectional GRUs, a path
encoder and the similarity/classification losses) are all expressed in terms
of a small set of differentiable tensor operations.  This module provides
those operations as methods on :class:`Tensor`, a thin wrapper around a
``numpy.ndarray`` that records the computation graph and can back-propagate
gradients through it.

Design notes
------------
* Gradients are accumulated into ``Tensor.grad`` (a plain ndarray) so the
  optimisers in :mod:`repro.nn.optim` can update parameters in place.
* Broadcasting is supported: each operation "unbroadcasts" its upstream
  gradient back to the operand's original shape.
* The graph is built eagerly; calling :meth:`Tensor.backward` performs a
  topological sort and runs each node's locally-defined backward closure.
* Only the operations the models need are implemented — this is a substrate
  for the reproduction, not a general deep-learning framework.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.nn.dtype import get_default_dtype, is_float_array
from repro.nn.segments import SegmentIndex

ArrayLike = Union[np.ndarray, float, int, list, tuple]

#: A sparse (row-indices, row-gradients) contribution to a leaf's gradient.
SparseGrad = tuple[np.ndarray, np.ndarray]


def _as_array(value: ArrayLike) -> np.ndarray:
    if is_float_array(value):
        return value
    if isinstance(value, np.ndarray):
        return value.astype(get_default_dtype())
    if isinstance(value, (np.float32, np.float64)):
        # Full reductions produce 0-d NumPy scalars; keep their dtype so a
        # float32 graph does not re-enter through the float64 default.
        return np.asarray(value)
    return np.asarray(value, dtype=get_default_dtype())


def _is_duplicate_free_index(index) -> bool:
    """Whether an index expression cannot select the same cell twice.

    Integers, slices, Ellipsis and boolean masks never repeat cells, so the
    gradient of ``__getitem__`` can accumulate with a plain ``+=`` instead of
    the much slower ``np.add.at``.  Integer arrays may repeat and keep the
    ``add.at`` path.
    """
    if isinstance(index, tuple):
        return all(_is_duplicate_free_index(part) for part in index)
    if isinstance(index, (int, np.integer, slice)) or index is Ellipsis or index is None:
        return True
    if isinstance(index, np.ndarray) and index.dtype == bool:
        return True
    return False


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra_dims = grad.ndim - len(shape)
    if extra_dims > 0:
        grad = grad.sum(axis=tuple(range(extra_dims)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, dim in enumerate(shape) if dim == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        The underlying values; converted to ``float64``.
    requires_grad:
        Whether gradients should be tracked for this tensor.  Leaf tensors
        created by layers set this to ``True``; constants default to ``False``.
    """

    __slots__ = ("data", "_grad", "grad_rows", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Sequence["Tensor"] = (),
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self._grad: Optional[np.ndarray] = None
        #: Sparse row-wise gradient contributions (leaf embedding tables only);
        #: coalesced by :meth:`coalesce_grad_rows` before the optimiser reads them.
        self.grad_rows: Optional[list[SparseGrad]] = None
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: tuple[Tensor, ...] = tuple(_parents)
        self.name = name

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def grad(self) -> Optional[np.ndarray]:
        """The dense gradient; pending sparse row contributions are folded in.

        The optimisers read the raw fields (``_grad`` / ``grad_rows``) so they
        can apply row-wise updates without ever materialising a full-table
        gradient; every other consumer sees the historical dense view.
        """
        if self.grad_rows:
            self.densify_grad()
        return self._grad

    @grad.setter
    def grad(self, value: Optional[np.ndarray]) -> None:
        self._grad = value
        if value is None:
            self.grad_rows = None

    # -- basic introspection ---------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but outside the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    # -- graph construction helpers --------------------------------------------

    @staticmethod
    def _lift(value: Union["Tensor", ArrayLike], dtype: Optional[np.dtype] = None) -> "Tensor":
        """Wrap a non-tensor operand, matching ``dtype`` for scalars/lists.

        Binary operations pass their tensor operand's dtype so Python scalars
        (``1.0 - update`` and friends) do not promote a float32 graph to
        float64 through the global default.
        """
        if isinstance(value, Tensor):
            return value
        if dtype is not None and not isinstance(value, np.ndarray):
            return Tensor(np.asarray(value, dtype=dtype))
        return Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _parents=parents if requires else ())
        if requires:
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, own: bool = False) -> None:
        """Add ``grad`` to this tensor's gradient.

        ``own=True`` asserts the caller computed ``grad`` freshly and holds no
        other reference, letting the first contribution adopt the array
        instead of copying it.  Closures that pass the upstream gradient
        through unchanged (add, reshape, slicing) must leave it ``False`` —
        adopting a shared array would alias two tensors' gradients.
        """
        if not self.requires_grad:
            return
        if self._grad is None:
            if (
                own
                and isinstance(grad, np.ndarray)
                and grad.dtype == self.data.dtype
                and grad.shape == self.data.shape
                and grad.base is None
                and grad.flags.writeable
            ):
                self._grad = grad
            else:
                # Materialise a private copy in one pass (cheaper than
                # zeros + iadd, and safe against upstream aliasing).
                self._grad = np.array(grad, dtype=self.data.dtype)
        else:
            self._grad += grad

    def _accumulate_at(self, index, grad: np.ndarray) -> None:
        """Accumulate ``grad`` into ``self.grad[index]`` without a dense buffer."""
        if not self.requires_grad:
            return
        if self._grad is None:
            self._grad = np.zeros_like(self.data)
        if _is_duplicate_free_index(index):
            self._grad[index] += grad
        else:
            np.add.at(self._grad, index, grad)

    def _accumulate_rows(self, indices: np.ndarray, grad: np.ndarray) -> None:
        """Record a sparse row-wise gradient contribution on a leaf tensor."""
        if not self.requires_grad:
            return
        if self.grad_rows is None:
            self.grad_rows = []
        self.grad_rows.append((indices, grad))

    def coalesce_grad_rows(self) -> Optional[SparseGrad]:
        """Merge recorded sparse contributions into one ``(unique_rows, grads)`` pair.

        Duplicate row indices are summed (in recording order per row, like a
        dense scatter-add would).  The coalesced pair replaces the recorded
        list so repeated calls — the gradient clipper and then the optimiser —
        do not re-reduce, and in-place scaling of the returned rows sticks.
        Returns ``None`` when no sparse contributions exist.
        """
        if not self.grad_rows:
            return None
        if len(self.grad_rows) == 1:
            indices, rows = self.grad_rows[0]
            if indices.size <= 1 or bool(np.all(indices[1:] > indices[:-1])):
                return self.grad_rows[0]
        all_indices = np.concatenate([indices for indices, _ in self.grad_rows])
        all_rows = np.concatenate([rows for _, rows in self.grad_rows], axis=0)
        unique, inverse = np.unique(all_indices, return_inverse=True)
        summed = np.zeros((unique.size,) + all_rows.shape[1:], dtype=self.data.dtype)
        np.add.at(summed, inverse, all_rows)
        self.grad_rows = [(unique, summed)]
        return self.grad_rows[0]

    def densify_grad(self) -> Optional[np.ndarray]:
        """Fold any sparse row contributions into a dense ``self.grad``.

        Used by optimisers when a parameter received both dense and sparse
        gradients in one step (e.g. an embedding table also used in a dense
        product), where per-row updates would no longer be equivalent.
        """
        sparse = self.coalesce_grad_rows()
        if sparse is not None:
            indices, rows = sparse
            if self._grad is None:
                self._grad = np.zeros_like(self.data)
            self._grad[indices] += rows
            self.grad_rows = None
        return self._grad

    # -- arithmetic -------------------------------------------------------------

    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other, self.data.dtype)
        out_data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(grad, other.shape))

        return self._make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad, own=True)

        return self._make(-self.data, (self,), backward)

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other, self.data.dtype)
        out_data = self.data - other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad, self.shape))
            other._accumulate(_unbroadcast(-grad, other.shape), own=True)

        return self._make(out_data, (self, other), backward)

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other, self.data.dtype) - self

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other, self.data.dtype)
        out_data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad * other.data, self.shape), own=True)
            other._accumulate(_unbroadcast(grad * self.data, other.shape), own=True)

        return self._make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other, self.data.dtype)
        out_data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(_unbroadcast(grad / other.data, self.shape), own=True)
            other._accumulate(
                _unbroadcast(-grad * self.data / (other.data**2), other.shape), own=True
            )

        return self._make(out_data, (self, other), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return self._lift(other, self.data.dtype) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data**exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1), own=True)

        return self._make(out_data, (self,), backward)

    def __matmul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._lift(other, self.data.dtype)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1 else grad[..., None] * other.data, own=True)
                else:
                    self._accumulate(_unbroadcast(grad @ other.data.swapaxes(-1, -2), self.shape), own=True)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if grad.ndim == 1 else self.data[..., None] @ grad[None, ...], own=True)
                else:
                    other._accumulate(_unbroadcast(self.data.swapaxes(-1, -2) @ grad, other.shape), own=True)

        return self._make(out_data, (self, other), backward)

    # -- elementwise non-linearities ---------------------------------------------

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data, own=True)

        return self._make(out_data, (self,), backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data, own=True)

        return self._make(out_data, (self,), backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2), own=True)

        return self._make(out_data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data), own=True)

        return self._make(out_data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask, own=True)

        return self._make(out_data, (self,), backward)

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out_data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * sign, own=True)

        return self._make(out_data, (self,), backward)

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / np.maximum(out_data, 1e-12), own=True)

        return self._make(out_data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out_data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * mask, own=True)

        return self._make(out_data, (self,), backward)

    # -- reductions ---------------------------------------------------------------

    def sum(self, axis: Optional[Union[int, tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy(), own=True)

        return self._make(out_data, (self,), backward)

    def mean(self, axis: Optional[Union[int, tuple[int, ...]]] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.mean(axis=axis, keepdims=keepdims)
        count = self.data.size if axis is None else np.prod(
            [self.data.shape[a] for a in ((axis,) if isinstance(axis, int) else axis)]
        )

        def backward(grad: np.ndarray) -> None:
            g = grad / count
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else axis
                for ax in sorted(a % self.data.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            self._accumulate(np.broadcast_to(g, self.shape).copy(), own=True)

        return self._make(out_data, (self,), backward)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = out_data if keepdims else np.expand_dims(out_data, axis)
            mask = (self.data == expanded).astype(self.data.dtype)
            # Split gradient equally among ties to keep the operation well-defined.
            mask /= np.maximum(mask.sum(axis=axis, keepdims=True), 1.0)
            g = grad if keepdims else np.expand_dims(grad, axis)
            self._accumulate(mask * g, own=True)

        return self._make(out_data, (self,), backward)

    # -- shape manipulation ----------------------------------------------------------

    def reshape(self, *shape: int) -> "Tensor":
        out_data = self.data.reshape(*shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.shape))

        return self._make(out_data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        axes_t = axes if axes else tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes_t)
        inverse = np.argsort(axes_t)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return self._make(out_data, (self,), backward)

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            self._accumulate_at(index, grad)

        return self._make(out_data, (self,), backward)

    def gather_rows(self, indices: np.ndarray, scatter_index: Optional[SegmentIndex] = None) -> "Tensor":
        """Select rows by integer index (embedding-style lookup).

        Unlike ``__getitem__`` with an ndarray index this keeps the index as a
        first-class argument so repeated indices accumulate gradient
        correctly.  The backward pass picks the cheapest correct scatter:

        * **leaf tensors** (embedding tables) record a sparse
          ``(indices, rows)`` contribution instead of densifying into a
          full-table buffer — the optimiser then updates only touched rows;
        * non-leaf tensors scatter through ``scatter_index`` (a precomputed
          :class:`~repro.nn.segments.SegmentIndex` over ``indices``, e.g.
          from a compiled batch plan) when provided, falling back to
          ``np.add.at`` otherwise.
        """
        idx = np.asarray(indices, dtype=np.int64)
        out_data = self.data[idx]
        is_leaf = self._backward is None and not self._parents

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            if is_leaf and idx.ndim == 1:
                self._accumulate_rows(idx, grad)
            elif scatter_index is not None and idx.ndim == 1:
                if self._grad is None:
                    self._grad = np.zeros_like(self.data)
                scatter_index.scatter_add(self._grad, grad)
            else:
                self._accumulate_at(idx, grad)

        return self._make(out_data, (self,), backward)

    # -- graph execution -----------------------------------------------------------

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Back-propagate from this tensor to all reachable parameters.

        Every backward closure accumulates its contribution directly into the
        parents' ``.grad`` fields, so processing nodes in reverse topological
        order guarantees each node's gradient is complete before it is
        consumed.  Gradients of intermediate (non-leaf) nodes are cleared at
        the end; only leaf parameters keep theirs for the optimiser.
        """
        if not self.requires_grad:
            raise ValueError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar output"
                )
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is None or node._grad is None:
                continue
            node._backward(node._grad)

        # Free gradients held by intermediate nodes; only leaves keep them.
        for node in topo:
            if node._parents:
                node.grad = None

    def zero_grad(self) -> None:
        self._grad = None
        self.grad_rows = None
