"""Recurrent layers: GRU cell and bidirectional GRU.

The DeepTyper-style baselines in the paper (the ``Seq*`` rows of Table 2)
use two layers of bidirectional GRUs with "consistency modules" in between.
The GRU cell here is also reused by the gated graph neural network, which
updates node states with a single GRU cell (Sec. 4.3).
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


class GRUCell(Module):
    """A gated recurrent unit cell operating on batches of vectors.

    Given inputs ``x`` of shape ``(batch, input_dim)`` and previous hidden
    state ``h`` of shape ``(batch, hidden_dim)``, produces the next hidden
    state.  This is the ``Gru(·,·)`` update function of the GGNN (Eq. 6).
    """

    def __init__(self, input_dim: int, hidden_dim: int, rng: SeededRNG) -> None:
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.w_input = Tensor(init.glorot_uniform(rng.fork(1), input_dim, 3 * hidden_dim), requires_grad=True)
        self.w_hidden = Tensor(init.glorot_uniform(rng.fork(2), hidden_dim, 3 * hidden_dim), requires_grad=True)
        self.bias = Tensor(init.zeros((3 * hidden_dim,)), requires_grad=True)

    def forward(self, inputs: Tensor, hidden: Tensor) -> Tensor:
        gates_x = inputs @ self.w_input + self.bias
        gates_h = hidden @ self.w_hidden
        h = self.hidden_dim

        update = (gates_x[:, 0:h] + gates_h[:, 0:h]).sigmoid()
        reset = (gates_x[:, h : 2 * h] + gates_h[:, h : 2 * h]).sigmoid()
        candidate = (gates_x[:, 2 * h : 3 * h] + reset * gates_h[:, 2 * h : 3 * h]).tanh()
        return update * hidden + (1.0 - update) * candidate

    def initial_state(self, batch: int) -> Tensor:
        return Tensor(np.zeros((batch, self.hidden_dim), dtype=self.w_hidden.data.dtype))


class GRU(Module):
    """Unidirectional GRU over a sequence ``(seq_len, batch, input_dim)``."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: SeededRNG, reverse: bool = False) -> None:
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng)
        self.reverse = reverse

    def forward(self, sequence: Tensor) -> Tensor:
        seq_len = sequence.shape[0]
        batch = sequence.shape[1]
        hidden = self.cell.initial_state(batch)
        order = range(seq_len - 1, -1, -1) if self.reverse else range(seq_len)
        outputs: list[Tensor] = [None] * seq_len  # type: ignore[list-item]
        for t in order:
            hidden = self.cell(sequence[t], hidden)
            outputs[t] = hidden
        return F.stack(outputs, axis=0)


class BiGRU(Module):
    """Bidirectional GRU: concatenation of a forward and a backward GRU."""

    def __init__(self, input_dim: int, hidden_dim: int, rng: SeededRNG) -> None:
        super().__init__()
        self.forward_rnn = GRU(input_dim, hidden_dim, rng.fork(1), reverse=False)
        self.backward_rnn = GRU(input_dim, hidden_dim, rng.fork(2), reverse=True)
        self.output_dim = 2 * hidden_dim

    def forward(self, sequence: Tensor) -> Tensor:
        fwd = self.forward_rnn(sequence)
        bwd = self.backward_rnn(sequence)
        return F.concatenate([fwd, bwd], axis=-1)
