"""A small NumPy-based neural network substrate.

The original Typilus implementation builds on a GPU deep-learning framework;
this package replaces it with a CPU reverse-mode autodiff engine plus the
handful of layers the paper's models need (linear, embedding, GRU, 1-D CNN,
layer norm) and the Adam optimiser.  See DESIGN.md for the substitution
rationale.
"""

from repro.nn import functional, serialization
from repro.nn.conv import CharCNNEncoder, Conv1D
from repro.nn.dtype import (
    default_dtype,
    get_default_dtype,
    resolve_dtype,
    set_default_dtype,
)
from repro.nn.segments import SegmentIndex
from repro.nn.layers import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Sequential,
)
from repro.nn.optim import Adam, Optimizer, SGD
from repro.nn.rnn import BiGRU, GRU, GRUCell
from repro.nn.tensor import Tensor

__all__ = [
    "Tensor",
    "Module",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "Sequential",
    "MLP",
    "GRUCell",
    "GRU",
    "BiGRU",
    "Conv1D",
    "CharCNNEncoder",
    "Optimizer",
    "SGD",
    "Adam",
    "SegmentIndex",
    "default_dtype",
    "get_default_dtype",
    "resolve_dtype",
    "set_default_dtype",
    "functional",
    "serialization",
]
