"""Process-wide default floating dtype of the nn substrate.

The autograd engine historically pinned every array to ``float64``.  The
speed experiment (Sec. 6.1) does not need double precision — training in
``float32`` halves memory traffic and roughly doubles BLAS/transcendental
throughput on CPU — but the reproduction's exactness tests do: the compiled
training plan must replay the eager float64 loss trajectory bit-for-bit.

This module therefore makes the dtype a configuration instead of a constant:

* :func:`get_default_dtype` / :func:`set_default_dtype` control the dtype
  used when tensors, parameters and gradient buffers are materialised from
  non-float data (the library default stays ``float64`` so existing numeric
  tests keep their historical precision);
* :func:`default_dtype` scopes a change to a ``with`` block;
* :func:`resolve_dtype` normalises user-facing spellings (``"float32"``,
  ``np.float32``, ``None`` for "current default") and rejects anything that
  is not a supported floating dtype.

Training code (``repro.core.trainer``) selects its dtype per run via
``TrainingConfig.dtype`` and casts the model with
:meth:`repro.nn.layers.Module.to_dtype`, so two trainers with different
dtypes can coexist in one process.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Union

import numpy as np

DTypeLike = Union[str, np.dtype, type, None]

#: The floating dtypes the substrate supports.
SUPPORTED_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))

_default_dtype = np.dtype(np.float64)


def resolve_dtype(dtype: DTypeLike) -> np.dtype:
    """Normalise ``dtype`` to a supported ``np.dtype``; ``None`` → current default."""
    if dtype is None:
        return _default_dtype
    resolved = np.dtype(dtype)
    if resolved not in SUPPORTED_DTYPES:
        supported = ", ".join(d.name for d in SUPPORTED_DTYPES)
        raise ValueError(f"unsupported dtype {resolved.name!r}; expected one of: {supported}")
    return resolved


def get_default_dtype() -> np.dtype:
    """The dtype new tensors and parameters are created with."""
    return _default_dtype


def set_default_dtype(dtype: DTypeLike) -> np.dtype:
    """Set the default dtype; returns the previous default (for restoring)."""
    global _default_dtype
    previous = _default_dtype
    _default_dtype = resolve_dtype(dtype)
    return previous


@contextmanager
def default_dtype(dtype: DTypeLike) -> Iterator[np.dtype]:
    """Temporarily switch the default dtype within a ``with`` block."""
    previous = set_default_dtype(dtype)
    try:
        yield _default_dtype
    finally:
        set_default_dtype(previous)


def is_float_array(value: object) -> bool:
    """Whether ``value`` is an ndarray of a supported floating dtype."""
    return isinstance(value, np.ndarray) and value.dtype in SUPPORTED_DTYPES
