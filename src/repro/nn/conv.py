"""1-D character convolution used by the character-level node initialiser.

Table 4 of the paper compares three initial node representations for the
GNN: subtoken averages, whole-token embeddings, and a character-level 1-D
CNN (Kim et al. 2016).  This module implements the CNN variant: embed each
character, convolve over the character axis with several filter widths,
apply max-over-time pooling and project to the node dimension.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.layers import Embedding, Linear, Module
from repro.nn.tensor import Tensor
from repro.utils.rng import SeededRNG


class Conv1D(Module):
    """A single 1-D convolution over sequences of shape ``(batch, steps, dim)``."""

    def __init__(self, in_dim: int, out_dim: int, kernel_size: int, rng: SeededRNG) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.in_dim = in_dim
        self.out_dim = out_dim
        self.weight = Tensor(
            init.glorot_uniform(rng, kernel_size * in_dim, out_dim), requires_grad=True
        )
        self.bias = Tensor(init.zeros((out_dim,)), requires_grad=True)

    def forward(self, inputs: Tensor) -> Tensor:
        batch, steps, dim = inputs.shape
        if steps < self.kernel_size:
            raise ValueError(
                f"sequence of length {steps} is shorter than kernel size {self.kernel_size}"
            )
        windows = []
        for start in range(steps - self.kernel_size + 1):
            window = inputs[:, start : start + self.kernel_size, :].reshape(
                batch, self.kernel_size * dim
            )
            windows.append(window)
        stacked = F.stack(windows, axis=1)  # (batch, positions, k*dim)
        positions = stacked.shape[1]
        flat = stacked.reshape(batch * positions, self.kernel_size * dim)
        out = (flat @ self.weight + self.bias).reshape(batch, positions, self.out_dim)
        return out


class CharCNNEncoder(Module):
    """Character CNN producing one vector per identifier string."""

    def __init__(
        self,
        alphabet_size: int,
        char_dim: int,
        out_dim: int,
        rng: SeededRNG,
        kernel_sizes: tuple[int, ...] = (2, 3),
        max_chars: int = 16,
    ) -> None:
        super().__init__()
        self.max_chars = max(max_chars, max(kernel_sizes))
        self.char_embedding = Embedding(alphabet_size, char_dim, rng.fork(1))
        self.convs = [
            Conv1D(char_dim, out_dim, k, rng.fork(10 + k)) for k in kernel_sizes
        ]
        self.project = Linear(out_dim * len(kernel_sizes), out_dim, rng.fork(2))

    def forward(self, char_ids: np.ndarray) -> Tensor:
        """Encode a batch of padded character-id matrices ``(batch, max_chars)``."""
        char_ids = np.asarray(char_ids, dtype=np.int64)
        batch = char_ids.shape[0]
        embedded = self.char_embedding(char_ids.reshape(-1)).reshape(
            batch, char_ids.shape[1], self.char_embedding.dim
        )
        pooled = []
        for conv in self.convs:
            convolved = conv(embedded).relu()
            pooled.append(convolved.max(axis=1))
        return self.project(F.concatenate(pooled, axis=-1)).tanh()
