"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These cover the pieces of the models that are not naturally methods on a
single tensor: softmax/cross-entropy, concatenation and stacking, and the
segment operations that graph neural networks use to aggregate messages
per target node (the paper uses element-wise *max* aggregation, Sec. 4.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.tensor import Tensor


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets`` under ``logits``.

    This is the classification loss of Eq. 1 in the paper: the logits are
    ``r_s · r̃_τ + b_τ`` for each candidate type τ and ``targets`` holds the
    index of the ground-truth type.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects logits of shape (batch, classes)")
    log_probs = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return -picked.mean()


def nll_of_probabilities(probabilities: Tensor, targets: np.ndarray, eps: float = 1e-12) -> Tensor:
    """Mean negative log of already-normalised probabilities."""
    targets = np.asarray(targets, dtype=np.int64)
    batch = probabilities.shape[0]
    picked = probabilities[np.arange(batch), targets]
    return -(picked + eps).log().mean()


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot concatenate an empty sequence of tensors")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tensors if requires else ())
    if requires:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, end)
                tensor._accumulate(grad[tuple(slicer)])

        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shaped tensors along a new axis."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot stack an empty sequence of tensors")
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tensors if requires else ())
    if requires:

        def backward(grad: np.ndarray) -> None:
            moved = np.moveaxis(grad, axis, 0)
            for i, tensor in enumerate(tensors):
                tensor._accumulate(moved[i])

        out._backward = backward
    return out


def segment_sum(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Sum rows of ``values`` that share a segment id.

    ``values`` has shape ``(N, D)`` and the result has shape
    ``(num_segments, D)``.  Used for sum-style message aggregation and for
    pooling subtoken embeddings per node (Eq. 7 uses the mean, built on this).
    """
    ids = np.asarray(segment_ids, dtype=np.int64)
    data = np.zeros((num_segments,) + values.shape[1:], dtype=np.float64)
    np.add.at(data, ids, values.data)
    requires = values.requires_grad
    out = Tensor(data, requires_grad=requires, _parents=(values,) if requires else ())
    if requires:

        def backward(grad: np.ndarray) -> None:
            values._accumulate(grad[ids])

        out._backward = backward
    return out


def segment_mean(values: Tensor, segment_ids: np.ndarray, num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments produce zeros."""
    ids = np.asarray(segment_ids, dtype=np.int64)
    counts = np.bincount(ids, minlength=num_segments).astype(np.float64)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (values.ndim - 1))
    summed = segment_sum(values, ids, num_segments)
    return summed / Tensor(counts)


def segment_max(values: Tensor, segment_ids: np.ndarray, num_segments: int, empty_value: float = 0.0) -> Tensor:
    """Element-wise max of rows per segment (the paper's ⊕ operator).

    Empty segments receive ``empty_value`` (no incoming message for the node).
    Gradient flows only to the rows that achieved the maximum; ties split the
    gradient equally.
    """
    ids = np.asarray(segment_ids, dtype=np.int64)
    data = np.full((num_segments,) + values.shape[1:], -np.inf, dtype=np.float64)
    np.maximum.at(data, ids, values.data)
    empty_mask = ~np.isfinite(data)
    data[empty_mask] = empty_value

    requires = values.requires_grad
    out = Tensor(data, requires_grad=requires, _parents=(values,) if requires else ())
    if requires:

        def backward(grad: np.ndarray) -> None:
            winners = (values.data == data[ids]).astype(np.float64)
            # Divide gradient among ties within each segment.
            tie_counts = np.zeros_like(data)
            np.add.at(tie_counts, ids, winners)
            denom = np.maximum(tie_counts[ids], 1.0)
            values._accumulate(grad[ids] * winners / denom)

        out._backward = backward
    return out


def dropout(values: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; a no-op when not training or ``rate`` is zero."""
    if not training or rate <= 0.0:
        return values
    keep = 1.0 - rate
    mask = (rng.random(values.shape) < keep).astype(np.float64) / keep
    return values * Tensor(mask)


def pairwise_l1_distances(a: Tensor, b: Tensor) -> Tensor:
    """All-pairs L1 (Manhattan) distances between rows of ``a`` and ``b``.

    The similarity loss (Eq. 3) and the kNN prediction (Eq. 5) both use the
    L1 distance, following the paper.  Returns shape ``(len(a), len(b))``.
    """
    # (N, 1, D) - (1, M, D) -> (N, M, D); |.| summed over D.
    n, d = a.shape
    m = b.shape[0]
    a3 = a.reshape(n, 1, d)
    b3 = b.reshape(1, m, d)
    return (a3 - b3).abs().sum(axis=2)
