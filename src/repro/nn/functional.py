"""Functional operations built on :class:`repro.nn.tensor.Tensor`.

These cover the pieces of the models that are not naturally methods on a
single tensor: softmax/cross-entropy, concatenation and stacking, and the
segment operations that graph neural networks use to aggregate messages
per target node (the paper uses element-wise *max* aggregation, Sec. 4.3).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.nn.segments import SegmentIds, as_segment_index
from repro.nn.tensor import Tensor


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = logits - Tensor(logits.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood of integer ``targets`` under ``logits``.

    This is the classification loss of Eq. 1 in the paper: the logits are
    ``r_s · r̃_τ + b_τ`` for each candidate type τ and ``targets`` holds the
    index of the ground-truth type.
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects logits of shape (batch, classes)")
    log_probs = log_softmax(logits, axis=-1)
    batch = logits.shape[0]
    picked = log_probs[np.arange(batch), targets]
    return -picked.mean()


def nll_of_probabilities(probabilities: Tensor, targets: np.ndarray, eps: float = 1e-12) -> Tensor:
    """Mean negative log of already-normalised probabilities."""
    targets = np.asarray(targets, dtype=np.int64)
    batch = probabilities.shape[0]
    picked = probabilities[np.arange(batch), targets]
    return -(picked + eps).log().mean()


def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient routing to each input."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot concatenate an empty sequence of tensors")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tensors if requires else ())
    if requires:
        sizes = [t.data.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad: np.ndarray) -> None:
            for tensor, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, end)
                tensor._accumulate(grad[tuple(slicer)])

        out._backward = backward
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack same-shaped tensors along a new axis."""
    tensors = list(tensors)
    if not tensors:
        raise ValueError("cannot stack an empty sequence of tensors")
    data = np.stack([t.data for t in tensors], axis=axis)
    requires = any(t.requires_grad for t in tensors)
    out = Tensor(data, requires_grad=requires, _parents=tensors if requires else ())
    if requires:

        def backward(grad: np.ndarray) -> None:
            moved = np.moveaxis(grad, axis, 0)
            for i, tensor in enumerate(tensors):
                tensor._accumulate(moved[i])

        out._backward = backward
    return out


def block_linear(inputs: Tensor, weights: Sequence[Tensor], blocks: Sequence[slice]) -> Tensor:
    """Apply a different weight matrix to each contiguous row block of ``inputs``.

    The GGNN transforms each edge kind's (and direction's) gathered source
    states with its own learned map — up to 18 separate matmul/slice/concat
    autograd nodes per propagation step when written naively.  This fuses
    them into **one** node: the forward writes each block's GEMM straight
    into the output buffer, and the backward fills the input gradient
    blockwise and accumulates each weight's gradient, with no intermediate
    tensors.  Values and gradients are identical to the per-block spelling.

    ``blocks[i]`` selects the rows transformed by ``weights[i]``; blocks must
    tile ``inputs`` contiguously (as produced by a message plan).
    """
    if len(weights) != len(blocks):
        raise ValueError("weights and blocks must align")
    if not weights:
        raise ValueError("block_linear requires at least one block")
    cursor = 0
    for rows in blocks:
        if rows.start != cursor or rows.stop < rows.start or rows.step not in (None, 1):
            raise ValueError(
                f"blocks must tile the input rows contiguously; got {rows} at offset {cursor}"
            )
        cursor = rows.stop
    if cursor != inputs.shape[0]:
        raise ValueError(f"blocks cover {cursor} rows but inputs have {inputs.shape[0]}")
    out_dim = weights[0].shape[1]
    data = np.empty((inputs.shape[0], out_dim), dtype=inputs.data.dtype)
    for weight, rows in zip(weights, blocks):
        np.matmul(inputs.data[rows], weight.data, out=data[rows])

    parents = (inputs, *weights)
    requires = any(parent.requires_grad for parent in parents)
    out = Tensor(data, requires_grad=requires, _parents=parents if requires else ())
    if requires:

        def backward(grad: np.ndarray) -> None:
            if inputs.requires_grad:
                input_grad = np.empty_like(inputs.data)
                for weight, rows in zip(weights, blocks):
                    np.matmul(grad[rows], weight.data.T, out=input_grad[rows])
                inputs._accumulate(input_grad, own=True)
            for weight, rows in zip(weights, blocks):
                if weight.requires_grad:
                    weight._accumulate(inputs.data[rows].T @ grad[rows], own=True)

        out._backward = backward
    return out


def segment_sum(values: Tensor, segment_ids: SegmentIds, num_segments: int) -> Tensor:
    """Sum rows of ``values`` that share a segment id.

    ``values`` has shape ``(N, D)`` and the result has shape
    ``(num_segments, D)``.  Used for sum-style message aggregation and for
    pooling subtoken embeddings per node (Eq. 7 uses the mean, built on this).

    ``segment_ids`` may be a raw id array or a precomputed
    :class:`~repro.nn.segments.SegmentIndex` (compiled batch plans pass the
    latter so the sort is paid once per batch, not once per call).
    """
    index = as_segment_index(segment_ids, num_segments)
    data = index.sum(values.data)
    requires = values.requires_grad
    out = Tensor(data, requires_grad=requires, _parents=(values,) if requires else ())
    if requires:

        def backward(grad: np.ndarray) -> None:
            values._accumulate(grad[index.ids])

        out._backward = backward
    return out


def segment_mean(values: Tensor, segment_ids: SegmentIds, num_segments: int) -> Tensor:
    """Mean of rows per segment; empty segments produce zeros."""
    index = as_segment_index(segment_ids, num_segments)
    counts = index.dense_counts(dtype=values.data.dtype)
    counts = np.maximum(counts, 1.0).reshape((num_segments,) + (1,) * (values.ndim - 1))
    summed = segment_sum(values, index, num_segments)
    return summed / Tensor(counts)


def segment_max(values: Tensor, segment_ids: SegmentIds, num_segments: int, empty_value: float = 0.0) -> Tensor:
    """Element-wise max of rows per segment (the paper's ⊕ operator).

    Empty segments receive ``empty_value`` (no incoming message for the node).
    Gradient flows only to the rows that achieved the maximum; ties split the
    gradient equally.
    """
    index = as_segment_index(segment_ids, num_segments)
    data, _ = index.max(values.data, empty_value=empty_value)
    requires = values.requires_grad
    out = Tensor(data, requires_grad=requires, _parents=(values,) if requires else ())
    if requires:
        cells_per_segment = int(np.prod(values.shape[1:], dtype=np.int64)) if values.ndim > 1 else 1

        def backward(grad: np.ndarray) -> None:
            gathered = data[index.ids]
            winners = values.data == gathered
            upstream = grad[index.ids]
            # Every non-empty (segment, cell) has at least one winner, so the
            # winner count equals the non-empty cell count exactly when there
            # are no ties — in which case the tie-splitting scatter (a full
            # ``(num_segments, D)`` buffer plus an ``add.at``) is skipped.
            if int(winners.sum()) == index.num_nonempty * cells_per_segment:
                values._accumulate(upstream * winners)
            else:
                tie_counts = index.sum(winners.astype(data.dtype))
                denom = np.maximum(tie_counts[index.ids], 1.0)
                values._accumulate(upstream * winners / denom)

        out._backward = backward
    return out


def dropout(values: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout; a no-op when not training or ``rate`` is zero."""
    if not training or rate <= 0.0:
        return values
    keep = 1.0 - rate
    mask = (rng.random(values.shape) < keep).astype(values.data.dtype) / keep
    return values * Tensor(mask)


#: Cap on the number of elements a single ``(chunk, M, D)`` broadcast of
#: :func:`pairwise_l1_distances` may allocate (~32 MiB of float64).
PAIRWISE_CHUNK_ELEMENTS = 4_194_304


def pairwise_l1_distances(a: Tensor, b: Tensor, max_elements: int = PAIRWISE_CHUNK_ELEMENTS) -> Tensor:
    """All-pairs L1 (Manhattan) distances between rows of ``a`` and ``b``.

    The similarity loss (Eq. 3) and the kNN prediction (Eq. 5) both use the
    L1 distance, following the paper.  Returns shape ``(len(a), len(b))``.

    The naive broadcast materialises an ``(N, M, D)`` intermediate, which
    grows cubically with the batch; when it would exceed ``max_elements``
    the rows of ``a`` are processed in chunks so peak memory stays bounded.
    Each row's distances (and gradients) are independent of the chunking, so
    the result is identical either way.
    """
    n, d = a.shape
    m = b.shape[0]
    b3 = b.reshape(1, m, d)
    if n * m * d <= max_elements or n <= 1:
        a3 = a.reshape(n, 1, d)
        return (a3 - b3).abs().sum(axis=2)
    rows_per_chunk = max(1, max_elements // max(m * d, 1))
    chunks: list[Tensor] = []
    for start in range(0, n, rows_per_chunk):
        stop = min(start + rows_per_chunk, n)
        a3 = a[start:stop].reshape(stop - start, 1, d)
        chunks.append((a3 - b3).abs().sum(axis=2))
    return concatenate(chunks, axis=0)
