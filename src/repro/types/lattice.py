"""Subtyping lattice and the type-neutrality approximation.

Sec. 6.1 of the paper approximates type neutrality without running a type
checker: all types observed in the corpus are preprocessed (deep parameters
rewritten to ``Any``), arranged into a hierarchy assuming universal
covariance, and a prediction ``τp`` is *neutral* with the ground truth
``τg`` iff ``τg :< τp`` and ``τp ≠ ⊤`` in that hierarchy.

The lattice combines

* nominal subtyping edges — builtin defaults (``bool :< int :< float``,
  every concrete container under its abstract protocol) plus any edges
  registered from corpus class definitions (``class Dog(Animal)``);
* structural rules for parametric types under universal covariance
  (``List[int] :< List[object]``, ``List[int] :< List``);
* ``Optional``/``Union`` rules (``T :< Optional[T]``, a union is a subtype
  of ``T`` iff all members are, ``T`` is a subtype of a union iff it is a
  subtype of some member);
* ``Any`` as the top element and ``None`` subtype only of ``Optional``/top.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.types.expr import TypeExpr
from repro.types.normalize import canonicalise
from repro.types.parser import try_parse_type

#: Built-in nominal edges: sub → list of direct supertypes.
_DEFAULT_NOMINAL_EDGES: dict[str, tuple[str, ...]] = {
    "bool": ("int",),
    "int": ("float",),
    "float": ("complex",),
    "bytearray": ("bytes",),
    "List": ("Sequence", "MutableSequence"),
    "Tuple": ("Sequence",),
    "str": ("Sequence",),
    "bytes": ("Sequence",),
    "MutableSequence": ("Sequence",),
    "Sequence": ("Collection", "Iterable"),
    "Set": ("AbstractSet", "Collection"),
    "FrozenSet": ("AbstractSet", "Collection"),
    "AbstractSet": ("Collection",),
    "Dict": ("Mapping", "MutableMapping"),
    "MutableMapping": ("Mapping",),
    "Mapping": ("Collection",),
    "Collection": ("Iterable", "Container", "Sized"),
    "Iterator": ("Iterable",),
    "Generator": ("Iterator",),
    "object": (),
}

#: Names that never count as informative predictions.
TOP_NAMES = frozenset({"Any", "object"})


class TypeLattice:
    """The subtyping relation used for the type-neutrality metric."""

    def __init__(self, numeric_tower: bool = True) -> None:
        self._supertypes: dict[str, set[str]] = {}
        for sub, supers in _DEFAULT_NOMINAL_EDGES.items():
            if not numeric_tower and sub in ("bool", "int", "float"):
                continue
            for sup in supers:
                self.add_nominal_edge(sub, sup)

    # -- construction ---------------------------------------------------------

    def add_nominal_edge(self, subtype: str, supertype: str) -> None:
        """Register ``class subtype(supertype)``-style nominal subtyping."""
        if subtype == supertype:
            return
        self._supertypes.setdefault(subtype, set()).add(supertype)

    def add_class_hierarchy(self, edges: Iterable[tuple[str, str]]) -> None:
        for subtype, supertype in edges:
            self.add_nominal_edge(subtype, supertype)

    # -- nominal reachability ---------------------------------------------------

    def nominal_supertypes(self, name: str) -> set[str]:
        """All nominal supertypes of ``name`` (reflexive, transitive)."""
        seen: set[str] = {name}
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for parent in self._supertypes.get(current, ()):  # direct edges
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
        seen.add("object")
        return seen

    def is_nominal_subtype(self, sub: str, sup: str) -> bool:
        if sup in TOP_NAMES:
            return True
        return sup in self.nominal_supertypes(sub)

    # -- structural subtyping ----------------------------------------------------

    def is_subtype(self, sub: TypeExpr, sup: TypeExpr) -> bool:
        """Whether ``sub :< sup`` under universal covariance."""
        sub = canonicalise(sub)
        sup = canonicalise(sup)
        return self._is_subtype(sub, sup)

    def _is_subtype(self, sub: TypeExpr, sup: TypeExpr) -> bool:
        if sup.is_any or sup.name == "object" and not sup.args:
            return True
        if sub.is_any:
            # Any is treated as compatible in both directions by optional
            # checkers; for the lattice we only allow it below the top.
            return sup.is_any or sup.name == "object"
        if sub == sup:
            return True

        # Unions / optionals on the left: every member must fit.
        if sub.is_union:
            return all(self._is_subtype(member, sup) for member in sub.args)
        if sub.is_optional:
            inner = sub.args[0] if sub.args else TypeExpr("Any")
            if sup.is_optional:
                sup_inner = sup.args[0] if sup.args else TypeExpr("Any")
                return self._is_subtype(inner, sup_inner)
            return False  # an optional value may be None, so a bare sup does not cover it

        # Unions / optionals on the right: fitting one member suffices.
        if sup.is_optional:
            if sub.is_none:
                return True
            sup_inner = sup.args[0] if sup.args else TypeExpr("Any")
            return self._is_subtype(sub, sup_inner)
        if sup.is_union:
            return any(self._is_subtype(sub, member) for member in sup.args)
        if sub.is_none:
            return False

        # Parametric against bare base: List[int] :< List, List[int] :< Sequence.
        if not sup.args:
            return self.is_nominal_subtype(sub.name, sup.name)

        # Parametric against parametric: nominal bases plus covariant arguments.
        if not self.is_nominal_subtype(sub.name, sup.name):
            return False
        if not sub.args:
            # A bare base is treated like base[Any, ...]; universal covariance
            # then requires the supertype's arguments to be Any-compatible.
            return all(arg.is_any for arg in sup.args)
        if len(sub.args) != len(sup.args):
            # Tolerate arity mismatches involving ellipsis (Tuple[int, ...]).
            if any(arg.name == "..." for arg in sub.args + sup.args):
                return all(
                    self._is_subtype(sa, sp)
                    for sa, sp in zip(sub.args, sup.args)
                    if sa.name != "..." and sp.name != "..."
                )
            return False
        return all(self._is_subtype(sa, sp) for sa, sp in zip(sub.args, sup.args))

    # -- neutrality ------------------------------------------------------------------

    def is_type_neutral(self, prediction: TypeExpr, ground_truth: TypeExpr) -> bool:
        """The paper's heuristic: ``τg :< τp`` and ``τp`` is not the top type."""
        prediction = canonicalise(prediction, max_depth=2)
        ground_truth = canonicalise(ground_truth, max_depth=2)
        if prediction.is_any or (prediction.name == "object" and not prediction.args):
            return False
        if prediction == ground_truth:
            return True
        return self._is_subtype(ground_truth, prediction)

    def is_type_neutral_str(self, prediction: str, ground_truth: str) -> bool:
        """String-level convenience used by the metrics module."""
        predicted = try_parse_type(prediction)
        truth = try_parse_type(ground_truth)
        if predicted is None or truth is None:
            return prediction == ground_truth
        return self.is_type_neutral(predicted, truth)


def lattice_from_class_edges(edges: Iterable[tuple[str, str]]) -> TypeLattice:
    """Build a lattice seeded with the corpus' user-defined class hierarchy."""
    lattice = TypeLattice()
    lattice.add_class_hierarchy(edges)
    return lattice
