"""Structured representation of Python type annotations.

Annotations collected from source are strings (``"Dict[str, List[int]]"``).
The evaluation metrics, the type-parameter erasure of Eq. 4 and the
type-neutrality check all need a structured view of those strings, which
:class:`TypeExpr` provides: a name plus a (possibly empty) tuple of argument
expressions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

#: Canonical names for builtin containers written in lowercase in source.
_CANONICAL_NAMES = {
    "list": "List",
    "dict": "Dict",
    "set": "Set",
    "tuple": "Tuple",
    "frozenset": "FrozenSet",
    "type": "Type",
    "typing.List": "List",
    "typing.Dict": "Dict",
    "typing.Set": "Set",
    "typing.Tuple": "Tuple",
    "typing.FrozenSet": "FrozenSet",
    "typing.Optional": "Optional",
    "typing.Union": "Union",
    "typing.Any": "Any",
    "typing.Callable": "Callable",
    "typing.Iterable": "Iterable",
    "typing.Iterator": "Iterator",
    "typing.Sequence": "Sequence",
    "typing.Mapping": "Mapping",
    "typing.Type": "Type",
}

#: The top element of the optional type lattice.
ANY_NAME = "Any"
NONE_NAME = "None"
ELLIPSIS_NAME = "..."


def canonical_name(name: str) -> str:
    """Map aliases (``list``, ``typing.List``) onto a canonical spelling."""
    return _CANONICAL_NAMES.get(name, name)


@dataclass(frozen=True)
class TypeExpr:
    """An immutable type expression: a name applied to argument expressions."""

    name: str
    args: tuple["TypeExpr", ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", canonical_name(self.name))

    # -- constructors --------------------------------------------------------------

    @staticmethod
    def atom(name: str) -> "TypeExpr":
        return TypeExpr(name=name)

    @staticmethod
    def generic(name: str, *args: "TypeExpr") -> "TypeExpr":
        return TypeExpr(name=name, args=tuple(args))

    # -- structure -----------------------------------------------------------------

    @property
    def is_parametric(self) -> bool:
        return bool(self.args)

    @property
    def is_any(self) -> bool:
        return self.name == ANY_NAME and not self.args

    @property
    def is_none(self) -> bool:
        return self.name == NONE_NAME and not self.args

    @property
    def is_union(self) -> bool:
        return self.name == "Union"

    @property
    def is_optional(self) -> bool:
        return self.name == "Optional"

    def base(self) -> "TypeExpr":
        """The type with all parameters erased: ``Dict[str, int]`` → ``Dict``."""
        return TypeExpr(self.name)

    def depth(self) -> int:
        """Nesting depth of type parameters: ``int`` → 0, ``List[int]`` → 1."""
        if not self.args:
            return 0
        return 1 + max(arg.depth() for arg in self.args)

    def walk(self) -> Iterator["TypeExpr"]:
        """Yield this expression and, recursively, every argument expression."""
        yield self
        for arg in self.args:
            yield from arg.walk()

    def mentioned_names(self) -> set[str]:
        return {expr.name for expr in self.walk()}

    # -- rendering ---------------------------------------------------------------

    def __str__(self) -> str:
        if not self.args:
            return self.name
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}[{inner}]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TypeExpr({self!s})"


#: Frequently used atoms.
ANY = TypeExpr.atom(ANY_NAME)
NONE = TypeExpr.atom(NONE_NAME)
ELLIPSIS_TYPE = TypeExpr.atom(ELLIPSIS_NAME)
