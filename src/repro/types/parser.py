"""Parse annotation strings into :class:`~repro.types.expr.TypeExpr` values.

The grammar covers the annotation forms found in real Python code and in the
synthetic corpus::

    type      := dotted_name [ "[" arguments "]" ]
               | "None" | "..." | string_literal
    arguments := type ("," type)*
               | "[" arguments "]" ("," type)*      # Callable parameter lists

String-literal forward references (``"Widget"``) are unwrapped to their
contents.  PEP 604 unions (``int | None``) are normalised to ``Union`` /
``Optional`` expressions so downstream code only sees one spelling.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.types.expr import ELLIPSIS_TYPE, NONE, TypeExpr


class TypeParseError(ValueError):
    """Raised when an annotation string cannot be parsed."""


_TOKEN_PATTERN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z0-9_\.]*)|(?P<lbracket>\[)|(?P<rbracket>\])"
    r"|(?P<comma>,)|(?P<ellipsis>\.\.\.)|(?P<pipe>\|)|(?P<string>'[^']*'|\"[^\"]*\"))"
)


class _Tokenizer:
    def __init__(self, text: str) -> None:
        self.tokens: list[tuple[str, str]] = []
        position = 0
        stripped = text.strip()
        while position < len(stripped):
            match = _TOKEN_PATTERN.match(stripped, position)
            if match is None or match.end() == position:
                raise TypeParseError(f"unexpected character at {position!r} in {text!r}")
            position = match.end()
            kind = match.lastgroup or ""
            value = match.group(kind)
            self.tokens.append((kind, value))
        self.index = 0

    def peek(self) -> Optional[tuple[str, str]]:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise TypeParseError("unexpected end of annotation")
        self.index += 1
        return token

    def expect(self, kind: str) -> tuple[str, str]:
        token = self.advance()
        if token[0] != kind:
            raise TypeParseError(f"expected {kind}, found {token[1]!r}")
        return token

    @property
    def exhausted(self) -> bool:
        return self.index >= len(self.tokens)


def parse_type(text: str) -> TypeExpr:
    """Parse an annotation string into a :class:`TypeExpr`.

    Raises
    ------
    TypeParseError
        If the string is empty or malformed.
    """
    if text is None:
        raise TypeParseError("annotation is None")
    stripped = text.strip()
    if not stripped:
        raise TypeParseError("annotation is empty")
    tokenizer = _Tokenizer(stripped)
    expr = _parse_union(tokenizer)
    if not tokenizer.exhausted:
        leftover = tokenizer.peek()
        raise TypeParseError(f"trailing input {leftover!r} in {text!r}")
    return expr


def try_parse_type(text: str) -> Optional[TypeExpr]:
    """Like :func:`parse_type` but returns ``None`` instead of raising."""
    try:
        return parse_type(text)
    except TypeParseError:
        return None


def _parse_union(tokenizer: _Tokenizer) -> TypeExpr:
    """Parse ``A | B | None`` into Union/Optional expressions."""
    members = [_parse_single(tokenizer)]
    while True:
        token = tokenizer.peek()
        if token is None or token[0] != "pipe":
            break
        tokenizer.advance()
        members.append(_parse_single(tokenizer))
    if len(members) == 1:
        return members[0]
    non_none = [member for member in members if not member.is_none]
    if len(non_none) == len(members):
        return TypeExpr.generic("Union", *members)
    if len(non_none) == 1:
        return TypeExpr.generic("Optional", non_none[0])
    return TypeExpr.generic("Optional", TypeExpr.generic("Union", *non_none))


def _parse_single(tokenizer: _Tokenizer) -> TypeExpr:
    kind, value = tokenizer.advance()
    if kind == "ellipsis":
        return ELLIPSIS_TYPE
    if kind == "string":
        inner = value[1:-1].strip()
        if not inner:
            raise TypeParseError("empty forward reference")
        return parse_type(inner)
    if kind == "lbracket":
        # A bare bracketed list appears as the first argument of Callable.
        args = _parse_arguments(tokenizer)
        tokenizer.expect("rbracket")
        return TypeExpr.generic("__arglist__", *args)
    if kind != "name":
        raise TypeParseError(f"unexpected token {value!r}")
    if value == "None":
        return NONE
    token = tokenizer.peek()
    if token is not None and token[0] == "lbracket":
        tokenizer.advance()
        args = _parse_arguments(tokenizer)
        tokenizer.expect("rbracket")
        return TypeExpr.generic(value, *args)
    return TypeExpr.atom(value)


def _parse_arguments(tokenizer: _Tokenizer) -> list[TypeExpr]:
    args = [_parse_union(tokenizer)]
    while True:
        token = tokenizer.peek()
        if token is None or token[0] != "comma":
            break
        tokenizer.advance()
        args.append(_parse_union(tokenizer))
    return args
