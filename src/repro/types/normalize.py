"""Normalisation and erasure of type expressions.

Three operations from the paper live here:

* **deep-parameter rewriting** (Sec. 6.1): components of a parametric type
  nested deeper than level 2 are rewritten to ``Any``
  (``List[List[List[int]]]`` → ``List[List[Any]]``) before the type
  hierarchy is built;
* **type-parameter erasure** ``Er(·)`` (Eq. 4): drop all parameters so the
  classification part of the Typilus loss operates on base types
  (``List[int]`` → ``List``);
* **canonicalisation** used by the exact-match metric: a single spelling for
  aliases, ``Optional``/``Union`` flattening and deterministic member order.
"""

from __future__ import annotations

from typing import Optional

from repro.types.expr import ANY, NONE, TypeExpr
from repro.types.parser import try_parse_type


def rewrite_deep_parameters(expr: TypeExpr, max_depth: int = 2) -> TypeExpr:
    """Replace parametric sub-expressions nested deeper than ``max_depth`` with ``Any``.

    ``List[List[List[int]]]`` with the default depth of 2 becomes
    ``List[List[Any]]``, matching the preprocessing described in Sec. 6.1.
    Atoms are never rewritten regardless of their depth.
    """
    return _rewrite_at_depth(expr, depth=0, max_depth=max_depth)


def _rewrite_at_depth(expr: TypeExpr, depth: int, max_depth: int) -> TypeExpr:
    if not expr.args:
        return expr
    if depth >= max_depth:
        return ANY
    return TypeExpr(
        expr.name,
        tuple(_rewrite_at_depth(arg, depth + 1, max_depth) for arg in expr.args),
    )


def erase_parameters(expr: TypeExpr) -> TypeExpr:
    """The Er(·) operator of Eq. 4: drop every type parameter."""
    return expr.base()


def flatten_unions(expr: TypeExpr) -> TypeExpr:
    """Flatten nested unions, deduplicate members and sort them by name.

    ``Union[int, Union[str, int]]`` → ``Union[int, str]``; a union containing
    ``None`` becomes ``Optional[...]``; single-member unions collapse.
    """
    if not expr.args:
        return expr
    args = tuple(flatten_unions(arg) for arg in expr.args)
    if expr.name == "Optional":
        inner = args[0] if args else ANY
        return _make_optional(inner)
    if expr.name != "Union":
        return TypeExpr(expr.name, args)

    members: list[TypeExpr] = []
    has_none = False
    for arg in args:
        if arg.is_none:
            has_none = True
        elif arg.is_union:
            members.extend(arg.args)
        elif arg.is_optional:
            has_none = True
            members.extend(arg.args)
        else:
            members.append(arg)
    unique = sorted(set(members), key=str)
    if not unique:
        return NONE if has_none else ANY
    core = unique[0] if len(unique) == 1 else TypeExpr("Union", tuple(unique))
    return _make_optional(core) if has_none else core


def _make_optional(inner: TypeExpr) -> TypeExpr:
    if inner.is_none:
        return NONE
    if inner.is_optional:
        return inner
    return TypeExpr("Optional", (inner,))


def canonicalise(expr: TypeExpr, max_depth: Optional[int] = None) -> TypeExpr:
    """Full normalisation: flatten unions then optionally cap nesting depth."""
    normalised = flatten_unions(expr)
    if max_depth is not None:
        normalised = rewrite_deep_parameters(normalised, max_depth)
    return normalised


def canonical_string(annotation: str, max_depth: Optional[int] = None) -> Optional[str]:
    """Parse an annotation string and return its canonical rendering.

    Returns ``None`` when the string cannot be parsed (the dataset drops such
    annotations, mirroring how the paper's pipeline skips malformed ones).
    """
    parsed = try_parse_type(annotation)
    if parsed is None:
        return None
    return str(canonicalise(parsed, max_depth=max_depth))


def is_informative(annotation: str) -> bool:
    """Whether an annotation should enter the dataset.

    The paper excludes ``Any`` and ``None`` annotations from its corpus
    (Sec. 6, footnote 2); unparsable annotations are excluded too.
    """
    parsed = try_parse_type(annotation)
    if parsed is None:
        return False
    canonical = canonicalise(parsed)
    return not (canonical.is_any or canonical.is_none)
