"""Type expressions, parsing, normalisation, lattice and registry."""

from repro.types.expr import ANY, ELLIPSIS_TYPE, NONE, TypeExpr, canonical_name
from repro.types.lattice import TypeLattice, lattice_from_class_edges
from repro.types.normalize import (
    canonical_string,
    canonicalise,
    erase_parameters,
    flatten_unions,
    is_informative,
    rewrite_deep_parameters,
)
from repro.types.parser import TypeParseError, parse_type, try_parse_type
from repro.types.registry import DEFAULT_RARITY_THRESHOLD, TypeRegistry, TypeStatistics

__all__ = [
    "TypeExpr",
    "ANY",
    "NONE",
    "ELLIPSIS_TYPE",
    "canonical_name",
    "parse_type",
    "try_parse_type",
    "TypeParseError",
    "canonicalise",
    "canonical_string",
    "erase_parameters",
    "flatten_unions",
    "rewrite_deep_parameters",
    "is_informative",
    "TypeLattice",
    "lattice_from_class_edges",
    "TypeRegistry",
    "TypeStatistics",
    "DEFAULT_RARITY_THRESHOLD",
]
