"""Type vocabulary with frequency accounting.

The paper's analysis of its corpus (Sec. 6) revolves around the Zipfian
frequency distribution of annotations: the top-10 types cover about half the
dataset while 32% of annotations use *rare* types (seen fewer than 100
times).  The registry tracks those counts, assigns stable integer ids for
classification heads, and answers the common/rare question for metrics.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional

from repro.types.normalize import canonical_string

#: Rare/common threshold used throughout the paper.
DEFAULT_RARITY_THRESHOLD = 100


@dataclass
class TypeStatistics:
    """Aggregate corpus statistics mirroring Sec. 6's data description."""

    total_annotations: int
    distinct_types: int
    common_types: int
    rare_types: int
    rare_annotation_fraction: float
    top10_fraction: float
    zipf_exponent: float


class TypeRegistry:
    """Maps canonical type strings to ids and tracks their frequencies."""

    def __init__(self, rarity_threshold: int = DEFAULT_RARITY_THRESHOLD) -> None:
        self.rarity_threshold = rarity_threshold
        self._counts: Counter[str] = Counter()
        self._type_to_id: dict[str, int] = {}
        self._id_to_type: list[str] = []

    # -- population -------------------------------------------------------------

    def add(self, annotation: str, count: int = 1) -> Optional[str]:
        """Record an annotation occurrence; returns its canonical form.

        Unparsable annotations are ignored and ``None`` is returned.
        """
        canonical = canonical_string(annotation, max_depth=None)
        if canonical is None:
            return None
        self._counts[canonical] += count
        if canonical not in self._type_to_id:
            self._type_to_id[canonical] = len(self._id_to_type)
            self._id_to_type.append(canonical)
        return canonical

    def add_many(self, annotations: Iterable[str]) -> None:
        for annotation in annotations:
            self.add(annotation)

    # -- lookups ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._id_to_type)

    def __contains__(self, canonical: str) -> bool:
        return canonical in self._type_to_id

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_type)

    def id_of(self, canonical: str) -> Optional[int]:
        return self._type_to_id.get(canonical)

    def type_of(self, type_id: int) -> str:
        return self._id_to_type[type_id]

    def count_of(self, canonical: str) -> int:
        return self._counts.get(canonical, 0)

    def is_rare(self, canonical: str) -> bool:
        """A type is rare if it is annotated fewer than the threshold times."""
        return self.count_of(canonical) < self.rarity_threshold

    def is_common(self, canonical: str) -> bool:
        return not self.is_rare(canonical)

    def common_types(self) -> list[str]:
        return [t for t in self._id_to_type if self.is_common(t)]

    def rare_types(self) -> list[str]:
        return [t for t in self._id_to_type if self.is_rare(t)]

    def most_common(self, k: int = 10) -> list[tuple[str, int]]:
        return self._counts.most_common(k)

    def classification_vocabulary(self, max_types: Optional[int] = None) -> dict[str, int]:
        """Closed vocabulary for the classification loss (Eq. 1).

        Types are ordered by frequency; an ``%UNK%`` bucket at index 0 absorbs
        everything outside the chosen vocabulary, mirroring how closed-world
        baselines must handle unseen types.
        """
        vocabulary = {"%UNK%": 0}
        for type_name, _ in self._counts.most_common(max_types):
            if type_name not in vocabulary:
                vocabulary[type_name] = len(vocabulary)
        return vocabulary

    # -- statistics ---------------------------------------------------------------

    def statistics(self) -> TypeStatistics:
        total = sum(self._counts.values())
        distinct = len(self._counts)
        rare = self.rare_types()
        rare_annotations = sum(self._counts[t] for t in rare)
        top10 = sum(count for _, count in self._counts.most_common(10))
        return TypeStatistics(
            total_annotations=total,
            distinct_types=distinct,
            common_types=distinct - len(rare),
            rare_types=len(rare),
            rare_annotation_fraction=rare_annotations / total if total else 0.0,
            top10_fraction=top10 / total if total else 0.0,
            zipf_exponent=self._estimate_zipf_exponent(),
        )

    def _estimate_zipf_exponent(self) -> float:
        """Least-squares slope of log(count) vs log(rank)."""
        counts = [count for _, count in self._counts.most_common() if count > 0]
        if len(counts) < 2:
            return 0.0
        xs = [math.log(rank + 1) for rank in range(len(counts))]
        ys = [math.log(count) for count in counts]
        mean_x = sum(xs) / len(xs)
        mean_y = sum(ys) / len(ys)
        denom = sum((x - mean_x) ** 2 for x in xs)
        if denom == 0:
            return 0.0
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / denom
        return -slope
