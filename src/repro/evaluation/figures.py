"""Text rendering of figure data (series and heatmaps).

The original figures are matplotlib plots; offline we render the same data
as aligned text so the benchmark output is directly comparable with the
curves in the paper (who wins, where the knees are).
"""

from __future__ import annotations

import numpy as np

from repro.core.metrics import PrecisionRecallPoint
from repro.evaluation.experiments import Figure4Result, Figure5Result, Figure6Result, Figure7Result
from repro.evaluation.tables import render_table


def format_pr_curve(points: list[PrecisionRecallPoint]) -> str:
    headers = ["threshold", "recall", "P(exact)", "P(up-to-param)", "P(neutral)"]
    rows = [
        [f"{p.threshold:.2f}", f"{p.recall:.2f}", f"{p.precision_exact:.2f}",
         f"{p.precision_up_to_parametric:.2f}", f"{p.precision_neutral:.2f}"]
        for p in points
    ]
    return render_table(headers, rows)


def format_figure4(result: Figure4Result) -> str:
    sections = []
    for label, points in result.curves.items():
        sections.append(f"== {label} ==")
        sections.append(format_pr_curve(points))
    return "\n".join(sections)


def format_figure5(result: Figure5Result) -> str:
    headers = ["annotation count <=", "samples", "% exact", "% up-to-parametric"]
    rows = [
        [str(bucket.upper_bound), str(bucket.count), f"{100 * bucket.exact_match:.1f}", f"{100 * bucket.match_up_to_parametric:.1f}"]
        for bucket in result.buckets
    ]
    return render_table(headers, rows)


def format_figure6(result: Figure6Result) -> str:
    """Render the k/p heatmap of deltas w.r.t. the median, as in Fig. 6."""
    headers = ["k \\ p"] + [f"{p:g}" for p in result.p_values]
    rows = []
    for i, k in enumerate(result.k_values):
        rows.append([str(k)] + [f"{result.deltas[i, j]:+.1f}" for j in range(len(result.p_values))])
    return render_table(headers, rows)


def format_figure7(result: Figure7Result) -> str:
    sections = []
    for mode, points in result.curves.items():
        sections.append(f"== correctness against {mode} checker ==")
        headers = ["threshold", "recall", "precision"]
        rows = [[f"{p.threshold:.2f}", f"{p.recall:.2f}", f"{p.precision:.2f}"] for p in points]
        sections.append(render_table(headers, rows))
    return "\n".join(sections)


def summarise_heatmap(result: Figure6Result) -> dict[str, float]:
    """Headline numbers of the sweep: best (k, p) and the spread of deltas."""
    best_index = np.unravel_index(np.argmax(result.scores), result.scores.shape)
    return {
        "best_k": float(result.k_values[best_index[0]]),
        "best_p": float(result.p_values[best_index[1]]),
        "best_score": float(result.scores[best_index]),
        "delta_range": float(result.deltas.max() - result.deltas.min()),
    }
